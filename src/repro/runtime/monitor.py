"""The monitor: execution logs and statistics for the web interface.

The paper enumerates exactly what the monitor surfaces: *"the number of
tuples that each operation handle per second, the node that suffers
because of high workload, which node is in charge of executing an
operation and when the assignment changes"* — plus, for Figure 3, the
flows of data of every dataflow under control.

The monitor samples each deployment's processes on the virtual clock and
keeps per-operation rate series, per-node utilization series, the
assignment log, and trigger/control events.

It is also the runtime's **failure detector**: every watched process emits
a heartbeat on the sim clock, and a node whose processes all fall silent
is marked SUSPECT after ``suspect_after`` missed beats and DEAD after
``dead_after`` — at which point the ``on_node_dead`` callbacks fire and
the executor re-places the affected processes.  Dead-lettered tuples from
the broker's retry path surface here too, so "no silent loss" is an
auditable claim rather than a hope.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.network.netsim import NetworkSimulator
from repro.runtime.process import OperatorProcess
from repro.runtime.stats import TimeSeries
from repro.streams.base import ControlCommand


class NodeHealth(Enum):
    """Failure-detector verdict on a node hosting watched processes."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass(frozen=True)
class AssignmentChange:
    """One entry of the "when the assignment changes" log."""

    time: float
    process_id: str
    from_node: str
    to_node: str
    reason: str


@dataclass(frozen=True)
class MigrationEvent:
    """One elastic-sharding action: a key migration or hot-key split."""

    time: float
    service: str
    key: str
    kind: str  # "migrate" | "split" | "aborted"
    from_shard: int
    to_shards: tuple[int, ...]
    reason: str


@dataclass(frozen=True)
class DeadLetterRecord:
    """One tuple the broker gave up delivering (surfaced, not silent)."""

    time: float
    subscription_id: int
    node_id: str
    source: str
    reason: str


@dataclass
class LogRecord:
    """A structured execution-log line."""

    time: float
    source: str
    event: str
    detail: str = ""

    def __str__(self) -> str:
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time:10.1f}] {self.source}: {self.event}{detail}"


class Monitor:
    """Collects logs and metrics from a set of deployments."""

    def __init__(
        self,
        netsim: NetworkSimulator,
        sample_interval: float = 60.0,
        heartbeat_interval: float = 30.0,
        suspect_after: float = 2.0,
        dead_after: float = 4.0,
        obs: "object | None" = None,
        max_series_points: "int | None" = None,
    ) -> None:
        if not (0 < suspect_after < dead_after):
            raise ValueError(
                f"need 0 < suspect_after ({suspect_after}) < "
                f"dead_after ({dead_after})"
            )
        self.netsim = netsim
        self.sample_interval = sample_interval
        self.heartbeat_interval = heartbeat_interval
        #: Missed-beat thresholds, in heartbeat intervals.
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        #: Observability bundle; when set, every series this monitor keeps
        #: is also published through the metrics registry, and
        #: heartbeat/dead-letter/assignment events become counters.
        self.obs = obs
        #: Retention cap applied to every TimeSeries this monitor creates.
        self.max_series_points = max_series_points
        #: The executor's alert engine, when SLO clauses are deployed;
        #: surfaces firing rules on the dashboard.
        self.alerts = None
        self._heartbeat_counters: dict[str, object] = {}
        self._rate_gauges: dict[str, object] = {}
        self._util_gauges: dict[str, object] = {}
        self._dead_letter_counter = None
        self._assignment_counter = None
        self._control_counter = None
        self._migration_counter = None
        if obs is not None:
            metrics = obs.metrics
            self._dead_letter_counter = metrics.counter(
                "monitor_dead_letters_total",
                "dead-lettered tuples surfaced to the monitor",
            )
            self._assignment_counter = metrics.counter(
                "monitor_assignment_changes_total",
                "process re-placements (when the assignment changes)",
            )
            self._control_counter = metrics.counter(
                "monitor_control_commands_total",
                "trigger commands actuated by the control plane",
            )
            self._migration_counter = metrics.counter(
                "monitor_key_migrations_total",
                "elastic-sharding key migrations and hot-key splits",
            )
        #: (deployment, process) -> tuples/sec series.
        self.operation_rates: dict[str, TimeSeries] = {}
        #: node -> utilization series.
        self.node_utilization: dict[str, TimeSeries] = {}
        self.assignment_log: list[AssignmentChange] = []
        self.migration_log: list[MigrationEvent] = []
        self.control_log: list[ControlCommand] = []
        self.dead_letter_log: list[DeadLetterRecord] = []
        self.logs: list[LogRecord] = []
        #: Failure-detector state per node (only nodes hosting processes).
        self.node_health: dict[str, NodeHealth] = {}
        #: Fired with the node id on each ALIVE/SUSPECT -> DEAD transition.
        self.on_node_dead: list[Callable[[str], None]] = []
        self._node_last_seen: dict[str, float] = {}
        self._watched: dict[str, list[OperatorProcess]] = {}
        self._cancel = None
        self._liveness_cancel = None

    # -- registration -------------------------------------------------------

    def watch(self, deployment_name: str, processes: list[OperatorProcess]) -> None:
        self._watched[deployment_name] = list(processes)
        now = self.netsim.clock.now
        for process in processes:
            process.enable_heartbeats(self.heartbeat, self.heartbeat_interval)
            # Baseline: a node is given a full grace period from watch time
            # before its silence can be held against it.
            self._node_last_seen.setdefault(process.node_id, now)
            self.node_health.setdefault(process.node_id, NodeHealth.ALIVE)
        self.log(deployment_name, "watch", f"{len(processes)} processes")

    def unwatch(self, deployment_name: str) -> None:
        self._watched.pop(deployment_name, None)
        self.log(deployment_name, "unwatch")

    def start(self) -> None:
        if self._cancel is None:
            self._cancel = self.netsim.clock.schedule_periodic(
                self.sample_interval, self.sample
            )
        if self._liveness_cancel is None:
            self._liveness_cancel = self.netsim.clock.schedule_periodic(
                self.heartbeat_interval, self.check_liveness
            )

    def stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None
        if self._liveness_cancel is not None:
            self._liveness_cancel()
            self._liveness_cancel = None

    # -- event intake ---------------------------------------------------------

    def log(self, source: str, event: str, detail: str = "") -> None:
        self.logs.append(
            LogRecord(time=self.netsim.clock.now, source=source, event=event, detail=detail)
        )

    def record_assignment(
        self, process_id: str, from_node: str, to_node: str, reason: str
    ) -> None:
        change = AssignmentChange(
            time=self.netsim.clock.now,
            process_id=process_id,
            from_node=from_node,
            to_node=to_node,
            reason=reason,
        )
        self.assignment_log.append(change)
        self.log(process_id, "reassigned", f"{from_node} -> {to_node} ({reason})")
        if self.obs is not None:
            self._assignment_counter.inc()
            self.obs.tracer.event(
                "reassignment", change.time,
                process=process_id, **{"from": from_node, "to": to_node},
                reason=reason,
            )

    def record_migration(
        self,
        service: str,
        key: str,
        kind: str,
        from_shard: int,
        to_shards: "tuple[int, ...]",
        reason: str,
    ) -> MigrationEvent:
        """Log one elastic-sharding action (the migration event log)."""
        event = MigrationEvent(
            time=self.netsim.clock.now,
            service=service,
            key=key,
            kind=kind,
            from_shard=from_shard,
            to_shards=tuple(to_shards),
            reason=reason,
        )
        self.migration_log.append(event)
        targets = ",".join(str(shard) for shard in event.to_shards)
        self.log(
            service, f"key-{kind}",
            f"{key}: shard {from_shard} -> [{targets}] ({reason})",
        )
        if self._migration_counter is not None:
            self._migration_counter.inc()
        return event

    def heartbeat(self, process_id: str, node_id: str, time: float) -> None:
        """Liveness beat from a watched process (wired by :meth:`watch`)."""
        self._node_last_seen[node_id] = time
        if self.obs is not None:
            counter = self._heartbeat_counters.get(node_id)
            if counter is None:
                counter = self._heartbeat_counters[node_id] = (
                    self.obs.metrics.counter(
                        "monitor_heartbeats_total",
                        "liveness beats received from watched processes",
                        node=node_id,
                    )
                )
            counter.inc()
        previous = self.node_health.get(node_id)
        if previous in (NodeHealth.SUSPECT, NodeHealth.DEAD):
            self.log(node_id, "node-alive", f"heartbeat from {process_id}")
        self.node_health[node_id] = NodeHealth.ALIVE

    def record_dead_letter(
        self, subscription_id: int, node_id: str, source: str, reason: str
    ) -> None:
        """A tuple exhausted its retry budget; keep the audit trail."""
        record = DeadLetterRecord(
            time=self.netsim.clock.now,
            subscription_id=subscription_id,
            node_id=node_id,
            source=source,
            reason=reason,
        )
        self.dead_letter_log.append(record)
        self.log(
            f"subscription-{subscription_id}",
            "dead-letter",
            f"{source} undeliverable to {node_id}: {reason}",
        )
        if self.obs is not None:
            self._dead_letter_counter.inc()

    def record_control(self, deployment_name: str, command: ControlCommand) -> None:
        self.control_log.append(command)
        if self.obs is not None:
            self._control_counter.inc()
        verb = "activate" if command.activate else "deactivate"
        self.log(
            deployment_name,
            verb,
            f"{', '.join(command.sensor_ids)} ({command.reason})",
        )

    # -- sampling ------------------------------------------------------------------

    def sample(self) -> None:
        """Take one sample of every watched process and every node."""
        now = self.netsim.clock.now
        obs = self.obs
        if obs is not None and obs.latency is not None:
            # Re-derive the watermark/backpressure gauges on the sample
            # cadence (the latency plane never publishes per tuple).
            obs.latency.refresh()
        for deployment, processes in self._watched.items():
            for process in processes:
                process.sample_load(now)
                key = f"{deployment}/{process.process_id}"
                series = self.operation_rates.get(key)
                if series is None:
                    series = self.operation_rates[key] = TimeSeries(
                        name=key, max_points=self.max_series_points
                    )
                series.record(now, process.rate.rate)
                if obs is not None:
                    gauge = self._rate_gauges.get(key)
                    if gauge is None:
                        gauge = self._rate_gauges[key] = obs.metrics.gauge(
                            "operation_tuples_per_second",
                            "tuples each operation handles per second",
                            process=key,
                        )
                    gauge.set(process.rate.rate)
        for node in self.netsim.topology.nodes:
            series = self.node_utilization.get(node.node_id)
            if series is None:
                series = self.node_utilization[node.node_id] = TimeSeries(
                    name=node.node_id, max_points=self.max_series_points
                )
            series.record(now, node.utilization)
            if obs is not None:
                gauge = self._util_gauges.get(node.node_id)
                if gauge is None:
                    gauge = self._util_gauges[node.node_id] = obs.metrics.gauge(
                        "node_utilization",
                        "fraction of a node's capacity in use",
                        node=node.node_id,
                    )
                gauge.set(node.utilization)
        if obs is not None:
            stats = self.netsim.stats
            metrics = obs.metrics
            metrics.gauge(
                "network_messages_sent", "messages handed to the simulator"
            ).set(stats.messages_sent)
            metrics.gauge(
                "network_messages_delivered", "messages delivered"
            ).set(stats.messages_delivered)
            metrics.gauge(
                "network_messages_dropped", "messages lost in the network"
            ).set(stats.messages_dropped)
            metrics.gauge(
                "network_tuples_sent",
                "payload tuples handed to the simulator (batches unrolled)",
            ).set(stats.tuples_sent)
            metrics.gauge(
                "network_tuples_delivered",
                "payload tuples delivered (batches unrolled)",
            ).set(stats.tuples_delivered)
            metrics.gauge(
                "network_link_bytes", "total bytes moved across all links"
            ).set(self.netsim.total_link_bytes())

    # -- failure detection -----------------------------------------------------------

    def check_liveness(self) -> list[str]:
        """One failure-detector round over nodes hosting watched processes.

        Returns the nodes newly declared dead this round (after firing the
        ``on_node_dead`` callbacks for each).
        """
        now = self.netsim.clock.now
        hosting: set[str] = {
            process.node_id
            for processes in self._watched.values()
            for process in processes
        }
        newly_dead: list[str] = []
        for node_id in sorted(hosting):
            silent_for = now - self._node_last_seen.get(node_id, now)
            missed = silent_for / self.heartbeat_interval
            previous = self.node_health.get(node_id, NodeHealth.ALIVE)
            if missed >= self.dead_after:
                if previous is not NodeHealth.DEAD:
                    self.node_health[node_id] = NodeHealth.DEAD
                    self.log(
                        node_id,
                        "node-dead",
                        f"no heartbeat for {silent_for:.0f}s "
                        f"(>= {self.dead_after:g} intervals)",
                    )
                    newly_dead.append(node_id)
                    for callback in list(self.on_node_dead):
                        callback(node_id)
            elif missed >= self.suspect_after:
                if previous is NodeHealth.ALIVE:
                    self.node_health[node_id] = NodeHealth.SUSPECT
                    self.log(
                        node_id,
                        "node-suspect",
                        f"no heartbeat for {silent_for:.0f}s",
                    )
            else:
                self.node_health[node_id] = NodeHealth.ALIVE
        return newly_dead

    # -- the "web interface" view ---------------------------------------------------

    def suffering_nodes(self, threshold: float = 0.9) -> list[str]:
        """Nodes currently above the utilization threshold."""
        return sorted(
            node.node_id
            for node in self.netsim.topology.nodes
            if node.utilization > threshold
        )

    def current_assignments(self) -> dict[str, str]:
        """process key -> node currently executing it."""
        return {
            f"{deployment}/{process.process_id}": process.node_id
            for deployment, processes in self._watched.items()
            for process in processes
        }

    def report(self) -> dict:
        """The statistics panel: everything Figure 3 displays, as data."""
        report = {
            "time": self.netsim.clock.now,
            "backend": getattr(self.netsim, "backend_name", "sim"),
            "operation_rates": {
                key: series.last for key, series in self.operation_rates.items()
            },
            "node_utilization": {
                key: series.last for key, series in self.node_utilization.items()
            },
            "suffering_nodes": self.suffering_nodes(),
            "assignments": self.current_assignments(),
            "assignment_changes": len(self.assignment_log),
            "key_migrations": len(self.migration_log),
            "controls": len(self.control_log),
            "node_health": {
                node_id: health.value
                for node_id, health in sorted(self.node_health.items())
            },
            "dead_letters": len(self.dead_letter_log),
            "network": {
                "messages_sent": self.netsim.stats.messages_sent,
                "messages_delivered": self.netsim.stats.messages_delivered,
                "messages_dropped": self.netsim.stats.messages_dropped,
                "tuples_sent": self.netsim.stats.tuples_sent,
                "tuples_delivered": self.netsim.stats.tuples_delivered,
                "mean_delay": self.netsim.stats.mean_delay,
                "link_bytes": self.netsim.total_link_bytes(),
            },
        }
        plane = self.obs.latency if self.obs is not None else None
        if plane is not None:
            memo: dict = {}
            report["watermarks"] = {
                key: {
                    "watermark": plane.watermark(key, memo),
                    "lag": plane.watermark_lag(key, memo),
                }
                for key in sorted(plane.probes)
            }
        if self.alerts is not None:
            report["alerts"] = {
                "firing": self.alerts.firing(),
                "transitions": len(self.alerts.history),
            }
        return report

    def render_dashboard(self) -> str:
        """ASCII rendering of the monitoring screen (Figure 3 stand-in)."""
        report = self.report()
        # The sim header is golden-pinned; only non-default backends tag it.
        backend = report["backend"]
        tag = "" if backend == "sim" else f" [{backend}]"
        lines = [
            f"== StreamLoader monitor @ t={report['time']:.0f}s =={tag}",
            "-- operations (tuples/s) --",
        ]
        for key in sorted(report["operation_rates"]):
            rate = report["operation_rates"][key] or 0.0
            node = report["assignments"].get(key, "?")
            bar = "#" * min(40, int(rate))
            lines.append(f"  {key:40s} {rate:8.2f}  on {node:10s} {bar}")
        lines.append("-- nodes (utilization) --")
        for key in sorted(report["node_utilization"]):
            util = report["node_utilization"][key] or 0.0
            flag = "  << SUFFERING" if key in report["suffering_nodes"] else ""
            bar = "#" * min(40, int(util * 40))
            lines.append(f"  {key:20s} {util:6.1%} {bar}{flag}")
        network = report["network"]
        delivered = f"{network['messages_delivered']} delivered"
        if network["tuples_delivered"] != network["messages_delivered"]:
            delivered += f" ({network['tuples_delivered']} tuples)"
        lines.append(
            f"-- network: {delivered}, "
            f"{network['messages_dropped']} dropped, "
            f"{report['dead_letters']} dead-lettered, "
            f"{network['link_bytes']:.0f} bytes on links --"
        )
        unhealthy = {
            node: health
            for node, health in report["node_health"].items()
            if health != NodeHealth.ALIVE.value
        }
        if unhealthy:
            lines.append("-- node health --")
            for node, health in unhealthy.items():
                lines.append(f"  {node:20s} {health.upper()}")
        if self.assignment_log:
            lines.append("-- reassignments --")
            for change in self.assignment_log[-5:]:
                lines.append(
                    f"  t={change.time:.0f}: {change.process_id} "
                    f"{change.from_node} -> {change.to_node}"
                )
        if self.migration_log:
            lines.append("-- key migrations --")
            for event in self.migration_log[-5:]:
                targets = ",".join(str(shard) for shard in event.to_shards)
                lines.append(
                    f"  t={event.time:.0f}: {event.service} {event.key} "
                    f"shard {event.from_shard} -> [{targets}] ({event.kind})"
                )
        watermarks = report.get("watermarks")
        if watermarks:
            lines.append("-- watermarks (lag behind sources) --")
            for key in sorted(watermarks):
                lag = watermarks[key]["lag"]
                lag_text = f"{lag:10.1f}s" if lag is not None else "      cold"
                bar = "#" * min(40, int(lag)) if lag is not None else ""
                lines.append(f"  {key:40s} {lag_text} {bar}")
        alerts = report.get("alerts")
        if alerts is not None:
            lines.append(
                f"-- alerts ({alerts['transitions']} transitions) --"
            )
            for name in alerts["firing"]:
                lines.append(f"  {name:40s} FIRING")
            if not alerts["firing"]:
                lines.append("  none firing")
        return "\n".join(lines)
