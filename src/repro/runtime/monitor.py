"""The monitor: execution logs and statistics for the web interface.

The paper enumerates exactly what the monitor surfaces: *"the number of
tuples that each operation handle per second, the node that suffers
because of high workload, which node is in charge of executing an
operation and when the assignment changes"* — plus, for Figure 3, the
flows of data of every dataflow under control.

The monitor samples each deployment's processes on the virtual clock and
keeps per-operation rate series, per-node utilization series, the
assignment log, and trigger/control events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.netsim import NetworkSimulator
from repro.runtime.process import OperatorProcess
from repro.runtime.stats import TimeSeries
from repro.streams.base import ControlCommand


@dataclass(frozen=True)
class AssignmentChange:
    """One entry of the "when the assignment changes" log."""

    time: float
    process_id: str
    from_node: str
    to_node: str
    reason: str


@dataclass
class LogRecord:
    """A structured execution-log line."""

    time: float
    source: str
    event: str
    detail: str = ""

    def __str__(self) -> str:
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time:10.1f}] {self.source}: {self.event}{detail}"


class Monitor:
    """Collects logs and metrics from a set of deployments."""

    def __init__(self, netsim: NetworkSimulator, sample_interval: float = 60.0) -> None:
        self.netsim = netsim
        self.sample_interval = sample_interval
        #: (deployment, process) -> tuples/sec series.
        self.operation_rates: dict[str, TimeSeries] = {}
        #: node -> utilization series.
        self.node_utilization: dict[str, TimeSeries] = {}
        self.assignment_log: list[AssignmentChange] = []
        self.control_log: list[ControlCommand] = []
        self.logs: list[LogRecord] = []
        self._watched: dict[str, list[OperatorProcess]] = {}
        self._cancel = None

    # -- registration -------------------------------------------------------

    def watch(self, deployment_name: str, processes: list[OperatorProcess]) -> None:
        self._watched[deployment_name] = list(processes)
        self.log(deployment_name, "watch", f"{len(processes)} processes")

    def unwatch(self, deployment_name: str) -> None:
        self._watched.pop(deployment_name, None)
        self.log(deployment_name, "unwatch")

    def start(self) -> None:
        if self._cancel is None:
            self._cancel = self.netsim.clock.schedule_periodic(
                self.sample_interval, self.sample
            )

    def stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    # -- event intake ---------------------------------------------------------

    def log(self, source: str, event: str, detail: str = "") -> None:
        self.logs.append(
            LogRecord(time=self.netsim.clock.now, source=source, event=event, detail=detail)
        )

    def record_assignment(
        self, process_id: str, from_node: str, to_node: str, reason: str
    ) -> None:
        change = AssignmentChange(
            time=self.netsim.clock.now,
            process_id=process_id,
            from_node=from_node,
            to_node=to_node,
            reason=reason,
        )
        self.assignment_log.append(change)
        self.log(process_id, "reassigned", f"{from_node} -> {to_node} ({reason})")

    def record_control(self, deployment_name: str, command: ControlCommand) -> None:
        self.control_log.append(command)
        verb = "activate" if command.activate else "deactivate"
        self.log(
            deployment_name,
            verb,
            f"{', '.join(command.sensor_ids)} ({command.reason})",
        )

    # -- sampling ------------------------------------------------------------------

    def sample(self) -> None:
        """Take one sample of every watched process and every node."""
        now = self.netsim.clock.now
        for deployment, processes in self._watched.items():
            for process in processes:
                process.sample_load(now)
                key = f"{deployment}/{process.process_id}"
                series = self.operation_rates.setdefault(
                    key, TimeSeries(name=key)
                )
                series.record(now, process.rate.rate)
        for node in self.netsim.topology.nodes:
            series = self.node_utilization.setdefault(
                node.node_id, TimeSeries(name=node.node_id)
            )
            series.record(now, node.utilization)

    # -- the "web interface" view ---------------------------------------------------

    def suffering_nodes(self, threshold: float = 0.9) -> list[str]:
        """Nodes currently above the utilization threshold."""
        return sorted(
            node.node_id
            for node in self.netsim.topology.nodes
            if node.utilization > threshold
        )

    def current_assignments(self) -> dict[str, str]:
        """process key -> node currently executing it."""
        return {
            f"{deployment}/{process.process_id}": process.node_id
            for deployment, processes in self._watched.items()
            for process in processes
        }

    def report(self) -> dict:
        """The statistics panel: everything Figure 3 displays, as data."""
        return {
            "time": self.netsim.clock.now,
            "operation_rates": {
                key: series.last for key, series in self.operation_rates.items()
            },
            "node_utilization": {
                key: series.last for key, series in self.node_utilization.items()
            },
            "suffering_nodes": self.suffering_nodes(),
            "assignments": self.current_assignments(),
            "assignment_changes": len(self.assignment_log),
            "controls": len(self.control_log),
            "network": {
                "messages_sent": self.netsim.stats.messages_sent,
                "messages_delivered": self.netsim.stats.messages_delivered,
                "messages_dropped": self.netsim.stats.messages_dropped,
                "mean_delay": self.netsim.stats.mean_delay,
                "link_bytes": self.netsim.total_link_bytes(),
            },
        }

    def render_dashboard(self) -> str:
        """ASCII rendering of the monitoring screen (Figure 3 stand-in)."""
        report = self.report()
        lines = [
            f"== StreamLoader monitor @ t={report['time']:.0f}s ==",
            "-- operations (tuples/s) --",
        ]
        for key in sorted(report["operation_rates"]):
            rate = report["operation_rates"][key] or 0.0
            node = report["assignments"].get(key, "?")
            bar = "#" * min(40, int(rate))
            lines.append(f"  {key:40s} {rate:8.2f}  on {node:10s} {bar}")
        lines.append("-- nodes (utilization) --")
        for key in sorted(report["node_utilization"]):
            util = report["node_utilization"][key] or 0.0
            flag = "  << SUFFERING" if key in report["suffering_nodes"] else ""
            bar = "#" * min(40, int(util * 40))
            lines.append(f"  {key:20s} {util:6.1%} {bar}{flag}")
        lines.append(
            f"-- network: {report['network']['messages_delivered']} delivered, "
            f"{report['network']['messages_dropped']} dropped, "
            f"{report['network']['link_bytes']:.0f} bytes on links --"
        )
        if self.assignment_log:
            lines.append("-- reassignments --")
            for change in self.assignment_log[-5:]:
                lines.append(
                    f"  t={change.time:.0f}: {change.process_id} "
                    f"{change.from_node} -> {change.to_node}"
                )
        return "\n".join(lines)
