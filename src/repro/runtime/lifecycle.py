"""Deployment lifecycle: states and on-the-fly modification (demo P3).

P3: "we will show how the system react when sensors or operators in the
dataflow are modified on the fly".  Sensors joining/leaving is handled
automatically by the pub-sub layer (filters re-match on publish);
operator modification is implemented here: the spec of a *running* process
is swapped without tearing the deployment down, so the rest of the flow
keeps streaming throughout.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import LifecycleError, ValidationError


class DeploymentState(Enum):
    DESIGNED = "designed"
    RUNNING = "running"
    #: Still streaming, but a source's live sensor set fell below quorum;
    #: recovers to RUNNING automatically when sensors republish.
    DEGRADED = "degraded"
    PAUSED = "paused"
    STOPPED = "stopped"


def replace_operator_live(deployment, service_name: str, new_spec) -> None:
    """Swap a running operator's specification in place.

    The process keeps its identity, node, routes, and subscriptions; only
    the operator logic changes.  The swapped-in spec is validated against
    the deployment's conceptual dataflow first, so a modification that
    would break schema consistency is rejected *before* touching the
    runtime (the same only-sound-flows guarantee as at design time).

    Raises:
        LifecycleError: if the deployment is not running or the service is
            unknown.
        ValidationError: if the modified dataflow would be inconsistent.
    """
    from repro.dataflow.validate import validate_dataflow
    from repro.runtime.executor import Deployment  # circular-safe at call time

    if deployment.state is not DeploymentState.RUNNING:
        raise LifecycleError(
            f"cannot modify deployment in state {deployment.state}"
        )
    if service_name not in deployment.processes:
        raise LifecycleError(f"no running service {service_name!r}")

    # Validate against the conceptual dataflow when we have it.
    if deployment.flow is not None:
        if service_name not in deployment.flow.operators:
            raise LifecycleError(
                f"service {service_name!r} is not an operator in the flow"
            )
        old_spec = deployment.flow.operators[service_name].spec
        deployment.flow.replace_operator(service_name, new_spec)
        report = validate_dataflow(
            deployment.flow, deployment.executor.broker_network.registry
        )
        if not report.is_valid:
            deployment.flow.replace_operator(service_name, old_spec)
            raise ValidationError(report.errors)

    process = deployment.processes[service_name]
    was_blocking = process.operator.is_blocking
    new_operator = new_spec.build_operator()
    if new_spec.kind in ("trigger-on", "trigger-off"):
        new_operator.control = deployment.apply_control

    # Swap: stop any flush timer, replace logic, re-arm.
    if process._timer_cancel is not None:
        process._timer_cancel()
        process._timer_cancel = None
    process.operator = new_operator
    if new_operator.is_blocking:
        assert new_operator.interval is not None
        process._timer_cancel = process.netsim.clock.schedule_periodic(
            new_operator.interval, process._fire_timer
        )
    deployment.executor.monitor.log(
        deployment.name,
        "operator-replaced",
        f"{service_name}: now {new_operator.describe()}"
        + (" (blocking->non-blocking)" if was_blocking and not new_operator.is_blocking else ""),
    )
