"""Exception hierarchy for the StreamLoader reproduction.

Every error raised by the library derives from :class:`StreamLoaderError`,
so callers can catch one type at the API boundary.  Sub-hierarchies follow
the architecture layers (data model, expression language, dataflow design,
DSN/SCN translation, network simulation, runtime execution).
"""

from __future__ import annotations


class StreamLoaderError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# STT data model


class SttError(StreamLoaderError):
    """Errors in the space-time-thematic data model."""


class GranularityError(SttError):
    """Unknown granularity, or a conversion between incomparable granules."""


class UnitError(SttError):
    """Unknown unit of measure, or a conversion between incompatible units."""


class CoordinateError(SttError):
    """Invalid coordinates or an unsupported reference-system conversion."""


# ---------------------------------------------------------------------------
# Schemas and types


class SchemaError(StreamLoaderError):
    """Invalid schema definition or an illegal schema operation."""


class TypeMismatchError(SchemaError):
    """An attribute value (or expression) does not fit the declared type."""


# ---------------------------------------------------------------------------
# Expression language


class ExpressionError(StreamLoaderError):
    """Base for errors in the condition/specification language."""


class LexError(ExpressionError):
    """Invalid character sequence while tokenizing an expression."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(ExpressionError):
    """Invalid syntax while parsing an expression."""

    def __init__(self, message: str, position: int = -1) -> None:
        suffix = f" (at position {position})" if position >= 0 else ""
        super().__init__(f"{message}{suffix}")
        self.position = position


class EvaluationError(ExpressionError):
    """An expression failed to evaluate against a tuple."""


class UnknownFunctionError(ExpressionError):
    """A call to a function that is not in the registry."""


class UnknownAttributeError(ExpressionError):
    """An expression referenced an attribute absent from the schema/tuple."""


# ---------------------------------------------------------------------------
# Conceptual dataflow design


class DataflowError(StreamLoaderError):
    """Invalid conceptual dataflow structure or configuration."""


class ValidationError(DataflowError):
    """The dataflow failed a consistency check.

    Carries the list of individual :class:`ValidationIssue`-like messages so
    a designer front end can annotate the offending canvas elements.
    """

    def __init__(self, issues) -> None:
        self.issues = list(issues)
        lines = "; ".join(str(issue) for issue in self.issues)
        super().__init__(f"dataflow is not consistent: {lines}")


class PortError(DataflowError):
    """Illegal connection between operator ports."""


# ---------------------------------------------------------------------------
# DSN / SCN


class DsnError(StreamLoaderError):
    """Errors in the declarative service networking layer."""


class DsnParseError(DsnError):
    """Invalid DSN program text."""

    def __init__(self, message: str, line: int = -1) -> None:
        suffix = f" (line {line})" if line >= 0 else ""
        super().__init__(f"{message}{suffix}")
        self.line = line


class ScnError(DsnError):
    """The SCN controller could not actuate a DSN program on the network."""


class PlacementError(ScnError):
    """No feasible node assignment exists for a service."""


# ---------------------------------------------------------------------------
# Network simulation


class NetworkError(StreamLoaderError):
    """Errors in the simulated programmable network."""


class UnknownNodeError(NetworkError):
    """Reference to a node id that is not part of the topology."""


class UnreachableError(NetworkError):
    """No route exists between two nodes."""


class SimulationError(NetworkError):
    """Inconsistent use of the discrete-event simulator."""


# ---------------------------------------------------------------------------
# Pub/sub


class PubSubError(StreamLoaderError):
    """Errors in the distributed publish-subscribe layer."""


class UnknownSensorError(PubSubError):
    """Reference to a sensor id that is not registered."""


class DuplicateSensorError(PubSubError):
    """A sensor id was published twice."""


# ---------------------------------------------------------------------------
# Runtime


class RuntimeExecutionError(StreamLoaderError):
    """Errors while executing a deployed dataflow."""


class DeploymentError(RuntimeExecutionError):
    """The executor could not deploy (or re-deploy) a dataflow."""


class LifecycleError(RuntimeExecutionError):
    """Illegal lifecycle transition (e.g. modifying a torn-down flow)."""


class CheckpointError(RuntimeExecutionError):
    """A state snapshot could not be taken or restored."""


# ---------------------------------------------------------------------------
# Warehouse


class WarehouseError(StreamLoaderError):
    """Errors in the event data warehouse."""
