"""Headless designer — the Web application's interaction layer (Figure 2).

The paper's GUI (AngularJS + Cytoscape + SparkJava) is presentation over
exactly these interactions: browse the palette of discovered sensors,
drag sources and operators onto a canvas, connect them, inspect the schema
pane of any node, preview samples step by step, validate, deploy, and
watch the live annotations.  :class:`repro.designer.session.DesignerSession`
exposes each of those as a method, so every behaviour the demo shows is
scriptable and testable without a browser.
"""

from repro.designer.palette import Palette, PaletteEntry, OPERATOR_PALETTE
from repro.designer.session import DesignerSession
from repro.designer.deploy import DeploymentHandle

__all__ = [
    "Palette",
    "PaletteEntry",
    "OPERATOR_PALETTE",
    "DesignerSession",
    "DeploymentHandle",
]
