"""Live deployment handle: the canvas "becomes live".

"At the use phase, the dataflow developed at design time will be annotated
with information coming from the SCN about the execution of the dataflow.
In this way, the dataflow becomes 'live' and the domain expert can monitor
its execution."

The handle projects monitor data back onto canvas node ids, so a front end
can draw rates and placements on the same graph the user drew.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dataflow.ops import OperatorSpec
from repro.runtime.lifecycle import replace_operator_live

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.designer.session import DesignerSession
    from repro.runtime.executor import Deployment


class DeploymentHandle:
    """Designer-facing view of one running deployment."""

    def __init__(self, deployment: "Deployment", session: "DesignerSession") -> None:
        self.deployment = deployment
        self.session = session

    @property
    def name(self) -> str:
        return self.deployment.name

    @property
    def state(self):
        return self.deployment.state

    # -- live annotations ------------------------------------------------------

    def annotations(self) -> dict[str, dict]:
        """Per-canvas-node live info: rate, node, counters.

        This is the data the designer overlays on the canvas (Figure 2's
        "live" mode and Figure 3's flow view).
        """
        monitor = self.deployment.executor.monitor
        result: dict[str, dict] = {}
        for service_name, process in self.deployment.processes.items():
            key = f"{self.deployment.name}/{process.process_id}"
            series = monitor.operation_rates.get(key)
            stats = process.operator.stats
            result[service_name] = {
                "node": process.node_id,
                "tuples_per_second": series.last if series else None,
                "tuples_in": stats.tuples_in,
                "tuples_out": stats.tuples_out,
                "errors": stats.errors,
                "controls_issued": stats.controls_issued,
            }
        for service_name, binding in self.deployment.bindings.items():
            delivered = sum(s.delivered for s in binding.subscriptions)
            suppressed = sum(s.suppressed for s in binding.subscriptions)
            active = any(s.active for s in binding.subscriptions)
            result[service_name] = {
                "sensors": sorted(binding.sensor_ids),
                "active": active,
                "delivered": delivered,
                "suppressed": suppressed,
            }
        return result

    def reassignments(self) -> list:
        """The assignment-change log entries touching this deployment."""
        prefix = f"{self.deployment.name}:"
        return [
            change
            for change in self.deployment.executor.monitor.assignment_log
            if change.process_id.startswith(prefix)
        ]

    # -- control ---------------------------------------------------------------------

    def pause(self) -> None:
        self.deployment.pause()

    def resume(self) -> None:
        self.deployment.resume()

    def teardown(self) -> None:
        self.deployment.teardown()

    def replace_operator(self, service_name: str, new_spec: OperatorSpec) -> None:
        """Modify an operator on the fly (P3) — validated before applied."""
        replace_operator_live(self.deployment, service_name, new_spec)
