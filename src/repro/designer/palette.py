"""The designer's palette: available sources and operators.

The left-hand panel of Figure 2: the sensors currently published (grouped
by the discovery service's organisation criteria) and the fixed roster of
Table 1 operations with their parameter forms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pubsub.discovery import DiscoveryService
from repro.pubsub.registry import SensorMetadata, SensorRegistry


@dataclass(frozen=True)
class PaletteEntry:
    """One draggable palette item."""

    name: str
    category: str
    description: str
    parameters: tuple[str, ...] = ()


#: The operator palette — one entry per Table 1 operation, with the
#: parameter names the designer's form asks for.
OPERATOR_PALETTE: tuple[PaletteEntry, ...] = (
    PaletteEntry("filter", "per-tuple", "σ(s, cond): keep tuples satisfying cond",
                 ("condition",)),
    PaletteEntry("transform", "per-tuple",
                 "▷trans s: rewrite attributes (units, coordinates, ...)",
                 ("assignments", "rename", "project")),
    PaletteEntry("validate", "per-tuple",
                 "check tuples against validation rules; quarantine violators",
                 ("rules",)),
    PaletteEntry("virtual-property", "per-tuple",
                 "⊎ s⟨p, spec⟩: add a computed attribute",
                 ("property_name", "spec")),
    PaletteEntry("cull-time", "per-tuple",
                 "γr(s,⟨t1,t2⟩): down-sample tuples in a time interval",
                 ("rate", "start", "end")),
    PaletteEntry("cull-space", "per-tuple",
                 "γr(s,⟨c1,c2⟩): down-sample tuples in an area",
                 ("rate", "corner1", "corner2")),
    PaletteEntry("aggregation", "windowed",
                 "@t,{a..} op(s): COUNT/AVG/SUM/MIN/MAX every t seconds",
                 ("interval", "attributes", "function")),
    PaletteEntry("join", "windowed",
                 "s1 ⋈t s2: join cached tuples every t seconds",
                 ("interval", "predicate", "left_prefix", "right_prefix")),
    PaletteEntry("trigger-on", "control",
                 "⊕ON,t: activate sensor streams when cond holds",
                 ("interval", "condition", "targets", "window")),
    PaletteEntry("trigger-off", "control",
                 "⊕OFF,t: de-activate sensor streams when cond holds",
                 ("interval", "condition", "targets", "window")),
)


class Palette:
    """Live palette bound to the pub-sub registry."""

    def __init__(self, registry: SensorRegistry) -> None:
        self.discovery = DiscoveryService(registry)

    def operators(self) -> tuple[PaletteEntry, ...]:
        return OPERATOR_PALETTE

    def sources(self, organise_by: str = "type") -> dict[str, list[SensorMetadata]]:
        """Published sensors grouped by an organisation criterion.

        ``organise_by`` is one of ``type``, ``location``, ``rate``,
        ``node`` — the criteria the requirements section names.
        """
        if organise_by == "type":
            return self.discovery.group_by_type()
        if organise_by == "location":
            return self.discovery.group_by_location()
        if organise_by == "rate":
            return self.discovery.group_by_rate()
        if organise_by == "node":
            return self.discovery.group_by_node()
        raise ValueError(
            f"unknown organisation criterion {organise_by!r}; "
            f"use type/location/rate/node"
        )

    def describe_sensor(self, metadata: SensorMetadata) -> dict:
        """The tooltip card the palette shows for one sensor."""
        return {
            "sensor_id": metadata.sensor_id,
            "type": metadata.sensor_type,
            "physical": metadata.physical,
            "schema": metadata.schema.describe(),
            "frequency_hz": metadata.frequency,
            "period_s": metadata.period,
            "themes": [str(theme) for theme in metadata.themes],
            "node": metadata.node_id,
            "description": metadata.description,
        }
