"""A designer session: the canvas plus everything around it.

Maps one-to-one onto the interactions of demo part P1:

- ``palette`` / ``discover(...)``: find the sensors available right now;
- ``add_source`` / ``add_operator`` / ``add_sink`` / ``connect`` /
  ``connect_control``: draw the dataflow;
- ``schema_pane(node)``: "the schema of data that are processed by the
  operation" (live, from the latest validation pass);
- ``issues()``: the canvas annotations of the consistency checks;
- ``preview(...)``: step-by-step sample debugging;
- ``translate()``: the DSN program of a consistent canvas;
- ``deploy()``: hand the canvas to the executor and get a live handle.
"""

from __future__ import annotations

import json

from repro.errors import DataflowError
from repro.dataflow.graph import Dataflow, SinkKind
from repro.dataflow.ops import OperatorSpec
from repro.dataflow.sample import SampleResult, run_sample, sample_from_sensors
from repro.dataflow.serialize import dataflow_from_dict, dataflow_to_dict
from repro.dataflow.validate import ValidationReport, validate_dataflow
from repro.designer.deploy import DeploymentHandle
from repro.designer.palette import Palette
from repro.dsn.ast import DsnProgram
from repro.dsn.generate import dataflow_to_dsn
from repro.network.qos import QosPolicy
from repro.pubsub.discovery import DiscoveryService
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.executor import Executor


class DesignerSession:
    """One user's canvas bound to a live StreamLoader stack.

    >>> session = DesignerSession(executor, name="my-flow")  # doctest: +SKIP
    """

    def __init__(self, executor: Executor, name: str = "dataflow") -> None:
        self.executor = executor
        self.flow = Dataflow(name)
        self.palette = Palette(executor.broker_network.registry)
        self._report: "ValidationReport | None" = None

    # -- discovery (P1: identify available sensors) ---------------------------

    def discover(self, **criteria) -> list[SensorMetadata]:
        """Find sensors by type/theme/area/physical (see DiscoveryService)."""
        service = DiscoveryService(self.executor.broker_network.registry)
        return service.find(**criteria)

    # -- canvas editing -------------------------------------------------------

    def add_source(
        self,
        filter_: "SubscriptionFilter | str",
        node_id: str = "",
        initially_active: bool = True,
        label: str = "",
    ) -> str:
        """Drop a source on the canvas.

        ``filter_`` may be a filter object or a bare sensor id string.
        """
        if isinstance(filter_, str):
            filter_ = SubscriptionFilter.for_sensor(filter_)
        node = self.flow.add_source(
            filter_, node_id=node_id, initially_active=initially_active, label=label
        )
        self._revalidate()
        return node

    def add_operator(self, spec: OperatorSpec, node_id: str = "", label: str = "") -> str:
        node = self.flow.add_operator(spec, node_id=node_id, label=label)
        self._revalidate()
        return node

    def add_sink(
        self,
        sink_kind: str = SinkKind.COLLECTOR,
        config: "dict | None" = None,
        qos: "QosPolicy | None" = None,
        node_id: str = "",
        label: str = "",
    ) -> str:
        node = self.flow.add_sink(
            sink_kind=sink_kind, config=config, qos=qos, node_id=node_id, label=label
        )
        self._revalidate()
        return node

    def connect(self, source_id: str, target_id: str, port: int = 0) -> None:
        self.flow.connect(source_id, target_id, port)
        self._revalidate()

    def connect_control(self, trigger_id: str, source_id: str) -> None:
        self.flow.connect_control(trigger_id, source_id)
        self._revalidate()

    def remove_node(self, node_id: str) -> None:
        self.flow.remove_node(node_id)
        self._revalidate()

    # -- feedback panes ------------------------------------------------------------

    def _revalidate(self) -> ValidationReport:
        self._report = validate_dataflow(
            self.flow, self.executor.broker_network.registry
        )
        return self._report

    def validate(self) -> ValidationReport:
        """Run the consistency checks; the report annotates canvas nodes."""
        return self._revalidate()

    def issues(self) -> list[str]:
        report = self._report or self._revalidate()
        return [str(issue) for issue in report.issues]

    @property
    def is_consistent(self) -> bool:
        report = self._report or self._revalidate()
        return report.is_valid

    def schema_pane(self, node_id: str) -> str:
        """The bottom-pane schema display for one canvas node."""
        report = self._report or self._revalidate()
        if node_id not in self.flow:
            raise DataflowError(f"no node {node_id!r} on the canvas")
        schema = report.schemas.get(node_id)
        if schema is None:
            return "(schema unavailable: fix upstream issues first)"
        return schema.describe()

    def preview(
        self,
        sensors: "dict[str, object] | None" = None,
        samples: "dict | None" = None,
        count: int = 5,
        start: float = 0.0,
    ) -> SampleResult:
        """Step-by-step sample debugging (P1).

        Provide either ``sensors`` (source node id -> SimulatedSensor, the
        samples are probed) or ready-made ``samples`` batches.
        """
        if samples is None:
            if sensors is None:
                raise DataflowError("preview needs sensors or sample batches")
            samples = sample_from_sensors(self.flow, sensors, count=count, start=start)
        return run_sample(
            self.flow, samples, self.executor.broker_network.registry
        )

    def render(self, fmt: str = "ascii") -> str:
        """Draw the canvas: ``ascii`` for terminals, ``dot`` for Graphviz."""
        from repro.dataflow.render import render_ascii, to_dot

        if fmt == "ascii":
            return render_ascii(self.flow)
        if fmt == "dot":
            return to_dot(self.flow)
        raise DataflowError(f"unknown canvas format {fmt!r}; use ascii/dot")

    # -- persistence ---------------------------------------------------------------

    def save(self) -> str:
        """Serialize the canvas to its JSON document."""
        return json.dumps(dataflow_to_dict(self.flow), indent=2, sort_keys=True)

    def load(self, document: str) -> None:
        """Replace the canvas with a saved document."""
        self.flow = dataflow_from_dict(json.loads(document))
        self._revalidate()

    # -- translation & deployment (P2) ------------------------------------------------

    def translate(self) -> DsnProgram:
        """The DSN program of the (consistent) canvas.

        Raises :class:`repro.errors.ValidationError` otherwise — the
        translate button is greyed out until the canvas is consistent.
        """
        return dataflow_to_dsn(self.flow, self.executor.broker_network.registry)

    def deploy(self) -> DeploymentHandle:
        """Deploy the canvas; returns the live handle with annotations."""
        deployment = self.executor.deploy(self.flow)
        return DeploymentHandle(deployment=deployment, session=self)
