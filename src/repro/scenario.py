"""Ready-made stacks and scenario dataflows.

Examples, tests and benchmarks all need the same setup: a topology, a
network simulator, a broker network, a sensor fleet, sinks, and an
executor.  :func:`build_stack` assembles one; :func:`osaka_scenario_flow`
builds the exact dataflow of the paper's Section 3 scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import AggregationSpec, FilterSpec, TriggerOnSpec
from repro.dsn.scn import ScnController
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.obs import Observability
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.backends import (
    AsyncBackend,
    ExecutionBackend,
    backend_from_name,
)
from repro.runtime.executor import Deployment, Executor
from repro.sensors.base import BatchingPolicy, SimulatedSensor
from repro.sensors.osaka import osaka_fleet
from repro.sticker.feed import StickerFeed
from repro.warehouse.loader import EventWarehouse


@dataclass
class Stack:
    """Everything a running StreamLoader instance consists of."""

    topology: Topology
    netsim: NetworkSimulator
    broker_network: BrokerNetwork
    executor: Executor
    warehouse: EventWarehouse
    sticker: StickerFeed
    fleet: list[SimulatedSensor]
    obs: "Observability | None" = None
    #: The execution backend the stack runs on (None on stacks built
    #: before the backend seam existed — treated as the simulator).
    backend: "ExecutionBackend | None" = None

    @property
    def clock(self):
        return self.netsim.clock

    def sensor(self, sensor_id: str) -> SimulatedSensor:
        for sensor in self.fleet:
            if sensor.sensor_id == sensor_id:
                return sensor
        raise KeyError(f"no sensor {sensor_id!r} in the fleet")

    def run_until(self, time: float) -> int:
        return self.clock.run_until(time)

    def close(self) -> None:
        """Release backend resources (asyncio tasks/loops).  Idempotent."""
        if self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "Stack":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build_stack(
    topology: "Topology | None" = None,
    hot: bool = True,
    extended: bool = False,
    seed: int = 7,
    scn: "ScnController | None" = None,
    attach_fleet: bool = True,
    rebalance_interval: float = 300.0,
    replicas: int = 1,
    observability: "Observability | bool | float | None" = None,
    batching: "BatchingPolicy | int | None" = None,
    latency: bool = False,
    alert_cadence: float = 60.0,
    backend: "str | ExecutionBackend" = "sim",
    time_scale: "float | None" = None,
) -> Stack:
    """Assemble a full StreamLoader stack with the Osaka fleet.

    Args:
        topology: defaults to a 4-leaf star.
        hot: temperature regime (True: afternoons cross 25 °C).
        extended: include the full physical/social sensor roster.
        seed: fleet determinism seed.
        scn: custom controller (e.g. the centralized baseline).
        attach_fleet: set False to publish/attach sensors yourself.
        rebalance_interval: SCN coordination cadence in seconds.
        observability: ``True`` for a default bundle (sampling 1.0), a
            float for a bundle with that trace sampling rate, an
            :class:`~repro.obs.Observability` to bring your own, or
            None/False to run without metrics/tracing/lineage.
        batching: micro-batch policy for every fleet sensor — a
            :class:`~repro.sensors.base.BatchingPolicy`, an int ``n`` as
            shorthand for ``BatchingPolicy(max_batch=n, max_delay=1.0)``,
            or None for tuple-at-a-time emission (today's behaviour).
        latency: install the latency/watermark plane up front (``repro
            health`` uses this); implies a default observability bundle
            (sampling 0.0 — no tracing) when none was requested.
        alert_cadence: virtual-time cadence of the executor's alert
            engine ticks (only relevant once SLO rules are deployed).
        backend: execution backend — ``"sim"`` (deterministic
            discrete-event, the default and oracle), ``"async"`` (real
            asyncio tasks and bounded queues), or a pre-built
            :class:`~repro.runtime.backends.ExecutionBackend`.
        time_scale: async-backend pacing, in virtual seconds per wall
            second (``None``/``0`` free-runs).  Ignored by the simulator.
    """
    if observability is True:
        obs: "Observability | None" = Observability()
    elif isinstance(observability, (int, float)) and observability is not False:
        obs = Observability(sampling=float(observability))
    else:
        obs = observability or None
    if latency:
        if obs is None:
            obs = Observability(sampling=0.0)
        obs.ensure_latency()
    if isinstance(backend, str):
        topology = topology if topology is not None else Topology.star(leaf_count=4)
        if backend == "async":
            backend_obj: ExecutionBackend = AsyncBackend(
                topology=topology, time_scale=time_scale
            )
        else:
            backend_obj = backend_from_name(backend, topology=topology)
    else:
        # A pre-built backend brings its own topology (the ``topology``
        # argument would have had to be threaded into its constructor).
        backend_obj = backend
        topology = backend_obj.topology
    netsim = backend_obj.transport
    broker_network = BrokerNetwork(netsim=netsim)
    warehouse = EventWarehouse()
    sticker = StickerFeed()
    executor = Executor(
        netsim,
        broker_network,
        scn=scn or ScnController(topology),
        warehouse=warehouse,
        sticker=sticker,
        rebalance_interval=rebalance_interval,
        obs=obs,
        alert_cadence=alert_cadence,
        backend=backend_obj,
    )
    fleet = osaka_fleet(topology, hot=hot, extended=extended, seed=seed,
                        replicas=replicas)
    if isinstance(batching, int) and not isinstance(batching, bool):
        batching = BatchingPolicy(max_batch=batching, max_delay=1.0)
    if batching is not None:
        for sensor in fleet:
            sensor.batching = batching
    if attach_fleet:
        for sensor in fleet:
            sensor.attach(broker_network, netsim.clock)
    return Stack(
        topology=topology,
        netsim=netsim,
        broker_network=broker_network,
        executor=executor,
        warehouse=warehouse,
        sticker=sticker,
        fleet=fleet,
        obs=obs,
        backend=backend_obj,
    )


def apply_batch_hints(
    deployment: Deployment,
    fleet: "list[SimulatedSensor]",
    max_delay: float = 1.0,
) -> int:
    """Apply a deployment's DSN batch hints to the matched sensors.

    The SCN/DSN layer declares per-channel ``batch`` hints (derived from
    advertised sensor frequencies by the translator); the executor records
    them per source service at deploy time, and this helper closes the
    loop by configuring the actual sensor objects — which the executor
    never owns — to flush at that size.  Returns the number of sensors
    reconfigured.
    """
    configured = 0
    by_id = {sensor.sensor_id: sensor for sensor in fleet}
    for service_name, batch in deployment.batch_hints.items():
        binding = deployment.bindings.get(service_name)
        if binding is None or batch <= 1:
            continue
        for sensor_id in binding.sensor_ids:
            sensor = by_id.get(sensor_id)
            if sensor is None:
                continue
            sensor.set_batching(
                BatchingPolicy(max_batch=batch, max_delay=max_delay)
            )
            configured += 1
    return configured


def sharded_aggregation_flow(
    stack: Stack,
    interval: float = 300.0,
    function: str = "AVG",
) -> Dataflow:
    """A scale-out scenario: per-station temperature averages.

    The simplest flow that exercises key-partitioned sharding: every
    physical sensor stamps its readings with a ``station`` attribute, and
    a grouped aggregation over it partitions cleanly (each station's
    groups live on exactly one shard).  Deploy with
    ``stack.executor.deploy(flow, shards=N)`` to split the aggregation
    into N replicas; the DSN program gains a
    ``shard "station-avg" N by "station";`` clause and the merge stage
    re-establishes the unsharded flush order downstream.
    """
    del stack  # symmetry with osaka_scenario_flow; the flow needs no fleet info
    flow = Dataflow("station-averages")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temperature"
    )
    averages = flow.add_operator(
        AggregationSpec(
            interval=interval,
            attributes=("temperature",),
            function=function,
            group_by="station",
        ),
        node_id="station-avg",
    )
    sink = flow.add_sink("collector", node_id="averages")
    flow.connect(temp, averages)
    flow.connect(averages, sink)
    return flow


def fused_pipeline_flow(stack: Stack) -> Dataflow:
    """A fusion scenario: a 3-op non-blocking chain over temperatures.

    The simplest flow that exercises operator fusion: keep -> double ->
    shift is a maximal linear chain of non-blocking operators, so the
    planner collapses it into one ``keep+double+shift`` process by
    default.  Deploy with ``fuse=False`` to keep one process per
    operator; either way the sink contents are identical.
    """
    del stack  # symmetry with osaka_scenario_flow; no fleet info needed
    from repro.dataflow.ops import TransformSpec, VirtualPropertySpec

    flow = Dataflow("fused-pipeline")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temperature"
    )
    keep = flow.add_operator(
        FilterSpec("temperature > -100"), node_id="keep"
    )
    double = flow.add_operator(
        VirtualPropertySpec("double_temp", "temperature * 2"),
        node_id="double",
    )
    shift = flow.add_operator(
        TransformSpec(assignments={"temperature": "temperature + 1"}),
        node_id="shift",
    )
    sink = flow.add_sink("collector", node_id="fused-out")
    flow.connect(temp, keep)
    flow.connect(keep, double)
    flow.connect(double, shift)
    flow.connect(shift, sink)
    return flow


def osaka_scenario_flow(
    stack: Stack,
    temperature_threshold: float = 25.0,
    rain_threshold_mmh: float = 10.0,
    check_interval: float = 300.0,
    window: float = 3600.0,
) -> Dataflow:
    """The Section 3 scenario as a conceptual dataflow.

    "Acquiring the data about torrential rain, tweets and traffic only when
    the temperature identified in the last hour is above 25 °C": a Trigger
    On over the temperature streams gates three initially-dormant sources;
    torrential rain is filtered and warehoused; tweets go to Sticker;
    traffic is collected.
    """
    gated_types = ("rain", "twitter", "traffic")
    targets = tuple(
        sensor.sensor_id
        for sensor in stack.fleet
        if sensor.metadata.sensor_type in gated_types
    )

    flow = Dataflow("osaka-scenario")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temperature"
    )
    rain = flow.add_source(
        SubscriptionFilter(sensor_type="rain"), node_id="rain", initially_active=False
    )
    tweets = flow.add_source(
        SubscriptionFilter(sensor_type="twitter"),
        node_id="tweets",
        initially_active=False,
    )
    traffic = flow.add_source(
        SubscriptionFilter(sensor_type="traffic"),
        node_id="traffic",
        initially_active=False,
    )
    trigger = flow.add_operator(
        TriggerOnSpec(
            interval=check_interval,
            window=window,
            condition=f"avg_temperature > {temperature_threshold}",
            targets=targets,
        ),
        node_id="hot-hour-trigger",
    )
    torrential = flow.add_operator(
        FilterSpec(f"rain_rate > {rain_threshold_mmh}"), node_id="torrential"
    )
    warehouse_sink = flow.add_sink("warehouse", node_id="event-warehouse")
    sticker_sink = flow.add_sink("visualization", node_id="sticker")
    traffic_sink = flow.add_sink("collector", node_id="traffic-collector")

    flow.connect(temp, trigger)
    flow.connect(rain, torrential)
    flow.connect(torrential, warehouse_sink)
    flow.connect(tweets, sticker_sink)
    flow.connect(traffic, traffic_sink)
    for gated in (rain, tweets, traffic):
        flow.connect_control(trigger, gated)
    return flow
