"""ASCII renderings of Sticker feed contents (a map front end stand-in)."""

from __future__ import annotations

from repro.sticker.feed import StickerFeed

_SHADES = " .:-=+*#%@"


def render_series(
    feed: StickerFeed, theme: str, attribute: "str | None" = None, width: int = 50
) -> str:
    """A sparkline-style trend of one theme over time.

    Plots counts, or the mean of ``attribute`` when given.
    """
    series = feed.series(theme)
    if not series:
        return f"(no data for theme {theme!r})"
    values = [
        point.count if attribute is None else point.mean(attribute)
        for point in series
    ]
    finite = [v for v in values if v == v]  # drop NaNs
    if not finite:
        return f"(no numeric data for {attribute!r} under theme {theme!r})"
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0
    lines = [f"trend {theme!r}" + (f" mean({attribute})" if attribute else " count")]
    for point, value in zip(series, values):
        if value != value:
            bar = "(nan)"
        else:
            bar = "#" * max(1, int((value - low) / span * width))
        label = f"{value:10.2f}" if value == value else "       nan"
        lines.append(f"  t={point.bucket_start:>10.0f} {label} {bar}")
    return "\n".join(lines)


def render_map(feed: StickerFeed, theme: str, bucket_start: "float | None" = None) -> str:
    """An ASCII heat map of one theme's counts over the binned cells."""
    bins = [b for b in feed.bins() if b.theme == theme]
    if bucket_start is not None:
        bins = [b for b in bins if b.bucket_start == bucket_start]
    if not bins:
        return f"(no cells for theme {theme!r})"
    rows = sorted({b.row for b in bins})
    cols = sorted({b.col for b in bins})
    peak = max(b.count for b in bins) or 1
    by_cell: dict[tuple[int, int], int] = {}
    for b in bins:
        by_cell[(b.row, b.col)] = by_cell.get((b.row, b.col), 0) + b.count
    lines = [f"map {theme!r} (peak={peak})"]
    # Northern rows first, like a map.
    for row in reversed(rows):
        cells = []
        for col in cols:
            count = by_cell.get((row, col), 0)
            shade = _SHADES[min(len(_SHADES) - 1, int(count / peak * (len(_SHADES) - 1)))]
            cells.append(shade)
        lines.append(f"  {row:>6} |{''.join(cells)}|")
    lines.append(f"         cols {cols[0]}..{cols[-1]}")
    return "\n".join(lines)
