"""Sticker visualization feed (the paper's reference [11], reimplemented).

The demo "visualize[s] in the Sticker visualization tool" — a geo-temporal
topic-trend viewer (mTrend/Sticker at NICT).  Here the feed side of that
tool: processed tuples are binned into (time bucket, space cell, theme)
aggregates, queryable as trend series and renderable as ASCII heat maps —
the data a map front end would draw.
"""

from repro.sticker.feed import StickerFeed, TrendPoint
from repro.sticker.render import render_map, render_series

__all__ = ["StickerFeed", "TrendPoint", "render_map", "render_series"]
