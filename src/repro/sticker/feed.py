"""The Sticker feed: binned geo-temporal aggregates of a stream."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StreamLoaderError
from repro.streams.tuple import SensorTuple
from repro.stt.spatial import grid_cell_for, representative_point
from repro.stt.thematic import Theme


@dataclass(frozen=True)
class _BinKey:
    bucket: int
    row: int
    col: int
    theme: str


@dataclass
class TrendPoint:
    """One (time bucket, cell, theme) aggregate."""

    bucket_start: float
    row: int
    col: int
    theme: str
    count: int = 0
    numeric_sums: dict[str, float] = field(default_factory=dict)
    numeric_counts: dict[str, int] = field(default_factory=dict)

    def mean(self, attribute: str) -> float:
        count = self.numeric_counts.get(attribute, 0)
        if count == 0:
            return float("nan")
        return self.numeric_sums[attribute] / count


class StickerFeed:
    """Accumulates pushed tuples into trend bins.

    Args:
        bucket_seconds: temporal bin width.
        cell_granularity: spatial bin granularity (a gridded level).
    """

    def __init__(
        self, bucket_seconds: float = 3600.0, cell_granularity: str = "district"
    ) -> None:
        if bucket_seconds <= 0:
            raise StreamLoaderError(
                f"bucket_seconds must be positive: {bucket_seconds}"
            )
        self.bucket_seconds = bucket_seconds
        self.cell_granularity = cell_granularity
        self._bins: dict[_BinKey, TrendPoint] = {}
        self.pushed = 0

    def push(self, tuple_: SensorTuple) -> None:
        """Accumulate one processed tuple into its bins (one per theme)."""
        self.pushed += 1
        bucket = int(tuple_.stamp.time // self.bucket_seconds)
        point = representative_point(tuple_.stamp.location)
        cell = grid_cell_for(point, self.cell_granularity)
        themes = [theme.path for theme in tuple_.stamp.themes] or ["(untagged)"]
        for theme in themes:
            key = _BinKey(bucket=bucket, row=cell.row, col=cell.col, theme=theme)
            bin_ = self._bins.get(key)
            if bin_ is None:
                bin_ = TrendPoint(
                    bucket_start=bucket * self.bucket_seconds,
                    row=cell.row,
                    col=cell.col,
                    theme=theme,
                )
                self._bins[key] = bin_
            bin_.count += 1
            for name, value in tuple_.payload.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    bin_.numeric_sums[name] = (
                        bin_.numeric_sums.get(name, 0.0) + float(value)
                    )
                    bin_.numeric_counts[name] = bin_.numeric_counts.get(name, 0) + 1

    # -- queries ------------------------------------------------------------

    def bins(self) -> list[TrendPoint]:
        return sorted(
            self._bins.values(),
            key=lambda b: (b.bucket_start, b.theme, b.row, b.col),
        )

    def series(self, theme: "Theme | str") -> list[TrendPoint]:
        """Time-ordered trend of one theme, summed over space."""
        target = theme if isinstance(theme, Theme) else Theme(theme)
        by_bucket: dict[float, TrendPoint] = {}
        for bin_ in self._bins.values():
            if not Theme(bin_.theme).matches(target):
                continue
            merged = by_bucket.get(bin_.bucket_start)
            if merged is None:
                merged = TrendPoint(
                    bucket_start=bin_.bucket_start, row=-1, col=-1, theme=target.path
                )
                by_bucket[bin_.bucket_start] = merged
            merged.count += bin_.count
            for name, total in bin_.numeric_sums.items():
                merged.numeric_sums[name] = merged.numeric_sums.get(name, 0.0) + total
                merged.numeric_counts[name] = (
                    merged.numeric_counts.get(name, 0) + bin_.numeric_counts[name]
                )
        return [by_bucket[key] for key in sorted(by_bucket)]

    def themes(self) -> list[str]:
        return sorted({bin_.theme for bin_ in self._bins.values()})

    def to_json_documents(self) -> list[dict]:
        """The wire format a map front end would consume."""
        return [
            {
                "bucket_start": bin_.bucket_start,
                "cell": [bin_.row, bin_.col],
                "theme": bin_.theme,
                "count": bin_.count,
                "means": {
                    name: bin_.mean(name) for name in sorted(bin_.numeric_counts)
                },
            }
            for bin_ in self.bins()
        ]
