"""Property-based tests: sharded blocking operators are semantically invisible.

DESIGN.md's §12 promise: splitting a blocking operator into N key-hashed
shard replicas changes *where* its groups accumulate, never *what* flows
downstream.  For random key distributions and shard counts — composed with
micro-batching both on and off — a sharded deployment must leave every
observable identical to the unsharded one: sink contents (payloads,
sources, seq numbers, virtual times), per-group aggregates, and retry
dead-letter audit records.  Shard checkpoints must additionally round-trip
through restore into a fresh replica.

All runs drive a single-node topology at fixed virtual times (delivery is
local and zero-latency), the same discipline as the batch-parity suite:
the merge stage's ordering guarantee is exact when envelope arrival order
is monotone in the order key, which local delivery guarantees.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import AggregationSpec, JoinSpec
from repro.dsn.scn import ScnController
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.executor import Executor
from repro.schema.schema import StreamSchema
from repro.streams.shard import ShardedOperatorAdapter, partition_index
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

SHARD_COUNTS = (1, 2, 4)
BATCH_SIZES = (1, 16)


def _metadata(sensor_id: str, sensor_type: str, node_id: str) -> SensorMetadata:
    return SensorMetadata(
        sensor_id=sensor_id,
        sensor_type=sensor_type,
        schema=StreamSchema.build(
            {"value": "float", "station": "str"},
            themes=(f"weather/{sensor_type}",),
        ),
        frequency=1.0,
        location=Point(34.69, 135.50),
        node_id=node_id,
    )


def _reading(sensor_id: str, seq: int, value: float, station: str) -> SensorTuple:
    return SensorTuple(
        payload={"value": value, "station": station},
        stamp=SttStamp(time=float(seq) * 0.25, location=Point(34.69, 135.50)),
        source=sensor_id,
        seq=seq,
    )


#: (value, station index) streams; station indexes draw from a small
#: alphabet so groups collide across shards and windows.
readings = st.lists(
    st.tuples(
        st.floats(min_value=-50.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(0, 9),
    ),
    min_size=1, max_size=48,
)

functions = st.sampled_from(["AVG", "SUM", "MIN", "MAX", "COUNT"])


def _stack():
    topology = Topology()
    topology.add_node("hub")
    netsim = NetworkSimulator(topology=topology)
    network = BrokerNetwork(netsim=netsim)
    executor = Executor(netsim, network, scn=ScnController(topology))
    return netsim, network, executor


def _publish(network, sensor_id, tuples, batch_size):
    if batch_size == 1:
        for tuple_ in tuples:
            network.publish_data(sensor_id, tuple_)
    else:
        for start in range(0, len(tuples), batch_size):
            network.publish_batch(sensor_id, tuples[start:start + batch_size])


def _observables(deployment, sink_name):
    return [
        (t.seq, t.source, t.stamp.time, dict(t.payload))
        for t in deployment.collected(sink_name)
    ]


def _run_aggregation(stream, function, shard_count, batch_size):
    netsim, network, executor = _stack()
    network.publish(_metadata("prop-temp", "temperature", "hub"))

    flow = Dataflow("shard-parity")
    source = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="src"
    )
    agg = flow.add_operator(
        AggregationSpec(interval=7.0, attributes=("value",),
                        function=function, group_by="station"),
        node_id="agg",
    )
    sink = flow.add_sink("collector", node_id="out")
    flow.connect(source, agg)
    flow.connect(agg, sink)
    deployment = executor.deploy(
        flow, shards={"agg": shard_count} if shard_count > 1 else None
    )

    tuples = [
        _reading("prop-temp", i, value, f"st-{station}")
        for i, (value, station) in enumerate(stream)
    ]
    _publish(network, "prop-temp", tuples, batch_size)
    netsim.clock.run_until(60.0)
    return deployment, _observables(deployment, "out")


def _run_join(left_stream, right_stream, shard_count, batch_size):
    netsim, network, executor = _stack()
    network.publish(_metadata("prop-temp", "temperature", "hub"))
    network.publish(_metadata("prop-hum", "humidity", "hub"))

    flow = Dataflow("shard-join-parity")
    left = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="left"
    )
    right = flow.add_source(
        SubscriptionFilter(sensor_type="humidity"), node_id="right"
    )
    join = flow.add_operator(
        JoinSpec(interval=7.0, predicate="left.station == right.station"),
        node_id="join",
    )
    sink = flow.add_sink("collector", node_id="out")
    flow.connect(left, join, port=0)
    flow.connect(right, join, port=1)
    flow.connect(join, sink)
    deployment = executor.deploy(
        flow, shards={"join": shard_count} if shard_count > 1 else None
    )

    left_tuples = [
        _reading("prop-temp", i, value, f"st-{station}")
        for i, (value, station) in enumerate(left_stream)
    ]
    right_tuples = [
        _reading("prop-hum", i, value, f"st-{station}")
        for i, (value, station) in enumerate(right_stream)
    ]
    _publish(network, "prop-temp", left_tuples, batch_size)
    _publish(network, "prop-hum", right_tuples, batch_size)
    netsim.clock.run_until(60.0)
    return deployment, _observables(deployment, "out")


class TestAggregationShardParity:
    @given(readings, functions, st.sampled_from(SHARD_COUNTS),
           st.sampled_from(BATCH_SIZES))
    @settings(max_examples=50, deadline=None)
    def test_sharded_aggregation_is_equivalent(self, stream, function,
                                               shard_count, batch_size):
        _, baseline = _run_aggregation(stream, function,
                                       shard_count=1, batch_size=1)
        _, sharded = _run_aggregation(stream, function,
                                      shard_count=shard_count,
                                      batch_size=batch_size)
        assert sharded == baseline

    @given(readings, st.sampled_from((2, 4)))
    @settings(max_examples=25, deadline=None)
    def test_shard_checkpoints_restore_into_fresh_replicas(self, stream,
                                                           shard_count):
        """Every shard's checkpoint rebuilds an identical replica."""
        deployment, _ = _run_aggregation(stream, "SUM",
                                         shard_count=shard_count,
                                         batch_size=1)
        group = deployment.shard_groups["agg"]
        for index, member in enumerate(group.members):
            snapshot = member.operator.checkpoint()
            spec = AggregationSpec(interval=7.0, attributes=("value",),
                                   function="SUM", group_by="station")
            fresh = ShardedOperatorAdapter(
                spec.build_operator(), shard_index=index,
                shard_count=shard_count,
            )
            fresh.restore(snapshot)
            assert fresh.checkpoint() == snapshot

    @given(readings, st.sampled_from((2, 4)))
    @settings(max_examples=25, deadline=None)
    def test_tuples_route_to_exactly_one_shard(self, stream, shard_count):
        """The runtime routes each tuple to the shard its key hashes to,
        so every group key accumulates on exactly one replica."""
        deployment, _ = _run_aggregation(stream, "COUNT",
                                         shard_count=shard_count,
                                         batch_size=1)
        group = deployment.shard_groups["agg"]
        expected = Counter(
            partition_index((f"st-{station}",), shard_count)
            for _, station in stream
        )
        for index, member in enumerate(group.members):
            assert member.operator.stats.tuples_in == expected[index]


class TestJoinShardParity:
    @given(readings, readings, st.sampled_from(SHARD_COUNTS),
           st.sampled_from(BATCH_SIZES))
    @settings(max_examples=40, deadline=None)
    def test_sharded_join_is_equivalent(self, left_stream, right_stream,
                                        shard_count, batch_size):
        _, baseline = _run_join(left_stream, right_stream,
                                shard_count=1, batch_size=1)
        _, sharded = _run_join(left_stream, right_stream,
                               shard_count=shard_count,
                               batch_size=batch_size)
        assert sharded == baseline


class TestShardDeadLetterParity:
    @given(readings, st.sampled_from((2, 4)), st.sampled_from(BATCH_SIZES))
    @settings(max_examples=25, deadline=None)
    def test_retry_exhaustion_audits_each_tuple_once(self, stream,
                                                     shard_count, batch_size):
        """A dead member's retries dead-letter each routed tuple exactly
        once, at the same (seq, reason) points as an unsharded subscriber."""
        def run(shard_count: int, batch_size: int):
            netsim = NetworkSimulator(topology=Topology.line(2))
            network = BrokerNetwork(netsim=netsim)
            network.publish(_metadata("prop-temp", "temperature", "node-0"))
            if shard_count == 1:
                subscriptions = [network.subscribe(
                    "node-1", SubscriptionFilter(sensor_type="temperature"),
                    lambda tuple_: None,
                )]
            else:
                router = network.subscribe_sharded(
                    node_ids=["node-1"] * shard_count,
                    filter_=SubscriptionFilter(sensor_type="temperature"),
                    callbacks=[lambda tuple_: None] * shard_count,
                    keys=("station",),
                )
                subscriptions = router.members
            netsim.topology.node("node-1").fail()
            tuples = [
                _reading("prop-temp", i, value, f"st-{station}")
                for i, (value, station) in enumerate(stream)
            ]
            _publish(network, "prop-temp", tuples, batch_size)
            netsim.clock.run()
            letters = [
                (letter.tuple.seq, letter.reason)
                for subscription in subscriptions
                for letter in subscription.dead_letters
            ]
            return sorted(letters)

        assert run(shard_count, batch_size) == run(1, 1)
