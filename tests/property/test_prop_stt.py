"""Property-based tests for the STT data model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stt.geo import LocalGrid, from_web_mercator, haversine_m, to_web_mercator
from repro.stt.granularity import (
    TEMPORAL_GRANULARITIES,
    common_temporal,
    temporal_granularity,
)
from repro.stt.spatial import Point, grid_cell_for
from repro.stt.temporal import align_instant, granule_index
from repro.stt.units import DEFAULT_UNITS

granularities = st.sampled_from(sorted(TEMPORAL_GRANULARITIES))
times = st.floats(min_value=0.0, max_value=3.0e8, allow_nan=False)
lats = st.floats(min_value=-80.0, max_value=80.0, allow_nan=False)
lons = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)


class TestTemporalAlignment:
    @given(times, granularities)
    def test_alignment_idempotent(self, t, gran):
        once = align_instant(t, gran)
        assert align_instant(once, gran) == once

    @given(times, granularities)
    def test_alignment_floors(self, t, gran):
        aligned = align_instant(t, gran)
        assert aligned <= t
        # Months run up to 31 days and years 365; nominal sizes are 30/365.
        slack = {"month": 31 * 86400.0, "year": 365 * 86400.0}
        limit = slack.get(gran, temporal_granularity(gran).seconds)
        assert t - aligned <= limit + 1e-6

    @given(times, times, granularities)
    def test_same_index_iff_same_aligned_start(self, t1, t2, gran):
        same_index = granule_index(t1, gran) == granule_index(t2, gran)
        same_start = align_instant(t1, gran) == align_instant(t2, gran)
        assert same_index == same_start

    @given(times, granularities, granularities)
    def test_coarser_alignment_is_no_later_for_nested(self, t, g1, g2):
        # Weeks do not nest inside months/years, so the property only
        # holds for nested pairs (the chains second..week and day..year).
        fine, coarse = sorted(
            (temporal_granularity(g1), temporal_granularity(g2)),
            key=lambda g: g.rank,
        )
        if fine.name == "week" and coarse.name in ("month", "year"):
            return
        assert align_instant(t, coarse) <= align_instant(t, fine) + 1e-9

    @given(st.lists(granularities, min_size=1, max_size=4))
    def test_common_temporal_is_upper_bound(self, grans):
        top = common_temporal(*grans)
        assert all(temporal_granularity(g).rank <= top.rank for g in grans)
        assert top.name in [temporal_granularity(g).name for g in grans]


class TestSpatialGrid:
    @given(lats, lons)
    def test_cell_contains_point(self, lat, lon):
        point = Point(lat, lon)
        for gran in ("block", "city", "prefecture"):
            cell = grid_cell_for(point, gran)
            assert cell.bounds().contains(point)

    @given(lats, lons, lats, lons)
    def test_same_cell_implies_bounded_distance(self, lat1, lon1, lat2, lon2):
        a, b = Point(lat1, lon1), Point(lat2, lon2)
        cell_a = grid_cell_for(a, "city")
        cell_b = grid_cell_for(b, "city")
        if cell_a == cell_b:
            # Cell diagonal in degrees, converted loosely to meters.
            max_deg = cell_a._deg_lat * math.sqrt(2)
            assert abs(a.lat - b.lat) <= max_deg + 1e-9


class TestGeoRoundTrips:
    @given(lats, lons)
    def test_web_mercator_round_trip(self, lat, lon):
        x, y = to_web_mercator(lat, lon)
        back_lat, back_lon = from_web_mercator(x, y)
        assert math.isclose(back_lat, lat, abs_tol=1e-9)
        assert math.isclose(back_lon, lon, abs_tol=1e-9)

    @given(lats, lons, st.floats(min_value=-2e4, max_value=2e4),
           st.floats(min_value=-2e4, max_value=2e4))
    def test_local_grid_round_trip(self, olat, olon, east, north):
        grid = LocalGrid(olat, olon)
        lat, lon = grid.to_wgs84(east, north)
        back = grid.to_local(lat, lon)
        assert math.isclose(back[0], east, abs_tol=1e-6)
        assert math.isclose(back[1], north, abs_tol=1e-6)

    @given(lats, lons, lats, lons)
    def test_haversine_symmetric_and_nonnegative(self, lat1, lon1, lat2, lon2):
        d1 = haversine_m(lat1, lon1, lat2, lon2)
        d2 = haversine_m(lat2, lon2, lat1, lon1)
        assert d1 >= 0.0
        assert math.isclose(d1, d2, rel_tol=1e-12, abs_tol=1e-9)


class TestUnits:
    unit_pairs = st.sampled_from([
        ("meter", "yard"), ("meter", "mile"), ("celsius", "fahrenheit"),
        ("celsius", "kelvin"), ("kmh", "mps"), ("kmh", "knot"),
        ("hpa", "atm"), ("percent", "fraction"), ("hour", "second"),
    ])
    values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)

    @given(values, unit_pairs)
    def test_conversion_round_trip(self, value, pair):
        src, dst = pair
        there = DEFAULT_UNITS.convert(value, src, dst)
        back = DEFAULT_UNITS.convert(there, dst, src)
        assert math.isclose(back, value, rel_tol=1e-9, abs_tol=1e-6)

    @given(values, values, unit_pairs)
    def test_conversion_is_affine_monotone(self, a, b, pair):
        src, dst = pair
        if a < b:
            assert (DEFAULT_UNITS.convert(a, src, dst)
                    <= DEFAULT_UNITS.convert(b, src, dst))
