"""Property-based tests for schemas and schema inference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.infer import join_schema, aggregate_schema
from repro.schema.schema import Attribute, StreamSchema
from repro.schema.types import AttributeType

attr_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
attr_types = st.sampled_from(
    [AttributeType.BOOL, AttributeType.INT, AttributeType.FLOAT,
     AttributeType.STRING]
)


@st.composite
def schemas(draw, min_attrs=1, max_attrs=6):
    names = draw(st.lists(attr_names, min_size=min_attrs, max_size=max_attrs,
                          unique=True))
    attrs = tuple(
        Attribute(name, draw(attr_types)) for name in names
    )
    return StreamSchema(attributes=attrs)


class TestSchemaInvariants:
    @given(schemas())
    def test_names_unique(self, schema):
        assert len(set(schema.names)) == len(schema.names)

    @given(schemas())
    def test_project_preserves_types(self, schema):
        names = list(schema.names)[: max(1, len(schema) // 2)]
        projected = schema.project(names)
        for name in names:
            assert projected.type_of(name) is schema.type_of(name)

    @given(schemas())
    def test_prefix_then_strip_recovers_names(self, schema):
        prefixed = schema.prefixed("x")
        stripped = [name[2:] for name in prefixed.names]
        assert tuple(stripped) == schema.names

    @given(schemas())
    def test_payload_from_schema_validates(self, schema):
        sample_values = {
            AttributeType.BOOL: True,
            AttributeType.INT: 1,
            AttributeType.FLOAT: 1.5,
            AttributeType.STRING: "x",
        }
        payload = {
            attr.name: sample_values[attr.type] for attr in schema.attributes
        }
        schema.validate_payload(payload)


class TestJoinSchemaProperties:
    @given(schemas(), schemas())
    @settings(max_examples=80)
    def test_join_output_has_all_attributes(self, left, right):
        try:
            joined = join_schema(left, right)
        except Exception:
            return  # collision with prefixes is legal to reject
        assert len(joined) == len(left) + len(right)
        # Non-colliding names survive unchanged.
        collisions = set(left.names) & set(right.names)
        for name in left.names:
            if name not in collisions:
                assert name in joined

    @given(schemas())
    def test_self_join_prefixes_everything_shared(self, schema):
        joined = join_schema(schema, schema)
        for name in schema.names:
            assert f"l_{name}" in joined
            assert f"r_{name}" in joined


class TestAggregateSchemaProperties:
    @given(schemas(), st.floats(min_value=0.1, max_value=1e6))
    def test_numeric_attributes_always_aggregable(self, schema, interval):
        numeric = [a.name for a in schema.attributes if a.type.is_numeric]
        if not numeric:
            return
        result = aggregate_schema(schema, numeric, "AVG", interval)
        assert len(result) == len(numeric)
        assert all(result.type_of(f"avg_{n}") is AttributeType.FLOAT
                   for n in numeric)

    @given(schemas(), st.floats(min_value=0.1, max_value=1e6))
    def test_count_always_possible(self, schema, interval):
        names = list(schema.names)
        result = aggregate_schema(schema, names, "COUNT", interval)
        assert all(result.type_of(f"count_{n}") is AttributeType.INT
                   for n in names)

    @given(st.floats(min_value=0.1, max_value=86400.0 * 400))
    def test_output_granularity_covers_interval(self, interval):
        schema = StreamSchema.build({"v": "float"})
        result = aggregate_schema(schema, ["v"], "AVG", interval)
        gran = result.temporal_granularity
        assert gran.seconds >= min(interval, 365 * 86400.0) or gran.name == "year"
