"""Property-based tests: watermark monotonicity.

The latency plane's central claim (DESIGN.md §15): a process's low
watermark never regresses as the simulation advances.  Non-blocking
commits are a running max of stamp times, blocking commits follow the
virtual clock at flush instants, and the propagated watermark is a min
over those monotone inputs — so monotonicity must hold for any mix of
operator kinds, shard counts, batch sizes, and observation cadences.

The property drives the full stack (sensors -> broker -> sharded
aggregation -> merge -> sink) and samples every process's watermark at a
randomized cadence, asserting each new reading is >= the previous one.
A probe-level property covers the raw commit rules against arbitrary
out-of-order stamp streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsn.generate import dataflow_to_dsn
from repro.obs.latency import LatencyPlane
from repro.obs.metrics import MetricsRegistry
from repro.scenario import build_stack, sharded_aggregation_flow


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    shards=st.sampled_from((1, 2, 4)),
    batch=st.sampled_from((1, 32)),
    cadence=st.sampled_from((60.0, 150.0, 300.0)),
)
def test_watermarks_never_regress(seed, shards, batch, cadence):
    stack = build_stack(seed=seed, batching=batch, latency=True)
    flow = sharded_aggregation_flow(stack)
    program = dataflow_to_dsn(
        flow,
        stack.broker_network.registry,
        shards=shards if shards > 1 else None,
        slos=[],
    )
    # No SLO clauses: install the plane exactly the way the executor
    # would, by asking for one health objective.
    from repro.dsn.ast import DsnSlo

    program.slos.append(
        DsnSlo(flow=flow.name, metric="watermark_lag", op="<",
               threshold=1e9)
    )
    stack.executor.deploy(program)
    plane = stack.obs.latency

    last: dict[str, float] = {}
    violations: list[str] = []

    def check() -> None:
        memo: dict = {}
        for key in plane.probes:
            mark = plane.watermark(key, memo)
            if mark is None:
                # A cold process has no watermark yet; once warm it may
                # never go cold again (committed only grows).
                if key in last:
                    violations.append(f"{key}: went cold after {last[key]}")
                continue
            if key in last and mark < last[key]:
                violations.append(
                    f"{key}: regressed {last[key]} -> {mark}"
                )
            last[key] = mark
        high = plane.source_high
        check.highs.append(high)

    check.highs = []
    stack.clock.schedule_periodic(cadence, check, start_delay=cadence * 0.7)
    stack.run_until(2 * 3600.0)
    assert not violations
    # source_high is monotone too (max over published stamps).
    highs = check.highs
    assert all(a <= b for a, b in zip(highs, highs[1:]))
    assert last  # the run actually produced warm watermarks


@settings(max_examples=50, deadline=None)
@given(
    stamps=st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=50,
    ),
    blocking=st.booleans(),
)
def test_probe_commit_is_monotone_for_any_stamp_order(stamps, blocking):
    plane = LatencyPlane(MetricsRegistry())
    probe = plane.register_process("p", blocking=blocking, sink=False)
    now = max(stamps) + 1.0
    committed = []
    for i, stamp in enumerate(stamps):
        probe.note(now + i, stamp)
        if blocking and i % 7 == 6:
            probe.commit_flush(now + i, [])
        committed.append(probe.committed)
    assert all(a <= b for a, b in zip(committed, committed[1:]))
    if not blocking:
        assert probe.committed == max(stamps)
