"""Property-based tests: elastic rebalancing is semantically invisible.

DESIGN.md §13's promise, as a property: live key migration — and hot-key
splitting, for combine-safe operators — changes *where* a key's window
state accumulates, never *what* flows downstream.  For random streams
(uniform and 80%-hot-key skewed), random shard counts, and migrations
forced at random epoch boundaries, an elastic deployment's sink output
must be byte-identical to the same-count static deployment: payloads,
sources, seq numbers, and virtual times.

Splits fold per-replica partial sums in shard order rather than arrival
order, so the split properties draw integer-valued floats: every partial
sum is exact and the fold is bit-equal to straight accumulation.  (The
non-split migration properties take arbitrary floats — a migrated slice
re-accumulates in original arrival order, which is exact always.)

All runs drive a single-node topology at fixed virtual times, the same
discipline as the shard-parity suite; the control loop's *policy* is
disabled (infinite imbalance ratio) so only the forced actions fire.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import AggregationSpec
from repro.dsn.scn import ScnController
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.executor import Executor
from repro.runtime.rebalance import RebalanceConfig
from repro.schema.schema import StreamSchema
from repro.streams.shard import ShardedOperatorAdapter
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

SHARD_COUNTS = (2, 4, 8)
INTERVAL = 7.0
END = 60.0

#: policy neutered: only forced migrations/splits ever fire.
FORCED_ONLY = RebalanceConfig(imbalance_ratio=float("inf"))


def _metadata() -> SensorMetadata:
    return SensorMetadata(
        sensor_id="prop-temp",
        sensor_type="temperature",
        schema=StreamSchema.build(
            {"value": "float", "station": "str"},
            themes=("weather/temperature",),
        ),
        frequency=1.0,
        location=Point(34.69, 135.50),
        node_id="hub",
    )


def _reading(seq: int, value: float, station: str) -> SensorTuple:
    return SensorTuple(
        payload={"value": value, "station": station},
        stamp=SttStamp(time=float(seq) * 0.25, location=Point(34.69, 135.50)),
        source="prop-temp",
        seq=seq,
    )


def _stations(stream, skewed: bool) -> list:
    """Map raw (value, station index) pairs to tuples; when skewed, 80%
    of the traffic lands on one hot station."""
    tuples = []
    for i, (value, station) in enumerate(stream):
        name = "st-hot" if skewed and i % 5 != 0 else f"st-{station}"
        tuples.append(_reading(i, value, name))
    return tuples


#: arbitrary floats for migration parity (re-accumulation is exact).
readings = st.lists(
    st.tuples(
        st.floats(min_value=-50.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(0, 9),
    ),
    min_size=4, max_size=48,
)

#: integer-valued floats for split parity (partial-sum folds are exact).
int_readings = st.lists(
    st.tuples(st.integers(-50, 50).map(float), st.integers(0, 9)),
    min_size=4, max_size=48,
)

#: forced actions: (epoch boundary ordinal, station index, recipient seed).
migrations = st.lists(
    st.tuples(st.integers(1, 6), st.integers(0, 9), st.integers(0, 63)),
    min_size=1, max_size=3, unique_by=lambda m: m[0],
)

functions = st.sampled_from(["AVG", "SUM", "MIN", "MAX", "COUNT"])


def _flow(function: str = "AVG") -> Dataflow:
    flow = Dataflow("rebalance-parity")
    source = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="src"
    )
    agg = flow.add_operator(
        AggregationSpec(interval=INTERVAL, attributes=("value",),
                        function=function, group_by="station"),
        node_id="agg",
    )
    sink = flow.add_sink("collector", node_id="out")
    flow.connect(source, agg)
    flow.connect(agg, sink)
    return flow


def _deploy(shard_count: int, elastic: bool, function: str = "AVG"):
    topology = Topology()
    topology.add_node("hub")
    netsim = NetworkSimulator(topology=topology)
    network = BrokerNetwork(netsim=netsim)
    executor = Executor(netsim, network, scn=ScnController(topology),
                        rebalance_config=FORCED_ONLY)
    network.publish(_metadata())
    deployment = executor.deploy(_flow(function), shards={"agg": shard_count},
                                 elastic=elastic)
    return netsim, network, deployment


def _observables(deployment):
    return [
        (t.seq, t.source, t.stamp.time, dict(t.payload))
        for t in deployment.collected("out")
    ]


def _run_static(tuples, shard_count: int):
    netsim, network, deployment = _deploy(shard_count, elastic=False)
    for tuple_ in tuples:
        network.publish_data("prop-temp", tuple_)
    netsim.clock.run_until(END)
    return deployment, _observables(deployment)


def _force_migration(netsim, deployment, epoch: int, station: str,
                     recipient_seed: int):
    """At mid-epoch ``epoch``, ask for a handoff at the next boundary.

    The donor is resolved *in the callback* (an earlier forced action may
    already have moved the key); self-moves and split keys are skipped,
    exactly as the executor's own guards would.
    """
    rebalancer = deployment.rebalancers["agg"]
    assignment = deployment.shard_groups["agg"].assignment
    key = (station,)
    recipient = recipient_seed % len(deployment.shard_groups["agg"].members)

    def request():
        donor = assignment.owner_of(key)
        if donor is not None and donor != recipient:
            rebalancer.executor.schedule_migration(key, donor, recipient)

    netsim.clock.schedule_at(epoch * INTERVAL - INTERVAL / 2, request)


def _run_elastic(tuples, shard_count: int, forced, skewed: bool):
    netsim, network, deployment = _deploy(shard_count, elastic=True)
    for epoch, station, recipient_seed in forced:
        name = "st-hot" if skewed else f"st-{station}"
        _force_migration(netsim, deployment, epoch, name, recipient_seed)
    for tuple_ in tuples:
        network.publish_data("prop-temp", tuple_)
    netsim.clock.run_until(END)
    return deployment, _observables(deployment)


class TestMigrationParity:
    @given(readings, st.sampled_from(SHARD_COUNTS), st.booleans(), migrations)
    @settings(max_examples=30, deadline=None)
    def test_forced_migrations_preserve_output(self, stream, shard_count,
                                               skewed, forced):
        tuples = _stations(stream, skewed)
        _, baseline = _run_static(tuples, shard_count)
        elastic_dep, rebalanced = _run_elastic(tuples, shard_count,
                                               forced, skewed)
        assert rebalanced == baseline

    @given(readings, st.sampled_from((2, 4)))
    @settings(max_examples=15, deadline=None)
    def test_migrate_away_and_back(self, stream, shard_count):
        """A key that leaves and comes home must not keep re-routing:
        the stale disowned marker is cleared on adoption."""
        tuples = _stations(stream, skewed=True)
        _, baseline = _run_static(tuples, shard_count)
        netsim, network, deployment = _deploy(shard_count, elastic=True)
        assignment = deployment.shard_groups["agg"].assignment
        home = assignment.index_for(("st-hot",))
        away = (home + 1) % shard_count
        _force_migration(netsim, deployment, 1, "st-hot", away)
        _force_migration(netsim, deployment, 3, "st-hot", home)
        for tuple_ in tuples:
            network.publish_data("prop-temp", tuple_)
        netsim.clock.run_until(END)
        assert _observables(deployment) == baseline
        assert assignment.owner_of(("st-hot",)) == home

    @given(readings, st.sampled_from((2, 4)), migrations)
    @settings(max_examples=15, deadline=None)
    def test_checkpoints_roundtrip_after_migration(self, stream, shard_count,
                                                   forced):
        """Post-migration checkpoints (which carry disowned sets and key
        loads) still rebuild identical replicas from scratch."""
        tuples = _stations(stream, skewed=True)
        deployment, _ = _run_elastic(tuples, shard_count, forced, skewed=True)
        group = deployment.shard_groups["agg"]
        for index, member in enumerate(group.members):
            snapshot = member.operator.checkpoint()
            spec = AggregationSpec(interval=INTERVAL, attributes=("value",),
                                   function="AVG", group_by="station")
            fresh = ShardedOperatorAdapter(
                spec.build_operator(), shard_index=index,
                shard_count=shard_count,
            )
            fresh.restore(snapshot)
            assert fresh.checkpoint() == snapshot


class TestSplitParity:
    @given(int_readings, st.sampled_from(SHARD_COUNTS), functions,
           st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_split_hot_key_preserves_output(self, stream, shard_count,
                                            function, epoch):
        """Spraying the hot key across every shard and folding partial
        accumulators at the merge reproduces the static output exactly
        (integer values: the fold's reordered sums stay bit-equal)."""
        tuples = _stations(stream, skewed=True)

        def run(split: bool):
            netsim, network, deployment = _deploy(shard_count, elastic=split,
                                                  function=function)
            if split:
                rebalancer = deployment.rebalancers["agg"]
                netsim.clock.schedule_at(
                    epoch * INTERVAL - INTERVAL / 2,
                    lambda: rebalancer.executor.schedule_split(
                        ("st-hot",), tuple(range(shard_count))
                    ),
                )
            for tuple_ in tuples:
                network.publish_data("prop-temp", tuple_)
            netsim.clock.run_until(END)
            return _observables(deployment)

        assert run(split=True) == run(split=False)

    @given(int_readings, st.sampled_from((2, 4)), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_split_then_migrations_of_other_keys(self, stream, shard_count,
                                                 epoch):
        """A split key and migrating cold keys coexist: the assignment
        resolves splits first, overrides second, hash default last."""
        tuples = _stations(stream, skewed=True)
        _, baseline = _run_static(tuples, shard_count)
        netsim, network, deployment = _deploy(shard_count, elastic=True)
        rebalancer = deployment.rebalancers["agg"]
        netsim.clock.schedule_at(
            epoch * INTERVAL - INTERVAL / 2,
            lambda: rebalancer.executor.schedule_split(
                ("st-hot",), tuple(range(shard_count))
            ),
        )
        for station in range(3):
            _force_migration(netsim, deployment, epoch + 1,
                             f"st-{station}", station + 1)
        for tuple_ in tuples:
            network.publish_data("prop-temp", tuple_)
        netsim.clock.run_until(END)
        assert _observables(deployment) == baseline
