"""Property-based tests: the batched data plane is semantically invisible.

DESIGN.md's §11 promise: micro-batching changes *when* and *how* tuples
travel, never *what* arrives.  For a random operator pipeline and a random
reading stream, publishing through ``publish_batch`` in runs of N must
leave every observable — sink contents, per-source tuple order, operator
checkpoint payloads, dead-letter audit records — identical to publishing
the same readings tuple-at-a-time.

The two runs are driven at identical virtual times on a single-node
topology (all delivery is local, zero latency), because batching a *live*
sensor legitimately shifts publish timestamps by up to ``max_delay`` —
that latency trade-off is exercised by the integration tests, while this
file pins down the pure data-plane equivalence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import (
    CullTimeSpec,
    FilterSpec,
    TransformSpec,
    VirtualPropertySpec,
)
from repro.dsn.scn import ScnController
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.executor import Executor
from repro.schema.schema import StreamSchema
from repro.sticker.feed import StickerFeed
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point
from repro.warehouse.loader import EventWarehouse

BATCH_SIZES = (2, 7, 32)


def _metadata(node_id: str) -> SensorMetadata:
    return SensorMetadata(
        sensor_id="prop-sensor",
        sensor_type="temperature",
        schema=StreamSchema.build(
            {"temperature": "float", "humidity": "float"},
            themes=("weather/temperature",),
        ),
        frequency=1.0,
        location=Point(34.69, 135.50),
        node_id=node_id,
    )


def _reading(seq: int, temperature: float) -> SensorTuple:
    return SensorTuple(
        payload={"temperature": temperature, "humidity": 50.0 + seq % 3},
        stamp=SttStamp(time=float(seq), location=Point(34.69, 135.50),
                       themes=("weather/temperature",)),
        source="prop-sensor",
        seq=seq,
    )


# Each entry maps a drawn parameter to an operator spec; specs only
# reference attributes that every pipeline stage preserves, so any chain
# is individually sound and the whole flow deploys.
def _spec(kind: str, param: int, index: int):
    if kind == "filter":
        return FilterSpec(f"temperature > {param - 16}")
    if kind == "virtual":
        return VirtualPropertySpec(f"v{index}", "temperature * 2")
    if kind == "transform":
        return TransformSpec(assignments={"humidity": "humidity + 1"})
    return CullTimeSpec(rate=param % 4 + 1, start=0.0, end=1e9)


operator_chains = st.lists(
    st.tuples(st.sampled_from(["filter", "virtual", "transform", "cull"]),
              st.integers(0, 30)),
    min_size=0, max_size=4,
)

temperature_streams = st.lists(
    st.floats(min_value=-20.0, max_value=45.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=64,
)


def _run_flow(chain, temperatures, batch_size: int):
    """Deploy the chain on one node and drive it at fixed virtual times.

    Returns every observable the parity property compares.
    """
    topology = Topology()
    topology.add_node("hub")
    netsim = NetworkSimulator(topology=topology)
    network = BrokerNetwork(netsim=netsim)
    executor = Executor(
        netsim, network, scn=ScnController(topology),
        warehouse=EventWarehouse(), sticker=StickerFeed(),
    )
    network.publish(_metadata("hub"))

    flow = Dataflow("parity")
    upstream = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="src"
    )
    for index, (kind, param) in enumerate(chain):
        node = flow.add_operator(_spec(kind, param, index),
                                 node_id=f"op{index}")
        flow.connect(upstream, node)
        upstream = node
    sink = flow.add_sink("collector", node_id="out")
    flow.connect(upstream, sink)
    deployment = executor.deploy(flow)

    readings = [_reading(i, t) for i, t in enumerate(temperatures)]
    if batch_size == 1:
        for reading in readings:
            network.publish_data("prop-sensor", reading)
    else:
        for start in range(0, len(readings), batch_size):
            network.publish_batch(
                "prop-sensor", readings[start:start + batch_size]
            )
    netsim.clock.run_until(100.0)

    return {
        "collected": deployment.collected("out"),
        "checkpoints": {
            name: process.operator.checkpoint()
            for name, process in sorted(deployment.processes.items())
        },
        "tuples_delivered": netsim.stats.tuples_sent,
    }


class TestBatchParity:
    @given(operator_chains, temperature_streams,
           st.sampled_from(BATCH_SIZES))
    @settings(max_examples=60, deadline=None)
    def test_batched_pipeline_is_equivalent(self, chain, temperatures,
                                            batch_size):
        baseline = _run_flow(chain, temperatures, batch_size=1)
        batched = _run_flow(chain, temperatures, batch_size=batch_size)

        assert batched["collected"] == baseline["collected"]
        # Per-source order: the collected list already proves content
        # equality; the seq sequence proves no reordering inside batches.
        assert ([t.seq for t in batched["collected"]]
                == [t.seq for t in baseline["collected"]])
        assert batched["checkpoints"] == baseline["checkpoints"]
        # Payload accounting is tuple-denominated on both paths.
        assert (batched["tuples_delivered"]
                == baseline["tuples_delivered"])


class TestDeadLetterParity:
    @given(temperature_streams, st.sampled_from(BATCH_SIZES))
    @settings(max_examples=25, deadline=None)
    def test_batch_exhaustion_dead_letters_each_tuple(self, temperatures,
                                                      batch_size):
        """Retry exhaustion audits per tuple, batched or not."""
        def run(batch_size: int):
            netsim = NetworkSimulator(topology=Topology.line(2))
            network = BrokerNetwork(netsim=netsim)
            network.publish(_metadata("node-0"))
            subscription = network.subscribe(
                "node-1", SubscriptionFilter(sensor_type="temperature"),
                lambda tuple_: None,
            )
            netsim.topology.node("node-1").fail()
            readings = [_reading(i, t)
                        for i, t in enumerate(temperatures)]
            if batch_size == 1:
                for reading in readings:
                    network.publish_data("prop-sensor", reading)
            else:
                for start in range(0, len(readings), batch_size):
                    network.publish_batch(
                        "prop-sensor", readings[start:start + batch_size]
                    )
            netsim.clock.run()
            return [(letter.tuple.seq, letter.reason)
                    for letter in subscription.dead_letters]

        assert run(batch_size) == run(1)
