"""Compiled-closure ≡ interpreter parity on random ASTs and payloads.

The central correctness property of :mod:`repro.expr.compile`: for every
tree the parser can produce and every payload, ``evaluate`` (the lowered
closure) and ``interpret`` (the tree walker) agree on the *outcome* —
either the same value, or the same :class:`ExpressionError` subclass with
the same message.  This is the contract that lets operators switch to the
compiled path while keeping the interpreter as the oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExpressionError
from repro.expr.eval import CompiledExpression, compile_expression
from tests.property.test_prop_expr import identifiers, trees

#: Payload values spanning every type the evaluator distinguishes.
payload_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(alphabet="abcdefg xyz0123", max_size=8),
    st.none(),
)

payloads = st.dictionaries(identifiers, payload_values, max_size=6)


def outcome(fn, *args, **kwargs):
    """(value, None) on success, (type, message) on expression errors."""
    try:
        return fn(*args, **kwargs), None
    except ExpressionError as exc:
        return type(exc), str(exc)


class TestCompileParity:
    @given(trees(), payloads)
    @settings(max_examples=300)
    def test_random_tree_random_payload(self, tree, values):
        expr = CompiledExpression(source=tree.unparse(), root=tree).prepare()
        assert outcome(expr.evaluate, values) == outcome(expr.interpret, values)

    @given(trees(), payloads, payloads)
    @settings(max_examples=300)
    def test_qualified_payloads(self, tree, left, right):
        """Join-style evaluation: qualified refs bind per-side payloads."""
        expr = CompiledExpression(source=tree.unparse(), root=tree).prepare()
        kwargs = {"left": left, "right": right}
        assert (outcome(expr.evaluate, left, **kwargs)
                == outcome(expr.interpret, left, **kwargs))

    @given(trees(), payloads)
    @settings(max_examples=200)
    def test_parity_survives_source_round_trip(self, tree, values):
        """Compiling the unparsed source gives the same outcomes too —
        folding/specialisation in the lowering never changes meaning."""
        expr = CompiledExpression(source=tree.unparse(), root=tree).prepare()
        reparsed = compile_expression(tree.unparse()).prepare()
        assert (outcome(reparsed.evaluate, values)
                == outcome(expr.interpret, values))

    @given(payloads)
    @settings(max_examples=200)
    def test_representative_operator_conditions(self, values):
        """The expression shapes operators actually install."""
        for source in (
            "temperature > 24 and humidity < 0.8",
            "(temperature * 1.8 + 32) / 2 > 30 or humidity * 100 < 45",
            "contains(station, 'umeda') or temperature > 30",
            "not (temperature == null) and temperature % 2 == 0",
            "temperature / humidity > 10",
        ):
            expr = compile_expression(source).prepare()
            assert (outcome(expr.evaluate, values)
                    == outcome(expr.interpret, values))
