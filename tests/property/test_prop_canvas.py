"""Property-based tests: schema inference is total on valid canvases.

DESIGN.md's promise: arbitrary well-formed operator chains validate, and
schema propagation produces a schema at every node.  The strategy builds
random chains whose steps are constructed to be *individually* sound (each
condition/spec references attributes present at that point), so the whole
canvas must validate — if it does not, inference or validation is broken.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import (
    AggregationSpec,
    CullTimeSpec,
    FilterSpec,
    TransformSpec,
    ValidateSpec,
    VirtualPropertySpec,
)
from repro.dataflow.validate import validate_dataflow
from repro.pubsub.subscription import SubscriptionFilter
from repro.schema.schema import StreamSchema


def base_schema() -> StreamSchema:
    return StreamSchema.build(
        [("temperature", "float", "celsius"), ("humidity", "float"),
         ("station", "string")],
        themes=("weather/temperature",),
    )


@st.composite
def operator_chain(draw):
    """A list of spec-factories; each factory maps current schema -> spec."""
    steps = []
    count = draw(st.integers(min_value=1, max_value=8))
    fresh = iter(f"v{i}" for i in range(100))
    for _ in range(count):
        kind = draw(st.sampled_from(
            ["filter", "virtual", "transform", "cull", "validate", "agg"]
        ))
        if kind == "filter":
            threshold = draw(st.integers(-20, 40))
            steps.append(lambda schema, t=threshold: FilterSpec(
                f"{_numeric_attr(schema)} > {t}"
            ))
        elif kind == "virtual":
            name = next(fresh)
            steps.append(lambda schema, n=name: VirtualPropertySpec(
                n, f"{_numeric_attr(schema)} * 2"
            ))
        elif kind == "transform":
            steps.append(lambda schema: TransformSpec(
                assignments={_numeric_attr(schema): f"{_numeric_attr(schema)} + 1"}
            ))
        elif kind == "cull":
            rate = draw(st.integers(1, 10))
            steps.append(lambda schema, r=rate: CullTimeSpec(
                rate=r, start=0.0, end=1e6
            ))
        elif kind == "validate":
            steps.append(lambda schema: ValidateSpec(
                rules=(f"is_finite({_numeric_attr(schema)})",)
            ))
        else:
            interval = draw(st.sampled_from([60.0, 600.0, 3600.0]))
            steps.append(lambda schema, i=interval: AggregationSpec(
                interval=i, attributes=(_numeric_attr(schema),),
                function="AVG",
            ))
    return steps


def _numeric_attr(schema: StreamSchema) -> str:
    for attr in schema.attributes:
        if attr.type.is_numeric:
            return attr.name
    raise AssertionError("chain construction kept a numeric attribute")


class TestCanvasTotality:
    @given(operator_chain())
    @settings(max_examples=100, deadline=None)
    def test_sound_chains_always_validate(self, steps):
        flow = Dataflow("generated")
        schema = base_schema()
        previous = flow.add_source(SubscriptionFilter(), schema=schema,
                                   node_id="src")
        for index, step in enumerate(steps):
            spec = step(schema)
            node = flow.add_operator(spec, node_id=f"op-{index}")
            flow.connect(previous, node)
            schema = spec.infer_schema([schema])
            previous = node
        sink = flow.add_sink(node_id="out")
        flow.connect(previous, sink)

        report = validate_dataflow(flow)
        assert report.is_valid, [str(issue) for issue in report.errors]
        # Inference was total: a schema exists at every canvas node.
        assert all(report.schemas[node_id] is not None
                   for node_id in flow.node_ids)
        # And the sink's schema equals the chain's composition.
        assert report.schemas["out"].names == schema.names

    @given(operator_chain())
    @settings(max_examples=50, deadline=None)
    def test_sample_run_total_on_valid_chains(self, steps):
        """Every valid canvas also executes on samples without raising."""
        from repro.dataflow.sample import run_sample
        from repro.streams.tuple import SensorTuple
        from repro.stt.event import SttStamp
        from repro.stt.spatial import Point

        flow = Dataflow("generated")
        schema = base_schema()
        previous = flow.add_source(SubscriptionFilter(), schema=schema,
                                   node_id="src")
        for index, step in enumerate(steps):
            spec = step(schema)
            node = flow.add_operator(spec, node_id=f"op-{index}")
            flow.connect(previous, node)
            schema = spec.infer_schema([schema])
            previous = node
        sink = flow.add_sink(node_id="out")
        flow.connect(previous, sink)

        samples = {"src": [
            SensorTuple(
                payload={"temperature": 20.0 + i, "humidity": 0.5,
                         "station": "s"},
                stamp=SttStamp(time=float(i), location=Point(34.69, 135.50)),
                seq=i,
            )
            for i in range(6)
        ]}
        result = run_sample(flow, samples)
        # Outputs at the sink conform to the inferred schema.
        for tuple_ in result.at("out"):
            assert set(tuple_.payload) <= set(schema.names)
