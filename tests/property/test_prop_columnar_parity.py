"""Property-based tests: columnar execution is semantically invisible.

DESIGN.md's §16 promise: running a fused chain as whole-column kernels
over a struct-of-arrays batch changes *how* member code loops, never
*what* the flow computes or reports.  For a random columnar-eligible
chain (length 2–5, including transform and virtual-property members
that quarantine rows at runtime), a random reading stream (with temperatures
that make the division assignment blow up), batch sizes {1, 16, 32}
and either trace-sampling rate, a ``columnar=True`` deployment must
leave every observable — sink contents *with payload item order*,
per-source tuple order, dead-letter audit records, per-member
``process_tuples_total`` counters and per-member ``OperatorStats`` —
identical to the same fused deployment with ``columnar=False``
(the ``--no-columnar`` escape hatch).

A second property pins the representation itself: transposing any
uniform-schema batch and materializing it back yields the *same tuple
objects*, including rows whose values would make every expression in
the operator family fail (quarantine candidates ride along untouched).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import (
    CullTimeSpec,
    FilterSpec,
    TransformSpec,
    VirtualPropertySpec,
)
from repro.dsn.scn import ScnController
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.obs import Observability
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.executor import Executor
from repro.schema.schema import StreamSchema
from repro.sticker.feed import StickerFeed
from repro.streams.columnar import ColumnarBatch
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point
from repro.warehouse.loader import EventWarehouse

BATCH_SIZES = (1, 16, 32)
SAMPLING_RATES = (0.0, 0.5)


def _metadata(node_id: str) -> SensorMetadata:
    return SensorMetadata(
        sensor_id="prop-sensor",
        sensor_type="temperature",
        schema=StreamSchema.build(
            {"temperature": "float", "humidity": "float"},
            themes=("weather/temperature",),
        ),
        frequency=1.0,
        location=Point(34.69, 135.50),
        node_id=node_id,
    )


def _reading(seq: int, temperature: float) -> SensorTuple:
    return SensorTuple(
        payload={"temperature": temperature, "humidity": 50.0 + seq % 3},
        stamp=SttStamp(time=float(seq), location=Point(34.69, 135.50),
                       themes=("weather/temperature",)),
        source="prop-sensor",
        seq=seq,
    )


def _spec(kind: str, param: int, index: int):
    if kind == "filter":
        return FilterSpec(f"temperature > {param - 16}")
    if kind == "virtual":
        return VirtualPropertySpec(f"v{index}", "temperature * 2")
    if kind == "transform":
        return TransformSpec(assignments={"humidity": "humidity + 1"})
    if kind == "errtransform":
        # Blows up (division by zero) exactly at temperature == 20, which
        # the stream strategy produces on purpose: per-row quarantine must
        # drop the same rows on both execution paths.
        return TransformSpec(
            assignments={"ratio": "temperature / (temperature - 20)"}
        )
    if kind == "errvirtual":
        # Same poison value through the *virtual-property* kernel, so
        # quarantine parity is pinned for both vectorized families.
        return VirtualPropertySpec(
            f"e{index}", "humidity / (temperature - 20)"
        )
    return CullTimeSpec(rate=param % 4 + 1, start=0.0, end=1e9)


# Every drawn chain is columnar-eligible end to end, so the deployments
# differ by exactly the execution tier under test; the error-injecting
# kinds make sure selection vectors shrink mid-pipeline.
columnar_chains = st.lists(
    st.tuples(
        st.sampled_from(
            ["filter", "virtual", "transform", "cull",
             "errtransform", "errvirtual"]
        ),
        st.integers(0, 30),
    ),
    min_size=2, max_size=5,
)

temperature_streams = st.lists(
    st.one_of(
        st.floats(min_value=-20.0, max_value=45.0,
                  allow_nan=False, allow_infinity=False),
        st.just(20.0),  # the errtransform poison value
    ),
    min_size=1, max_size=64,
)


def _operator_stats(deployment, name: str) -> dict:
    """A member's stats, whether it runs alone or inside a fused chain."""
    key = deployment.fused.get(name)
    if key is None:
        return deployment.processes[name].operator.stats.snapshot()
    for member in deployment.processes[key].operator.members:
        if member.name == name:
            return member.stats.snapshot()
    raise AssertionError(f"{name} not found in fused process {key}")


def _run_flow(chain, temperatures, batch_size, sampling, columnar,
              fail_at=None):
    """Deploy the fused chain on one node and drive it at fixed times.

    Both variants fuse; only the execution tier differs.  Returns every
    observable the parity property compares.
    """
    topology = Topology()
    topology.add_node("hub")
    netsim = NetworkSimulator(topology=topology)
    network = BrokerNetwork(netsim=netsim)
    obs = Observability(sampling=sampling)
    executor = Executor(
        netsim, network, scn=ScnController(topology),
        warehouse=EventWarehouse(), sticker=StickerFeed(), obs=obs,
    )
    network.publish(_metadata("hub"))

    dead_letters: list = []
    network.on_dead_letter = lambda subscription, tuple_, reason: (
        dead_letters.append((subscription.node_id, tuple_.seq, reason))
    )

    flow = Dataflow("parity")
    upstream = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="src"
    )
    names = []
    for index, (kind, param) in enumerate(chain):
        name = f"op{index}"
        flow.add_operator(_spec(kind, param, index), node_id=name)
        flow.connect(upstream, name)
        upstream = name
        names.append(name)
    flow.add_sink("collector", node_id="out")
    flow.connect(upstream, "out")
    deployment = executor.deploy(flow, fuse=True, columnar=columnar)

    # Sanity: the chain fused, and the execution-tier switch actually
    # landed on the fused operator (otherwise the comparison silently
    # degenerates into columnar vs columnar).
    assert deployment.fused_chains
    for key in set(deployment.fused.values()):
        assert deployment.processes[key].operator.columnar is columnar

    readings = [_reading(i, t) for i, t in enumerate(temperatures)]
    for start in range(0, len(readings), batch_size):
        if fail_at is not None and start >= fail_at:
            topology.node("hub").fail()
            fail_at = None
        if batch_size == 1:
            network.publish_data("prop-sensor", readings[start])
        else:
            network.publish_batch(
                "prop-sensor", readings[start:start + batch_size]
            )
    netsim.clock.run_until(200.0)

    counters = {}
    for name in names:
        counter = obs.metrics.get(
            "process_tuples_total", process=f"parity:{name}"
        )
        counters[name] = None if counter is None else counter.value

    return {
        # Payload *item order* is part of the contract: materialized
        # dicts must be insertion-order identical to row-built ones.
        "collected": [(t.seq, t.source, list(t.payload.items()))
                      for t in deployment.collected("out")],
        "member_stats": {name: _operator_stats(deployment, name)
                         for name in names},
        "counters": counters,
        "dead_letters": dead_letters,
    }


class TestColumnarParity:
    @given(columnar_chains, temperature_streams,
           st.sampled_from(BATCH_SIZES), st.sampled_from(SAMPLING_RATES))
    @settings(max_examples=30, deadline=None)
    def test_columnar_pipeline_is_equivalent(self, chain, temperatures,
                                             batch_size, sampling):
        baseline = _run_flow(chain, temperatures, batch_size, sampling,
                             columnar=False)
        columnar = _run_flow(chain, temperatures, batch_size, sampling,
                             columnar=True)

        assert columnar["collected"] == baseline["collected"]
        assert columnar["member_stats"] == baseline["member_stats"]
        assert columnar["counters"] == baseline["counters"]
        assert columnar["dead_letters"] == baseline["dead_letters"]


class TestColumnarDeadLetterParity:
    @given(columnar_chains, temperature_streams,
           st.sampled_from((16, 32)))
    @settings(max_examples=15, deadline=None)
    def test_dead_letter_records_match(self, chain, temperatures,
                                       batch_size):
        """Failing the hosting node mid-stream audits identically."""
        fail_at = max(1, len(temperatures) // 2)
        baseline = _run_flow(chain, temperatures, batch_size, 0.0,
                             columnar=False, fail_at=fail_at)
        columnar = _run_flow(chain, temperatures, batch_size, 0.0,
                             columnar=True, fail_at=fail_at)
        assert columnar["dead_letters"] == baseline["dead_letters"]
        assert columnar["collected"] == baseline["collected"]


# -- representation roundtrip ------------------------------------------------

payload_values = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False),
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
)


@st.composite
def uniform_batches(draw):
    """Uniform-schema tuple runs, with values that would make any
    numeric expression fail on some rows (strings, Nones, booleans) —
    the error-quarantine candidates must transpose and come back."""
    fields = draw(st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=6,
        ),
        min_size=1, max_size=4, unique=True,
    ))
    count = draw(st.integers(min_value=1, max_value=16))
    rows = draw(st.lists(
        st.tuples(*[payload_values for _ in fields]),
        min_size=count, max_size=count,
    ))
    return [
        SensorTuple(
            payload=dict(zip(fields, values)),
            stamp=SttStamp(time=float(i), location=Point(0.0, 0.0)),
            source="roundtrip",
            seq=i,
        )
        for i, values in enumerate(rows)
    ]


class TestRoundtrip:
    @given(uniform_batches())
    @settings(max_examples=60, deadline=None)
    def test_transpose_and_materialize_is_identity(self, tuples):
        col = ColumnarBatch.from_tuples(tuples)
        assert col is not None
        out = col.to_tuples()
        assert out == tuples
        # Clean batches hand back the very same objects (memo-preserving).
        assert all(a is b for a, b in zip(out, tuples))

    @given(uniform_batches(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_selection_materialization_matches_row_subsetting(self, tuples,
                                                              data):
        col = ColumnarBatch.from_tuples(tuples)
        selection = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(tuples) - 1),
            unique=True,
        ))
        selection.sort()
        fork = col.fork()
        fork.set_column("marker", list(range(len(tuples))))
        out = fork.to_tuples(selection)
        assert [t.seq for t in out] == [tuples[i].seq for i in selection]
        assert [list(t.payload.items()) for t in out] == [
            list(tuples[i].payload.items()) + [("marker", i)]
            for i in selection
        ]
