"""Property-based tests on system-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.stamping import backfill_stamp
from repro.pubsub.subscription import SubscriptionFilter
from repro.warehouse.loader import EventWarehouse
from tests.unit.pubsub.test_registry import make_metadata


class TestNetsimConservation:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2),
                      st.floats(min_value=0.0, max_value=1e4)),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_every_message_accounted(self, sends):
        """sent == delivered + dropped once the clock drains."""
        sim = NetworkSimulator(topology=Topology.line(3))
        for src, dst, size in sends:
            sim.send(f"node-{src}", f"node-{dst}", None, size, lambda _p: None)
        sim.clock.run()
        stats = sim.stats
        assert stats.messages_sent == len(sends)
        assert stats.messages_delivered + stats.messages_dropped == len(sends)
        assert stats.messages_dropped == 0  # healthy network drops nothing

    @given(st.lists(st.integers(0, 2), min_size=1, max_size=20),
           st.integers(0, 2))
    @settings(max_examples=40)
    def test_dead_node_messages_all_dropped_or_delivered(self, sources, dead):
        sim = NetworkSimulator(topology=Topology.line(3))
        sim.topology.node(f"node-{dead}").fail()
        delivered = []
        for src in sources:
            sim.send(f"node-{src}", f"node-{dead}", None, 10.0,
                     delivered.append)
        sim.clock.run()
        stats = sim.stats
        assert stats.messages_delivered + stats.messages_dropped == len(sources)
        assert delivered == []  # nothing reaches a dead node


class TestPubSubInvariants:
    sensor_types = st.lists(
        st.sampled_from(["temperature", "rain", "twitter"]),
        min_size=1, max_size=12,
    )

    @given(sensor_types)
    @settings(max_examples=40)
    def test_routes_match_filters_exactly(self, types):
        net = BrokerNetwork()
        seen = []
        net.subscribe("n1", SubscriptionFilter(sensor_type="rain"),
                      seen.append)
        metadatas = []
        for index, sensor_type in enumerate(types):
            metadata = make_metadata(f"s{index}", sensor_type)
            net.publish(metadata)
            metadatas.append(metadata)
        for metadata in metadatas:
            routed = net.subscriptions_for(metadata.sensor_id)
            if metadata.sensor_type == "rain":
                assert len(routed) == 1
            else:
                assert routed == []

    @given(sensor_types)
    @settings(max_examples=40)
    def test_delivery_count_equals_matching_publications(self, types):
        net = BrokerNetwork()
        seen = []
        net.subscribe("n1", SubscriptionFilter(sensor_type="rain"),
                      seen.append)
        expected = 0
        for index, sensor_type in enumerate(types):
            metadata = make_metadata(f"s{index}", sensor_type)
            net.publish(metadata)
            reading = backfill_stamp({"v": 1.0}, metadata, now=float(index))
            net.publish_data(metadata.sensor_id, reading)
            if sensor_type == "rain":
                expected += 1
        assert len(seen) == expected


class TestWarehouseInvariants:
    temps = st.lists(
        st.floats(min_value=-30.0, max_value=45.0, allow_nan=False),
        min_size=1, max_size=50,
    )

    @given(temps)
    @settings(max_examples=50)
    def test_rollup_counts_partition_facts(self, values):
        from repro.streams.tuple import SensorTuple
        from repro.stt.event import SttStamp
        from repro.stt.spatial import Point

        warehouse = EventWarehouse()
        for index, value in enumerate(values):
            warehouse.load(SensorTuple(
                payload={"temperature": value},
                stamp=SttStamp(time=index * 1800.0,
                               location=Point(34.69, 135.50),
                               themes=("weather/temperature",)),
                source="s",
                seq=index,
            ))
        rows = warehouse.query().rollup_time("hour", "temperature", "count")
        assert sum(int(row.value) for row in rows) == len(values)

    @given(temps)
    @settings(max_examples=50)
    def test_rollup_avg_matches_direct_mean_per_granule(self, values):
        import numpy as np

        from repro.streams.tuple import SensorTuple
        from repro.stt.event import SttStamp
        from repro.stt.spatial import Point
        from repro.stt.temporal import align_instant

        warehouse = EventWarehouse()
        by_hour: dict[float, list[float]] = {}
        for index, value in enumerate(values):
            time = index * 1800.0
            warehouse.load(SensorTuple(
                payload={"temperature": value},
                stamp=SttStamp(time=time, location=Point(34.69, 135.50)),
                source="s",
                seq=index,
            ))
            by_hour.setdefault(align_instant(time, "hour"), []).append(value)
        rows = warehouse.query().rollup_time("hour", "temperature", "avg")
        assert len(rows) == len(by_hour)
        for row in rows:
            assert np.isclose(row.value, np.mean(by_hour[row.group[0]]))
