"""Property-based tests: the alert history is a deployment invariant.

ISSUE 8's acceptance bar: for the same seed, the sequence of alert
fire/resolve transitions — and the entire ``repro health --json``
payload — must be byte-identical across shard counts {1, 4} and sensor
batch sizes {1, 32}.  Sharding moves *where* aggregation state lives and
batching moves *when* tuples travel, but neither may move what the
operator observes at epoch boundaries; since the alert engine ticks at
fixed virtual instants offset from those boundaries and reads only
logical (shard-grouped) state, its history must not change either.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsn.ast import DsnSlo
from repro.dsn.generate import dataflow_to_dsn
from repro.scenario import build_stack, sharded_aggregation_flow

CONFIGS = ((1, 1), (1, 32), (4, 1), (4, 32))  # (shards, batch)


def run_health(seed: int, shards: int, batch: int, threshold: float) -> str:
    stack = build_stack(seed=seed, batching=batch, latency=True)
    flow = sharded_aggregation_flow(stack)
    program = dataflow_to_dsn(
        flow,
        stack.broker_network.registry,
        shards=shards if shards > 1 else None,
        slos=[
            DsnSlo(flow=flow.name, metric="watermark_lag", op="<",
                   threshold=threshold),
        ],
    )
    stack.executor.deploy(program)
    stack.run_until(2 * 3600.0)
    return json.dumps(stack.executor.alerts.health_json(), sort_keys=True)


@settings(max_examples=3, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    threshold=st.sampled_from((200.0, 450.0)),
)
def test_health_payload_identical_across_shards_and_batching(seed, threshold):
    payloads = {
        (shards, batch): run_health(seed, shards, batch, threshold)
        for shards, batch in CONFIGS
    }
    reference = payloads[(1, 1)]
    assert all(payload == reference for payload in payloads.values())
    # The run must be non-trivial: a tight threshold both fires and
    # resolves (the aggregation interval saw-tooths the lag through it).
    history = json.loads(reference)["history"]
    if threshold == 200.0:
        events = {entry[1] for entry in history}
        assert events == {"fire", "resolve"}


def test_two_identical_runs_are_byte_identical():
    first = run_health(seed=7, shards=4, batch=32, threshold=200.0)
    second = run_health(seed=7, shards=4, batch=32, threshold=200.0)
    assert first == second
