"""Property-based tests for the Table 1 operator algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.aggregate import AggregationOperator
from repro.streams.cull import CullTimeOperator
from repro.streams.filter import FilterOperator
from repro.streams.join import JoinOperator
from repro.streams.transform import TransformOperator
from repro.streams.tuple import SensorTuple
from repro.streams.virtual import VirtualPropertyOperator
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

temps = st.floats(min_value=-40.0, max_value=50.0, allow_nan=False)
batches = st.lists(temps, min_size=0, max_size=40)


def tuples_from(values, start_time=0.0):
    return [
        SensorTuple(
            payload={"temperature": value, "station": f"s{i % 3}"},
            stamp=SttStamp(time=start_time + i, location=Point(34.69, 135.50)),
            source="gen",
            seq=i,
        )
        for i, value in enumerate(values)
    ]


class TestFilterProperties:
    @given(batches)
    def test_partition(self, values):
        """Filter(c) + Filter(not c) exactly partitions the stream."""
        keep = FilterOperator("temperature > 20")
        drop = FilterOperator("not (temperature > 20)")
        stream = tuples_from(values)
        kept = [t for tup in stream for t in keep.on_tuple(tup)]
        dropped = [t for tup in stream for t in drop.on_tuple(tup)]
        assert len(kept) + len(dropped) == len(stream)
        assert all(t["temperature"] > 20 for t in kept)
        assert all(t["temperature"] <= 20 for t in dropped)

    @given(batches)
    def test_idempotent(self, values):
        """Filtering an already-filtered stream changes nothing."""
        first = FilterOperator("temperature > 20")
        second = FilterOperator("temperature > 20")
        once = [t for tup in tuples_from(values) for t in first.on_tuple(tup)]
        twice = [t for tup in once for t in second.on_tuple(tup)]
        assert twice == once

    @given(batches)
    def test_stronger_condition_subset(self, values):
        weak = FilterOperator("temperature > 10")
        strong = FilterOperator("temperature > 30")
        stream = tuples_from(values)
        weak_out = {t.seq for tup in stream for t in weak.on_tuple(tup)}
        strong_out = {t.seq for tup in stream for t in strong.on_tuple(tup)}
        assert strong_out <= weak_out


class TestAggregationProperties:
    @given(batches.filter(lambda v: len(v) > 0))
    def test_matches_numpy(self, values):
        array = np.asarray(values, dtype=float)
        expectations = {
            "AVG": array.mean(),
            "SUM": array.sum(),
            "MIN": array.min(),
            "MAX": array.max(),
        }
        for fn, expected in expectations.items():
            op = AggregationOperator(interval=1000.0,
                                     attributes=["temperature"], function=fn)
            for tup in tuples_from(values):
                op.on_tuple(tup)
            out = op.on_timer(1000.0)
            assert np.isclose(out[0][f"{fn.lower()}_temperature"], expected)

    @given(batches)
    def test_count_equals_length(self, values):
        op = AggregationOperator(interval=1000.0, attributes=["temperature"],
                                 function="COUNT")
        for tup in tuples_from(values):
            op.on_tuple(tup)
        out = op.on_timer(1000.0)
        if not values:
            assert out == []
        else:
            assert out[0]["count_temperature"] == len(values)

    @given(batches.filter(lambda v: len(v) > 0),
           st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_window_permutation_invariant(self, values, rng):
        """A window flush is a function of the window's *set* of tuples:
        arrival order never changes the aggregate."""

        def flush(stream, function):
            op = AggregationOperator(interval=1000.0,
                                     attributes=["temperature"],
                                     function=function)
            for tup in stream:
                op.on_tuple(tup)
            return op.on_timer(1000.0)[0][f"{function.lower()}_temperature"]

        ordered = tuples_from(values)
        shuffled = list(ordered)
        rng.shuffle(shuffled)
        for function in ("COUNT", "MIN", "MAX"):
            assert flush(ordered, function) == flush(shuffled, function)
        for function in ("SUM", "AVG"):  # float addition: order-tolerant
            assert np.isclose(flush(ordered, function),
                              flush(shuffled, function))

    @given(batches.filter(lambda v: len(v) > 0),
           st.randoms(use_true_random=False))
    @settings(max_examples=30)
    def test_grouped_window_permutation_invariant(self, values, rng):
        def flush(stream):
            op = AggregationOperator(interval=1000.0,
                                     attributes=["temperature"],
                                     function="COUNT", group_by="station")
            for tup in stream:
                op.on_tuple(tup)
            return sorted(
                (t["station"], t["count_temperature"])
                for t in op.on_timer(1000.0)
            )

        ordered = tuples_from(values)
        shuffled = list(ordered)
        rng.shuffle(shuffled)
        assert flush(ordered) == flush(shuffled)

    @given(batches.filter(lambda v: len(v) >= 2))
    def test_min_le_avg_le_max(self, values):
        results = {}
        for fn in ("MIN", "AVG", "MAX"):
            op = AggregationOperator(interval=1000.0,
                                     attributes=["temperature"], function=fn)
            for tup in tuples_from(values):
                op.on_tuple(tup)
            results[fn] = op.on_timer(1000.0)[0][f"{fn.lower()}_temperature"]
        assert results["MIN"] <= results["AVG"] + 1e-9
        assert results["AVG"] <= results["MAX"] + 1e-9


class TestCullProperties:
    @given(batches, st.integers(min_value=1, max_value=10))
    def test_keeps_exactly_one_in_r_inside(self, values, rate):
        op = CullTimeOperator(rate=rate, start=0.0, end=1e9)
        kept = sum(len(op.on_tuple(tup)) for tup in tuples_from(values))
        assert kept == len(values) // rate

    @given(batches, st.integers(min_value=1, max_value=10))
    def test_outside_region_untouched(self, values, rate):
        op = CullTimeOperator(rate=rate, start=1e8, end=2e8)
        kept = sum(len(op.on_tuple(tup)) for tup in tuples_from(values))
        assert kept == len(values)


class TestTransformProperties:
    @given(batches)
    def test_unit_conversion_round_trip(self, values):
        to_f = TransformOperator(
            {"temperature": "convert(temperature, 'celsius', 'fahrenheit')"}
        )
        to_c = TransformOperator(
            {"temperature": "convert(temperature, 'fahrenheit', 'celsius')"}
        )
        for tup in tuples_from(values):
            there = to_f.on_tuple(tup)[0]
            back = to_c.on_tuple(there)[0]
            assert np.isclose(back["temperature"], tup["temperature"])

    @given(batches)
    def test_preserves_cardinality(self, values):
        op = TransformOperator({"temperature": "temperature + 1"})
        outs = [op.on_tuple(tup) for tup in tuples_from(values)]
        assert all(len(out) == 1 for out in outs)


class TestVirtualPropertyProperties:
    @given(batches)
    def test_only_adds_never_mutates(self, values):
        op = VirtualPropertyOperator("flag", "temperature > 0")
        for tup in tuples_from(values):
            out = op.on_tuple(tup)[0]
            assert set(out.payload) == set(tup.payload) | {"flag"}
            for key in tup.payload:
                assert out[key] == tup[key]


class TestJoinProperties:
    @given(batches, batches)
    @settings(max_examples=30)
    def test_join_size_bounded_by_product(self, left, right):
        op = JoinOperator(interval=1000.0, predicate="left.seqmod == right.seqmod")
        for tup in tuples_from(left):
            op.on_tuple(tup.with_updates(seqmod=tup.seq % 2), port=0)
        for tup in tuples_from(right):
            op.on_tuple(tup.with_updates(seqmod=tup.seq % 2), port=1)
        out = op.on_timer(1000.0)
        assert len(out) <= len(left) * len(right)

    @given(batches, batches)
    @settings(max_examples=30)
    def test_true_predicate_is_cross_product(self, left, right):
        op = JoinOperator(interval=1000.0, predicate="true")
        for tup in tuples_from(left):
            op.on_tuple(tup, port=0)
        for tup in tuples_from(right):
            op.on_tuple(tup, port=1)
        assert len(op.on_timer(1000.0)) == len(left) * len(right)

    @given(batches, batches, st.randoms(use_true_random=False))
    @settings(max_examples=30)
    def test_join_commutes_with_interleaving(self, left, right, rng):
        """The flush output is independent of arrival interleaving."""

        def run(events):
            op = JoinOperator(interval=1000.0,
                              predicate="left.station == right.station")
            for port, tup in events:
                op.on_tuple(tup, port=port)
            return sorted(
                tuple(sorted(t.values().items())) for t in op.on_timer(1000.0)
            )

        ordered = [(0, tup) for tup in tuples_from(left)] + [
            (1, tup) for tup in tuples_from(right)
        ]
        shuffled = list(ordered)
        rng.shuffle(shuffled)
        assert run(ordered) == run(shuffled)
