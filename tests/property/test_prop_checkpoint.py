"""Property-based tests for blocking-operator checkpoint/restore.

The recovery contract, stated as properties over arbitrary tuple batches:

- **round trip** — restoring a snapshot into any (dirtied) operator makes
  its next flush identical to an operator that only ever saw the
  snapshot-time tuples;
- **loss bound** — tuples absorbed after the snapshot never appear in the
  restored operator's output (at-most-once, nothing resurrects twice).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.aggregate import AggregationOperator
from repro.streams.join import JoinOperator
from repro.streams.trigger import TriggerOnOperator
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

temps = st.floats(min_value=-40.0, max_value=50.0, allow_nan=False)
batches = st.lists(temps, min_size=0, max_size=30)


def tuples_from(values, start_seq=0):
    return [
        SensorTuple(
            payload={"temperature": value, "station": f"s{i % 3}"},
            stamp=SttStamp(time=float(i), location=Point(34.69, 135.50)),
            source="gen",
            seq=i,
        )
        for i, value in enumerate(values, start=start_seq)
    ]


def make_aggregate():
    return AggregationOperator(interval=1000.0, attributes=["temperature"],
                               function="SUM")


class TestAggregateCheckpoint:
    @given(batches, batches)
    @settings(max_examples=60)
    def test_restore_round_trips(self, before, after):
        op = make_aggregate()
        for tup in tuples_from(before):
            op.on_tuple(tup)
        state = op.checkpoint()
        for tup in tuples_from(after, start_seq=len(before)):
            op.on_tuple(tup)  # post-snapshot damage
        op.restore(state)

        reference = make_aggregate()
        for tup in tuples_from(before):
            reference.on_tuple(tup)

        restored_out = op.on_timer(1000.0)
        reference_out = reference.on_timer(1000.0)
        assert len(restored_out) == len(reference_out)
        if restored_out:
            assert np.isclose(restored_out[0]["sum_temperature"],
                              reference_out[0]["sum_temperature"])

    @given(batches, batches.filter(lambda v: len(v) > 0))
    @settings(max_examples=60)
    def test_post_snapshot_tuples_are_lost(self, before, after):
        op = make_aggregate()
        for tup in tuples_from(before):
            op.on_tuple(tup)
        state = op.checkpoint()
        for tup in tuples_from(after, start_seq=len(before)):
            op.on_tuple(tup)
        op.restore(state)
        assert len(op.cache) == len(before)

    @given(batches)
    @settings(max_examples=60)
    def test_checkpoint_is_non_destructive(self, values):
        op = make_aggregate()
        for tup in tuples_from(values):
            op.on_tuple(tup)
        op.checkpoint()
        assert len(op.cache) == len(values)  # snapshotting reads, never drains

    @given(batches)
    @settings(max_examples=60)
    def test_restore_is_idempotent(self, values):
        op = make_aggregate()
        for tup in tuples_from(values):
            op.on_tuple(tup)
        state = op.checkpoint()
        op.restore(state)
        op.restore(state)
        assert len(op.cache) == len(values)


class TestJoinCheckpoint:
    @given(batches, batches, batches)
    @settings(max_examples=30)
    def test_restore_round_trips_both_sides(self, left, right, noise):
        def feed(op, left_vals, right_vals):
            for tup in tuples_from(left_vals):
                op.on_tuple(tup, port=0)
            for tup in tuples_from(right_vals):
                op.on_tuple(tup, port=1)

        op = JoinOperator(interval=1000.0, predicate="true")
        feed(op, left, right)
        state = op.checkpoint()
        feed(op, noise, noise)
        op.restore(state)

        reference = JoinOperator(interval=1000.0, predicate="true")
        feed(reference, left, right)
        assert len(op.on_timer(1000.0)) == len(reference.on_timer(1000.0))


class TestTriggerCheckpoint:
    @given(batches.filter(lambda v: len(v) > 0), batches)
    @settings(max_examples=30)
    def test_restored_trigger_decides_like_the_original(self, before, after):
        def make():
            return TriggerOnOperator(interval=300.0, window=1e6,
                                     condition="avg_temperature > 10",
                                     targets=["t-1"])

        op = make()
        for tup in tuples_from(before):
            op.on_tuple(tup)
        state = op.checkpoint()
        for tup in tuples_from(after, start_seq=len(before)):
            op.on_tuple(tup)

        restored = make()
        restored.restore(state)
        reference = make()
        for tup in tuples_from(before):
            reference.on_tuple(tup)

        commands_restored, commands_reference = [], []
        restored.control = commands_restored.append
        reference.control = commands_reference.append
        restored.on_timer(1000.0)
        reference.on_timer(1000.0)
        assert [c.activate for c in commands_restored] == [
            c.activate for c in commands_reference
        ]
