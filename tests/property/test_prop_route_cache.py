"""Cached ≡ uncached routing across random mutation sequences.

The route cache (:mod:`repro.network.topology`) is keyed by a generation
counter that every topology mutation bumps — node liveness flips, link
liveness/latency/bandwidth changes, node/link additions.  The property:
after *any* interleaving of mutations and route queries, ``route()`` (the
cached path) and ``route_uncached()`` (fresh shortest-path computation)
agree for every node pair — same path, or the same unreachable verdict.

Queries are issued *between* mutations on purpose: that populates the
cache so later mutations exercise invalidation, not just a cold cache.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnreachableError
from repro.network.topology import Topology

NODES = [f"n{i}" for i in range(6)]

#: Ring + two chords: multiple routes between most pairs, so failures
#: reroute rather than only disconnect.
LINKS = [(NODES[i], NODES[(i + 1) % 6]) for i in range(6)] + [
    ("n0", "n3"),
    ("n1", "n4"),
]

mutations = st.lists(
    st.one_of(
        st.tuples(st.just("kill_node"), st.sampled_from(NODES)),
        st.tuples(st.just("revive_node"), st.sampled_from(NODES)),
        st.tuples(st.just("kill_link"), st.sampled_from(LINKS)),
        st.tuples(st.just("revive_link"), st.sampled_from(LINKS)),
        st.tuples(
            st.just("set_latency"),
            st.tuples(
                st.sampled_from(LINKS),
                st.floats(min_value=0.0001, max_value=0.1),
            ),
        ),
        st.tuples(st.just("query"), st.sampled_from(NODES)),
    ),
    max_size=12,
)


def build() -> Topology:
    topo = Topology()
    for name in NODES:
        topo.add_node(name)
    for i, (a, b) in enumerate(LINKS):
        topo.add_link(a, b, latency=0.001 * (i + 1))
    return topo


def outcome(fn, source, target):
    try:
        return tuple(fn(source, target)), None
    except UnreachableError as exc:
        return None, str(exc)


def assert_all_pairs_agree(topo: Topology) -> None:
    for source in NODES:
        for target in NODES:
            cached = outcome(topo.route, source, target)
            fresh = outcome(topo.route_uncached, source, target)
            assert cached == fresh, (
                f"{source}->{target}: cached {cached} != fresh {fresh}"
            )


class TestRouteCacheParity:
    @given(mutations)
    @settings(max_examples=250, deadline=None)
    def test_cached_matches_uncached_after_mutations(self, steps):
        topo = build()
        for action, arg in steps:
            if action == "kill_node":
                topo.node(arg).fail()
            elif action == "revive_node":
                topo.node(arg).recover()
            elif action == "kill_link":
                topo.link(*arg).fail()
            elif action == "revive_link":
                topo.link(*arg).recover()
            elif action == "set_latency":
                (a, b), latency = arg
                topo.link(a, b).latency = latency
            else:  # query: warm the cache mid-sequence
                outcome(topo.route, arg, NODES[0])
        assert_all_pairs_agree(topo)

    @given(mutations)
    @settings(max_examples=100, deadline=None)
    def test_route_latency_matches_fresh_path(self, steps):
        topo = build()
        for action, arg in steps:
            if action == "kill_node":
                topo.node(arg).fail()
            elif action == "revive_node":
                topo.node(arg).recover()
            elif action == "kill_link":
                topo.link(*arg).fail()
            elif action == "revive_link":
                topo.link(*arg).recover()
            elif action == "set_latency":
                (a, b), latency = arg
                topo.link(a, b).latency = latency
            else:
                outcome(topo.route, arg, NODES[0])
        for target in NODES[1:]:
            try:
                fresh_path = topo.route_uncached("n0", target)
            except UnreachableError:
                continue
            assert topo.route_latency("n0", target) == (
                topo.path_latency(fresh_path)
            )
