"""Property-based tests: DSN parse∘render identity on arbitrary programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsn.ast import (
    DsnChannel,
    DsnControl,
    DsnProgram,
    DsnService,
    ServiceRole,
)
from repro.dsn.parse import parse_dsn
from repro.network.qos import QosPolicy

names = st.from_regex(r"[a-z][a-z0-9-]{0,10}", fullmatch=True)

json_values = st.recursive(
    st.one_of(
        st.integers(min_value=-10**6, max_value=10**6),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.booleans(),
        st.none(),
        st.text(alphabet="abc XYZ0123;{}()'", max_size=12),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.from_regex(r"[a-z][a-z_]{0,6}", fullmatch=True),
                        children, max_size=3),
    ),
    max_leaves=6,
)

params = st.dictionaries(
    st.from_regex(r"[a-z][a-z_]{0,8}", fullmatch=True), json_values, max_size=4
)

qos_policies = st.one_of(
    st.none(),
    st.builds(
        QosPolicy,
        qos_class=st.sampled_from(["best-effort", "reliable", "real-time"]),
        segment_bytes=st.integers(min_value=1, max_value=10**6),
        priority=st.integers(min_value=-5, max_value=5),
        max_latency=st.one_of(
            st.just(float("inf")),
            st.floats(min_value=0.001, max_value=100.0),
        ),
    ),
)

services = st.builds(
    DsnService,
    role=st.sampled_from(list(ServiceRole)),
    name=names,
    kind=st.one_of(st.just(""), names),
    params=params,
    qos=qos_policies,
)


@st.composite
def programs(draw):
    service_list = draw(st.lists(services, min_size=1, max_size=6,
                                 unique_by=lambda s: s.name))
    service_names = [service.name for service in service_list]
    channels = draw(st.lists(
        st.builds(
            DsnChannel,
            source=st.sampled_from(service_names),
            target=st.sampled_from(service_names),
            port=st.integers(min_value=0, max_value=3),
        ),
        max_size=6,
    ))
    controls = draw(st.lists(
        st.builds(
            DsnControl,
            trigger=st.sampled_from(service_names),
            source=st.sampled_from(service_names),
        ),
        max_size=3,
    ))
    return DsnProgram(
        name=draw(names),
        services=service_list,
        channels=channels,
        controls=controls,
    )


class TestDsnRoundTrip:
    @given(programs())
    @settings(max_examples=150)
    def test_parse_render_identity(self, program):
        rendered = program.render()
        parsed = parse_dsn(rendered)
        assert parsed.render() == rendered

    @given(programs())
    @settings(max_examples=60)
    def test_parsed_program_structurally_equal(self, program):
        parsed = parse_dsn(program.render())
        assert parsed.name == program.name
        assert len(parsed.services) == len(program.services)
        for original in program.services:
            roundtripped = parsed.service(original.name)
            assert roundtripped.role is original.role
            assert roundtripped.kind == original.kind
            assert roundtripped.params == original.params
        assert parsed.channels == program.channels
        assert parsed.controls == program.controls
