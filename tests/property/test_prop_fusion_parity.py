"""Property-based tests: operator fusion is semantically invisible.

DESIGN.md's §14 promise: fusing a chain of non-blocking operators into
one process changes *where* member code runs, never *what* the flow
computes or reports.  For a random fusible chain (length 2–5), a random
reading stream, either publish mode (tuple-at-a-time or batches of 16)
and either trace-sampling rate, a fused deployment must leave every
observable — sink contents, per-source tuple order, dead-letter audit
records, per-member ``process_tuples_total`` counters and per-member
``OperatorStats`` — identical to deploying the same flow with
``fuse=False``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import (
    CullTimeSpec,
    FilterSpec,
    TransformSpec,
    VirtualPropertySpec,
)
from repro.dsn.scn import ScnController
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.obs import Observability
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.executor import Executor
from repro.schema.schema import StreamSchema
from repro.sticker.feed import StickerFeed
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point
from repro.warehouse.loader import EventWarehouse

BATCH_SIZES = (1, 16)
SAMPLING_RATES = (0.0, 0.5)


def _metadata(node_id: str) -> SensorMetadata:
    return SensorMetadata(
        sensor_id="prop-sensor",
        sensor_type="temperature",
        schema=StreamSchema.build(
            {"temperature": "float", "humidity": "float"},
            themes=("weather/temperature",),
        ),
        frequency=1.0,
        location=Point(34.69, 135.50),
        node_id=node_id,
    )


def _reading(seq: int, temperature: float) -> SensorTuple:
    return SensorTuple(
        payload={"temperature": temperature, "humidity": 50.0 + seq % 3},
        stamp=SttStamp(time=float(seq), location=Point(34.69, 135.50),
                       themes=("weather/temperature",)),
        source="prop-sensor",
        seq=seq,
    )


def _spec(kind: str, param: int, index: int):
    if kind == "filter":
        return FilterSpec(f"temperature > {param - 16}")
    if kind == "virtual":
        return VirtualPropertySpec(f"v{index}", "temperature * 2")
    if kind == "transform":
        return TransformSpec(assignments={"humidity": "humidity + 1"})
    return CullTimeSpec(rate=param % 4 + 1, start=0.0, end=1e9)


# Every drawn chain is fusible end to end (all four kinds are in
# FUSIBLE_KINDS and the flow wires them single-in/single-out), so the
# planner fuses the whole run and the fused/unfused deployments differ
# by exactly the machinery under test.
fusible_chains = st.lists(
    st.tuples(st.sampled_from(["filter", "virtual", "transform", "cull"]),
              st.integers(0, 30)),
    min_size=2, max_size=5,
)

temperature_streams = st.lists(
    st.floats(min_value=-20.0, max_value=45.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=64,
)


def _operator_stats(deployment, name: str) -> dict:
    """A member's stats, whether it runs alone or inside a fused chain."""
    key = deployment.fused.get(name)
    if key is None:
        return deployment.processes[name].operator.stats.snapshot()
    for member in deployment.processes[key].operator.members:
        if member.name == name:
            return member.stats.snapshot()
    raise AssertionError(f"{name} not found in fused process {key}")


def _run_flow(chain, temperatures, batch_size, sampling, fuse,
              fail_at=None):
    """Deploy the chain on one node and drive it at fixed virtual times.

    ``fail_at`` optionally fails the hub after that many readings, so the
    remaining publications exercise the dead-letter audit path.

    Returns every observable the parity property compares.
    """
    topology = Topology()
    topology.add_node("hub")
    netsim = NetworkSimulator(topology=topology)
    network = BrokerNetwork(netsim=netsim)
    obs = Observability(sampling=sampling)
    executor = Executor(
        netsim, network, scn=ScnController(topology),
        warehouse=EventWarehouse(), sticker=StickerFeed(), obs=obs,
    )
    network.publish(_metadata("hub"))

    dead_letters: list = []
    network.on_dead_letter = lambda subscription, tuple_, reason: (
        dead_letters.append((subscription.node_id, tuple_.seq, reason))
    )

    flow = Dataflow("parity")
    upstream = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="src"
    )
    names = []
    for index, (kind, param) in enumerate(chain):
        name = f"op{index}"
        flow.add_operator(_spec(kind, param, index), node_id=name)
        flow.connect(upstream, name)
        upstream = name
        names.append(name)
    flow.add_sink("collector", node_id="out")
    flow.connect(upstream, "out")
    deployment = executor.deploy(flow, fuse=fuse)

    if fuse:
        # Sanity: the whole chain really did fuse (otherwise the parity
        # comparison silently degenerates into unfused vs unfused).
        assert len(chain) < 2 or deployment.fused_chains
    else:
        assert not deployment.fused_chains

    readings = [_reading(i, t) for i, t in enumerate(temperatures)]
    for start in range(0, len(readings), batch_size):
        if fail_at is not None and start >= fail_at:
            topology.node("hub").fail()
            fail_at = None
        if batch_size == 1:
            network.publish_data("prop-sensor", readings[start])
        else:
            network.publish_batch(
                "prop-sensor", readings[start:start + batch_size]
            )
    netsim.clock.run_until(200.0)

    counters = {}
    for name in names:
        counter = obs.metrics.get(
            "process_tuples_total", process=f"parity:{name}"
        )
        counters[name] = None if counter is None else counter.value

    return {
        "collected": [(t.seq, t.values()) for t in
                      deployment.collected("out")],
        "member_stats": {name: _operator_stats(deployment, name)
                         for name in names},
        "counters": counters,
        "dead_letters": dead_letters,
    }


class TestFusionParity:
    @given(fusible_chains, temperature_streams,
           st.sampled_from(BATCH_SIZES), st.sampled_from(SAMPLING_RATES))
    @settings(max_examples=40, deadline=None)
    def test_fused_pipeline_is_equivalent(self, chain, temperatures,
                                          batch_size, sampling):
        baseline = _run_flow(chain, temperatures, batch_size, sampling,
                             fuse=False)
        fused = _run_flow(chain, temperatures, batch_size, sampling,
                          fuse=True)

        assert fused["collected"] == baseline["collected"]
        assert fused["member_stats"] == baseline["member_stats"]
        assert fused["counters"] == baseline["counters"]
        # No member counter silently vanished into an "a+b" label.
        assert all(value is not None
                   for value in fused["counters"].values()) \
            or not baseline["collected"]
        assert fused["dead_letters"] == baseline["dead_letters"]


class TestFusionDeadLetterParity:
    @given(fusible_chains, temperature_streams,
           st.sampled_from(BATCH_SIZES))
    @settings(max_examples=20, deadline=None)
    def test_dead_letter_records_match(self, chain, temperatures,
                                       batch_size):
        """Failing the hosting node mid-stream audits identically."""
        fail_at = max(1, len(temperatures) // 2)
        baseline = _run_flow(chain, temperatures, batch_size, 0.0,
                             fuse=False, fail_at=fail_at)
        fused = _run_flow(chain, temperatures, batch_size, 0.0,
                          fuse=True, fail_at=fail_at)
        assert fused["dead_letters"] == baseline["dead_letters"]
        assert fused["collected"] == baseline["collected"]
