"""Property-based tests for the expression language.

The central property: ``parse(unparse(tree)) == tree`` for arbitrary trees,
i.e. the pretty-printer and parser are inverse on the AST.  Plus evaluator
consistency properties on randomly generated arithmetic/boolean trees.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ExpressionError
from repro.expr.ast import AttributeRef, BinaryOp, Call, Literal, UnaryOp
from repro.expr.eval import CompiledExpression, compile_expression
from repro.expr.parser import parse

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in ("and", "or", "not", "true", "false", "null", "in")
)

literals = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6).map(Literal),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
              allow_infinity=False).map(Literal),
    st.booleans().map(Literal),
    st.text(alphabet="abcdefg xyz0123", max_size=8).map(Literal),
    st.just(Literal(None)),
)

refs = st.one_of(
    identifiers.map(AttributeRef),
    st.tuples(identifiers, identifiers).map(
        lambda pair: AttributeRef(pair[0], qualifier=pair[1])
    ),
)

_ARITH = ["+", "-", "*", "/", "%"]
_CMP = ["==", "!=", "<", "<=", ">", ">="]
_LOGIC = ["and", "or"]


def _fold_unary(pair):
    """Mirror the parser's constant folding of negative numeric literals."""
    op, operand = pair
    if (op == "-" and isinstance(operand, Literal)
            and isinstance(operand.value, (int, float))
            and not isinstance(operand.value, bool)):
        return Literal(-operand.value)
    return UnaryOp(op, operand)


def trees(depth=3):
    if depth == 0:
        return st.one_of(literals, refs)
    sub = trees(depth - 1)
    return st.one_of(
        literals,
        refs,
        st.tuples(st.sampled_from(_ARITH + _CMP + _LOGIC + ["in"]), sub, sub).map(
            lambda t: BinaryOp(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(["-", "not"]), sub).map(_fold_unary),
        st.tuples(identifiers, st.lists(sub, max_size=3)).map(
            lambda t: Call(t[0], tuple(t[1]))
        ),
    )


class TestRoundTrip:
    @given(trees())
    @settings(max_examples=300)
    def test_parse_unparse_identity(self, tree):
        assert parse(tree.unparse()) == tree

    @given(trees())
    def test_unparse_is_stable(self, tree):
        text = tree.unparse()
        assert parse(text).unparse() == text

    @given(trees(), st.integers(min_value=-100, max_value=100))
    @settings(max_examples=300)
    def test_eval_survives_round_trip(self, tree, binding):
        """eval(parse(render(ast))) == eval(ast) for any evaluable tree.

        Syntactic identity (above) is necessary but not sufficient: this
        pins that rendering never changes *meaning* — precedence,
        associativity, literal formatting — for trees that evaluate at all.
        """
        values: dict = {}
        qualified: dict[str, dict] = {}
        for qualifier, name in tree.attributes():
            if qualifier:
                qualified.setdefault(qualifier, {})[name] = binding
            else:
                values[name] = binding

        def evaluate(root):
            return CompiledExpression(
                source=root.unparse(), root=root
            ).evaluate(values, **qualified)

        try:
            expected = evaluate(tree)
        except ExpressionError:
            assume(False)  # inevaluable tree (bad types, unknown function)
        assert evaluate(parse(tree.unparse())) == expected


class TestEvaluatorProperties:
    ints = st.integers(min_value=-1000, max_value=1000)

    @given(ints, ints)
    def test_arithmetic_matches_python(self, a, b):
        expr = compile_expression("a + b * 2 - a")
        assert expr.evaluate({"a": a, "b": b}) == a + b * 2 - a

    @given(ints, ints)
    def test_comparison_trichotomy(self, a, b):
        values = {"a": a, "b": b}
        lt = compile_expression("a < b").evaluate(values)
        eq = compile_expression("a == b").evaluate(values)
        gt = compile_expression("a > b").evaluate(values)
        assert [lt, eq, gt].count(True) == 1

    @given(st.booleans(), st.booleans())
    def test_de_morgan(self, p, q):
        values = {"p": p, "q": q}
        left = compile_expression("not (p and q)").evaluate(values)
        right = compile_expression("(not p) or (not q)").evaluate(values)
        assert left == right

    @given(ints)
    def test_filter_condition_deterministic(self, a):
        expr = compile_expression("a % 3 == 0 or a < 0")
        assert expr.evaluate({"a": a}) == expr.evaluate({"a": a})

    @given(st.text(alphabet="abc", max_size=6), st.text(alphabet="abc", max_size=6))
    def test_in_matches_python(self, needle, hay):
        expr = compile_expression("n in h")
        assert expr.evaluate({"n": needle, "h": hay}) == (needle in hay)
