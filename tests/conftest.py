"""Shared fixtures for the StreamLoader test suite."""

from __future__ import annotations

import pytest

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.schema.schema import StreamSchema
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """Whether golden-file tests should rewrite their snapshots."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def weather_schema() -> StreamSchema:
    """The temperature/humidity schema used throughout the unit tests."""
    return StreamSchema.build(
        [
            ("temperature", "float", "celsius"),
            ("humidity", "float", "fraction"),
            ("station", "string"),
        ],
        temporal="second",
        spatial="point",
        themes=("weather/temperature",),
    )


@pytest.fixture
def make_tuple():
    """Factory for weather tuples: make_tuple(i, temperature=..., ...)."""

    def factory(
        seq: int = 0,
        temperature: float = 20.0,
        humidity: float = 0.6,
        station: str = "station-1",
        time: "float | None" = None,
        lat: float = 34.69,
        lon: float = 135.50,
        themes: tuple = ("weather/temperature",),
        source: str = "sensor-1",
    ) -> SensorTuple:
        return SensorTuple(
            payload={
                "temperature": temperature,
                "humidity": humidity,
                "station": station,
            },
            stamp=SttStamp(
                time=float(seq) if time is None else time,
                location=Point(lat, lon),
                themes=themes,
            ),
            source=source,
            seq=seq,
        )

    return factory


@pytest.fixture
def star_netsim() -> NetworkSimulator:
    """A 3-leaf star network simulator."""
    return NetworkSimulator(topology=Topology.star(leaf_count=3))


@pytest.fixture
def broker_net(star_netsim) -> BrokerNetwork:
    """A broker network over the star simulator."""
    return BrokerNetwork(netsim=star_netsim)


@pytest.fixture
def local_broker_net() -> BrokerNetwork:
    """An in-process broker network (immediate delivery, no simulator)."""
    return BrokerNetwork()
