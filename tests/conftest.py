"""Shared fixtures for the StreamLoader test suite."""

from __future__ import annotations

import signal

import pytest

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.runtime.backends import live_backends
from repro.schema.schema import StreamSchema
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files instead of comparing against them",
    )
    parser.addoption(
        "--hard-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="kill any single test running longer than SECONDS via SIGALRM "
             "(0: disabled).  CI runs the backend suites under this so a "
             "deadlocked event loop fails loudly instead of hanging the job.",
    )


@pytest.fixture(autouse=True)
def _hard_timeout(request):
    """Per-test wall-clock budget, enforced with an interval timer.

    Hand-rolled because the environment has no pytest-timeout plugin;
    SIGALRM only fires on the main thread, which is where pytest runs
    tests — including the asyncio backend, whose event loop blocks the
    main thread in ``run_until_complete``.
    """
    limit = request.config.getoption("--hard-timeout")
    if not limit or limit <= 0:
        yield
        return

    def _expire(signum, frame):
        pytest.fail(
            f"test exceeded the --hard-timeout budget of {limit}s", pytrace=False
        )

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _async_backend_flake_guard():
    """Fail any test that leaks a live AsyncBackend (tasks, event loop).

    Leaked loops are the classic source of cross-test flakes: a pending
    task from test A fires during test B.  The guard closes whatever
    leaked (so the *next* test stays clean) and then fails the leaking
    test by name.
    """
    yield
    leaked = live_backends()
    if leaked:
        for backend in leaked:
            backend.close()
        pytest.fail(
            f"test leaked {len(leaked)} unclosed AsyncBackend(s); "
            f"close the stack/backend (stack.close() or `with stack:`)"
        )


@pytest.fixture
def update_goldens(request) -> bool:
    """Whether golden-file tests should rewrite their snapshots."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def weather_schema() -> StreamSchema:
    """The temperature/humidity schema used throughout the unit tests."""
    return StreamSchema.build(
        [
            ("temperature", "float", "celsius"),
            ("humidity", "float", "fraction"),
            ("station", "string"),
        ],
        temporal="second",
        spatial="point",
        themes=("weather/temperature",),
    )


@pytest.fixture
def make_tuple():
    """Factory for weather tuples: make_tuple(i, temperature=..., ...)."""

    def factory(
        seq: int = 0,
        temperature: float = 20.0,
        humidity: float = 0.6,
        station: str = "station-1",
        time: "float | None" = None,
        lat: float = 34.69,
        lon: float = 135.50,
        themes: tuple = ("weather/temperature",),
        source: str = "sensor-1",
    ) -> SensorTuple:
        return SensorTuple(
            payload={
                "temperature": temperature,
                "humidity": humidity,
                "station": station,
            },
            stamp=SttStamp(
                time=float(seq) if time is None else time,
                location=Point(lat, lon),
                themes=themes,
            ),
            source=source,
            seq=seq,
        )

    return factory


@pytest.fixture
def star_netsim() -> NetworkSimulator:
    """A 3-leaf star network simulator."""
    return NetworkSimulator(topology=Topology.star(leaf_count=3))


@pytest.fixture
def broker_net(star_netsim) -> BrokerNetwork:
    """A broker network over the star simulator."""
    return BrokerNetwork(netsim=star_netsim)


@pytest.fixture
def local_broker_net() -> BrokerNetwork:
    """An in-process broker network (immediate delivery, no simulator)."""
    return BrokerNetwork()
