"""Unit tests for attribute types and coercion."""

import pytest

from repro.errors import TypeMismatchError
from repro.schema.types import (
    AttributeType,
    coerce_value,
    common_type,
    infer_type,
    value_fits,
    widens_to,
)
from repro.stt.spatial import Point


class TestParse:
    @pytest.mark.parametrize("alias,member", [
        ("boolean", AttributeType.BOOL),
        ("integer", AttributeType.INT),
        ("double", AttributeType.FLOAT),
        ("real", AttributeType.FLOAT),
        ("str", AttributeType.STRING),
        ("datetime", AttributeType.TIMESTAMP),
        ("point", AttributeType.GEO),
    ])
    def test_aliases(self, alias, member):
        assert AttributeType.parse(alias) is member

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.parse("blob")

    def test_idempotent(self):
        assert AttributeType.parse(AttributeType.INT) is AttributeType.INT


class TestWidening:
    def test_chain(self):
        assert widens_to(AttributeType.BOOL, AttributeType.INT)
        assert widens_to(AttributeType.INT, AttributeType.FLOAT)
        assert widens_to(AttributeType.BOOL, AttributeType.FLOAT)

    def test_not_backwards(self):
        assert not widens_to(AttributeType.FLOAT, AttributeType.INT)
        assert not widens_to(AttributeType.INT, AttributeType.BOOL)

    def test_string_isolated(self):
        assert not widens_to(AttributeType.INT, AttributeType.STRING)
        assert not widens_to(AttributeType.STRING, AttributeType.FLOAT)

    def test_reflexive(self):
        for member in AttributeType:
            assert widens_to(member, member)


class TestCommonType:
    def test_int_float(self):
        assert common_type(AttributeType.INT, AttributeType.FLOAT) is AttributeType.FLOAT

    def test_same(self):
        assert common_type(AttributeType.STRING, AttributeType.STRING) is AttributeType.STRING

    def test_incompatible_raises(self):
        with pytest.raises(TypeMismatchError):
            common_type(AttributeType.STRING, AttributeType.INT)


class TestValueFits:
    def test_bool_not_int(self):
        # Python bools are ints, but the type system keeps them apart.
        assert value_fits(True, AttributeType.BOOL)
        assert not value_fits(True, AttributeType.INT)
        assert not value_fits(True, AttributeType.FLOAT)

    def test_int_fits_float(self):
        assert value_fits(3, AttributeType.FLOAT)

    def test_float_not_int(self):
        assert not value_fits(3.5, AttributeType.INT)

    def test_none_never_fits(self):
        for member in AttributeType:
            assert not value_fits(None, member)

    def test_geo(self):
        assert value_fits(Point(0, 0), AttributeType.GEO)
        assert not value_fits("not a point", AttributeType.GEO)

    def test_timestamp_numeric(self):
        assert value_fits(1234.5, AttributeType.TIMESTAMP)
        assert not value_fits("2016-03-15", AttributeType.TIMESTAMP)


class TestCoerce:
    def test_int_to_float_converts(self):
        result = coerce_value(3, AttributeType.FLOAT)
        assert result == 3.0 and isinstance(result, float)

    def test_bool_widens_explicitly(self):
        assert coerce_value(True, AttributeType.INT) == 1
        assert coerce_value(False, AttributeType.FLOAT) == 0.0

    def test_bad_coercion_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("text", AttributeType.FLOAT)


class TestInferType:
    @pytest.mark.parametrize("value,member", [
        (True, AttributeType.BOOL),
        (3, AttributeType.INT),
        (3.5, AttributeType.FLOAT),
        ("x", AttributeType.STRING),
        (Point(0, 0), AttributeType.GEO),
    ])
    def test_inference(self, value, member):
        assert infer_type(value) is member

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_type(object())
