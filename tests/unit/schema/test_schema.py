"""Unit tests for stream schemas."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.schema.schema import Attribute, StreamSchema
from repro.schema.types import AttributeType


class TestAttribute:
    def test_valid(self):
        attr = Attribute("temperature", "float", unit="celsius")
        assert attr.type is AttributeType.FLOAT

    @pytest.mark.parametrize("bad", ["", "1x", "a-b", "a b", "a.b"])
    def test_invalid_names(self, bad):
        with pytest.raises(SchemaError):
            Attribute(bad, "float")

    def test_unit_on_non_numeric_raises(self):
        with pytest.raises(SchemaError, match="numeric"):
            Attribute("name", "string", unit="meter")

    def test_renamed(self):
        attr = Attribute("a", "int").renamed("b")
        assert attr.name == "b" and attr.type is AttributeType.INT


class TestBuild:
    def test_from_dict(self):
        schema = StreamSchema.build({"a": "int", "b": "string"})
        assert schema.names == ("a", "b")

    def test_from_tuples_with_units(self):
        schema = StreamSchema.build([("t", "float", "celsius"), ("s", "string")])
        assert schema.attribute("t").unit == "celsius"

    def test_duplicate_names_raise(self):
        with pytest.raises(SchemaError, match="duplicate"):
            StreamSchema.build([("a", "int"), ("a", "float")])

    def test_metadata(self):
        schema = StreamSchema.build(
            {"a": "int"}, temporal="hour", spatial="city", themes=("weather",)
        )
        assert schema.temporal_granularity.name == "hour"
        assert schema.spatial_granularity.name == "city"
        assert schema.themes[0].path == "weather"


class TestLookups:
    def test_contains_and_type_of(self, weather_schema):
        assert "temperature" in weather_schema
        assert "missing" not in weather_schema
        assert weather_schema.type_of("humidity") is AttributeType.FLOAT

    def test_attribute_missing_raises(self, weather_schema):
        with pytest.raises(SchemaError, match="no attribute"):
            weather_schema.attribute("missing")

    def test_len(self, weather_schema):
        assert len(weather_schema) == 3


class TestPayloadValidation:
    def test_valid_payload(self, weather_schema):
        weather_schema.validate_payload(
            {"temperature": 25.0, "humidity": 0.5, "station": "x"}
        )

    def test_int_accepted_for_float(self, weather_schema):
        weather_schema.validate_payload(
            {"temperature": 25, "humidity": 0.5, "station": "x"}
        )

    def test_missing_attribute_raises(self, weather_schema):
        with pytest.raises(TypeMismatchError, match="missing"):
            weather_schema.validate_payload({"temperature": 25.0, "humidity": 0.5})

    def test_wrong_type_raises(self, weather_schema):
        with pytest.raises(TypeMismatchError, match="does not fit"):
            weather_schema.validate_payload(
                {"temperature": "hot", "humidity": 0.5, "station": "x"}
            )

    def test_extra_attribute_raises(self, weather_schema):
        with pytest.raises(TypeMismatchError, match="not in the schema"):
            weather_schema.validate_payload(
                {"temperature": 25.0, "humidity": 0.5, "station": "x", "extra": 1}
            )

    def test_nullable_attribute(self):
        schema = StreamSchema((Attribute("a", "int", nullable=True),))
        schema.validate_payload({"a": None})
        schema.validate_payload({})

    def test_null_in_non_nullable_raises(self, weather_schema):
        with pytest.raises(TypeMismatchError, match="null"):
            weather_schema.validate_payload(
                {"temperature": None, "humidity": 0.5, "station": "x"}
            )

    def test_accepts_payload_boolean_form(self, weather_schema):
        assert weather_schema.accepts_payload(
            {"temperature": 1.0, "humidity": 0.5, "station": "x"}
        )
        assert not weather_schema.accepts_payload({})


class TestDerivation:
    def test_with_attribute(self, weather_schema):
        extended = weather_schema.with_attribute(Attribute("extra", "int"))
        assert "extra" in extended
        assert "extra" not in weather_schema  # original untouched

    def test_with_duplicate_raises(self, weather_schema):
        with pytest.raises(SchemaError):
            weather_schema.with_attribute(Attribute("temperature", "int"))

    def test_without_attribute(self, weather_schema):
        reduced = weather_schema.without_attribute("station")
        assert reduced.names == ("temperature", "humidity")

    def test_project_keeps_order_given(self, weather_schema):
        projected = weather_schema.project(["station", "temperature"])
        assert projected.names == ("station", "temperature")

    def test_renamed(self, weather_schema):
        renamed = weather_schema.renamed({"temperature": "temp"})
        assert "temp" in renamed and "temperature" not in renamed

    def test_prefixed(self, weather_schema):
        prefixed = weather_schema.prefixed("l")
        assert prefixed.names == ("l_temperature", "l_humidity", "l_station")

    def test_coarsened(self, weather_schema):
        coarse = weather_schema.coarsened(temporal="hour", spatial="city")
        assert coarse.temporal_granularity.name == "hour"
        assert weather_schema.temporal_granularity.name == "second"

    def test_compatible_with(self, weather_schema):
        assert weather_schema.compatible_with(weather_schema)
        other = weather_schema.renamed({"station": "site"})
        assert not weather_schema.compatible_with(other)

    def test_describe_mentions_units_and_themes(self, weather_schema):
        text = weather_schema.describe()
        assert "celsius" in text and "weather/temperature" in text
