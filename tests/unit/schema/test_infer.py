"""Unit tests for schema-inference primitives."""

import pytest

from repro.errors import SchemaError
from repro.schema.infer import (
    aggregate_schema,
    join_schema,
    project_schema,
    rename_schema,
    with_virtual_property,
)
from repro.schema.schema import StreamSchema
from repro.schema.types import AttributeType


class TestProjectRename:
    def test_project(self, weather_schema):
        result = project_schema(weather_schema, ["temperature"])
        assert result.names == ("temperature",)

    def test_rename_collision_raises(self, weather_schema):
        with pytest.raises(SchemaError, match="collides"):
            rename_schema(weather_schema, {"temperature": "humidity"})

    def test_rename_unknown_source_raises(self, weather_schema):
        with pytest.raises(SchemaError):
            rename_schema(weather_schema, {"missing": "x"})

    def test_swap_via_two_renames_is_legal(self, weather_schema):
        result = rename_schema(
            weather_schema, {"temperature": "humidity2", "humidity": "temperature2"}
        )
        assert "humidity2" in result and "temperature2" in result


class TestVirtualProperty:
    def test_adds_typed_attribute(self, weather_schema):
        result = with_virtual_property(weather_schema, "apparent", "float")
        assert result.type_of("apparent") is AttributeType.FLOAT
        assert len(result) == len(weather_schema) + 1

    def test_collision_raises(self, weather_schema):
        with pytest.raises(SchemaError, match="collides"):
            with_virtual_property(weather_schema, "temperature", "float")


class TestAggregateSchema:
    def test_avg_output(self, weather_schema):
        result = aggregate_schema(weather_schema, ["temperature"], "AVG", 3600.0)
        assert result.names == ("avg_temperature",)
        assert result.type_of("avg_temperature") is AttributeType.FLOAT
        assert result.attribute("avg_temperature").unit == "celsius"

    def test_count_works_on_non_numeric(self, weather_schema):
        result = aggregate_schema(weather_schema, ["station"], "COUNT", 60.0)
        assert result.names == ("count_station",)
        assert result.type_of("count_station") is AttributeType.INT

    def test_sum_non_numeric_raises(self, weather_schema):
        with pytest.raises(SchemaError, match="non-numeric"):
            aggregate_schema(weather_schema, ["station"], "SUM", 60.0)

    def test_unknown_function_raises(self, weather_schema):
        with pytest.raises(SchemaError, match="unknown aggregation"):
            aggregate_schema(weather_schema, ["temperature"], "MEDIAN", 60.0)

    def test_zero_interval_raises(self, weather_schema):
        with pytest.raises(SchemaError, match="positive"):
            aggregate_schema(weather_schema, ["temperature"], "AVG", 0.0)

    def test_no_attributes_raises(self, weather_schema):
        with pytest.raises(SchemaError, match="at least one"):
            aggregate_schema(weather_schema, [], "AVG", 60.0)

    def test_granularity_coarsened_to_cover_interval(self, weather_schema):
        hourly = aggregate_schema(weather_schema, ["temperature"], "AVG", 3600.0)
        assert hourly.temporal_granularity.name == "hour"
        minutely = aggregate_schema(weather_schema, ["temperature"], "AVG", 30.0)
        assert minutely.temporal_granularity.name == "minute"

    def test_multiple_attributes(self, weather_schema):
        result = aggregate_schema(
            weather_schema, ["temperature", "humidity"], "MAX", 60.0
        )
        assert result.names == ("max_temperature", "max_humidity")


class TestJoinSchema:
    def test_no_collision_keeps_names(self):
        left = StreamSchema.build({"a": "int"})
        right = StreamSchema.build({"b": "string"})
        result = join_schema(left, right)
        assert result.names == ("a", "b")

    def test_collisions_prefixed(self, weather_schema):
        result = join_schema(weather_schema, weather_schema)
        assert "l_temperature" in result and "r_temperature" in result

    def test_same_prefixes_raise(self, weather_schema):
        with pytest.raises(SchemaError, match="differ"):
            join_schema(weather_schema, weather_schema, "x", "x")

    def test_granularities_coarsest_common(self):
        left = StreamSchema.build({"a": "int"}, temporal="second", spatial="point")
        right = StreamSchema.build({"b": "int"}, temporal="hour", spatial="city")
        result = join_schema(left, right)
        assert result.temporal_granularity.name == "hour"
        assert result.spatial_granularity.name == "city"

    def test_themes_unioned(self):
        left = StreamSchema.build({"a": "int"}, themes=("weather/rain",))
        right = StreamSchema.build({"b": "int"}, themes=("mobility/traffic",))
        result = join_schema(left, right)
        assert len(result.themes) == 2

    def test_prefix_creating_collision_raises(self):
        left = StreamSchema.build({"a": "int", "l_a": "int"})
        right = StreamSchema.build({"a": "int"})
        with pytest.raises(SchemaError):
            join_schema(left, right, "l", "r")
