"""Unit tests for the Osaka scenario fleet."""

import pytest

from repro.network.topology import Topology
from repro.sensors.osaka import OSAKA_AREA, osaka_fleet
from repro.stt.spatial import representative_point


@pytest.fixture
def topo() -> Topology:
    return Topology.star(leaf_count=3)


class TestFleetComposition:
    def test_scenario_stream_types_present(self, topo):
        fleet = osaka_fleet(topo)
        types = {s.metadata.sensor_type for s in fleet}
        # The four stream types of the Section 3 scenario.
        assert {"temperature", "rain", "twitter", "traffic"} <= types

    def test_extended_roster(self, topo):
        fleet = osaka_fleet(topo, extended=True)
        types = {s.metadata.sensor_type for s in fleet}
        assert {"humidity", "wind", "pressure", "sea-level",
                "train-schedule", "flight-schedule"} <= types

    def test_unique_ids(self, topo):
        fleet = osaka_fleet(topo, extended=True)
        ids = [s.sensor_id for s in fleet]
        assert len(ids) == len(set(ids))

    def test_sensors_in_osaka_area(self, topo):
        for sensor in osaka_fleet(topo, extended=True):
            point = representative_point(sensor.metadata.location)
            # Itami airport sits just north of the metro box; allow margin.
            assert 34.5 <= point.lat <= 34.85
            assert 135.3 <= point.lon <= 135.7

    def test_sensors_spread_over_nodes(self, topo):
        fleet = osaka_fleet(topo)
        nodes = {s.metadata.node_id for s in fleet}
        assert len(nodes) == len(topo.node_ids)

    def test_empty_topology_raises(self):
        with pytest.raises(ValueError):
            osaka_fleet(Topology())

    def test_replicas_multiply_the_roster(self, topo):
        base = osaka_fleet(topo)
        tripled = osaka_fleet(topo, replicas=3)
        assert len(tripled) == 3 * len(base)
        ids = [sensor.sensor_id for sensor in tripled]
        assert len(ids) == len(set(ids))  # replica suffixes keep ids unique
        assert "osaka-temp-umeda-r2" in ids

    def test_invalid_replicas_raise(self, topo):
        with pytest.raises(ValueError):
            osaka_fleet(topo, replicas=0)


class TestRegimes:
    def test_hot_vs_cool_base(self, topo):
        hot = osaka_fleet(topo, hot=True)
        cool = osaka_fleet(topo, hot=False)
        hot_temp = next(s for s in hot if s.metadata.sensor_type == "temperature")
        cool_temp = next(s for s in cool if s.metadata.sensor_type == "temperature")
        # Probe both at mid-afternoon; hot regime must exceed 25C.
        hot_value = hot_temp.probe(14 * 3600.0)["temperature"]
        cool_value = cool_temp.probe(14 * 3600.0)["temperature"]
        assert hot_value > 25.0
        assert cool_value < 25.0
