"""Unit tests for physical sensor models."""

import numpy as np
import pytest

from repro.network.simclock import SimClock
from repro.pubsub.broker import BrokerNetwork
from repro.sensors.physical import (
    humidity_sensor,
    pressure_sensor,
    rain_sensor,
    sea_level_sensor,
    temperature_sensor,
    wind_sensor,
)
from repro.stt.spatial import Point

SITE = Point(34.69, 135.50)
_DAY = 86400.0


def collect(sensor, hours=24.0, node="edge-0"):
    """Attach a sensor to a fresh local stack and collect its output."""
    from repro.pubsub.subscription import SubscriptionFilter

    clock = SimClock()
    net = BrokerNetwork()
    seen = []
    net.subscribe(node, SubscriptionFilter(), seen.append)
    sensor.attach(net, clock)
    clock.run_until(hours * 3600.0)
    return seen


class TestTemperature:
    def test_schema_and_metadata(self):
        sensor = temperature_sensor("t1", SITE, "edge-0")
        assert sensor.metadata.sensor_type == "temperature"
        assert "temperature" in sensor.metadata.schema
        assert sensor.metadata.schema.attribute("temperature").unit == "celsius"
        assert sensor.metadata.has_theme("weather/temperature")

    def test_emits_at_advertised_frequency(self):
        sensor = temperature_sensor("t1", SITE, "edge-0", frequency=1.0 / 60.0)
        readings = collect(sensor, hours=1.0)
        assert len(readings) == 60

    def test_diurnal_cycle_peaks_afternoon(self):
        sensor = temperature_sensor("t1", SITE, "edge-0", base_temp=22.0,
                                    amplitude=6.0, noise=0.0)
        readings = collect(sensor, hours=24.0)
        by_hour = {}
        for reading in readings:
            by_hour.setdefault(int(reading.stamp.time % _DAY // 3600), []).append(
                reading["temperature"]
            )
        hottest = max(by_hour, key=lambda h: np.mean(by_hour[h]))
        coldest = min(by_hour, key=lambda h: np.mean(by_hour[h]))
        assert 12 <= hottest <= 16  # peaks ~14:00
        assert coldest in (0, 1, 2, 3, 23)

    def test_hot_regime_crosses_25(self):
        sensor = temperature_sensor("t1", SITE, "edge-0", base_temp=26.0)
        readings = collect(sensor, hours=24.0)
        afternoon = [r["temperature"] for r in readings
                     if 12 <= (r.stamp.time % _DAY) / 3600 <= 16]
        assert np.mean(afternoon) > 25.0

    def test_deterministic_per_seed(self):
        a = collect(temperature_sensor("t1", SITE, "edge-0", seed=7), hours=1.0)
        b = collect(temperature_sensor("t1", SITE, "edge-0", seed=7), hours=1.0)
        assert [r["temperature"] for r in a] == [r["temperature"] for r in b]
        c = collect(temperature_sensor("t1", SITE, "edge-0", seed=8), hours=1.0)
        assert [r["temperature"] for r in a] != [r["temperature"] for r in c]

    def test_different_ids_differ(self):
        a = collect(temperature_sensor("t1", SITE, "edge-0"), hours=1.0)
        b = collect(temperature_sensor("t2", SITE, "edge-0"), hours=1.0)
        assert [r["temperature"] for r in a] != [r["temperature"] for r in b]


class TestHumidity:
    def test_bounded_fraction(self):
        readings = collect(humidity_sensor("h1", SITE, "edge-0"), hours=24.0)
        values = [r["humidity"] for r in readings]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_anticorrelated_with_time_of_day(self):
        readings = collect(
            humidity_sensor("h1", SITE, "edge-0", noise=0.0), hours=24.0
        )
        afternoon = np.mean([r["humidity"] for r in readings
                             if 13 <= (r.stamp.time % _DAY) / 3600 <= 15])
        night = np.mean([r["humidity"] for r in readings
                         if (r.stamp.time % _DAY) / 3600 <= 3])
        assert afternoon < night


class TestRain:
    def test_bursty_episodes(self):
        readings = collect(rain_sensor("r1", SITE, "edge-0"), hours=48.0)
        values = [r["rain_rate"] for r in readings]
        assert all(v >= 0.0 for v in values)
        wet = [v > 0 for v in values]
        assert 0 < sum(wet) < len(wet)  # some rain, not constant
        # Wet readings cluster: P(wet | previous wet) > P(wet).
        wet_after_wet = sum(
            1 for a, b in zip(wet, wet[1:]) if a and b
        ) / max(1, sum(wet[:-1]))
        assert wet_after_wet > sum(wet) / len(wet)

    def test_torrential_episodes_exist(self):
        readings = collect(rain_sensor("r1", SITE, "edge-0"), hours=72.0)
        assert any(r["rain_rate"] > 20.0 for r in readings)


class TestWindPressureSea:
    def test_wind_non_negative_with_gusts(self):
        readings = collect(wind_sensor("w1", SITE, "edge-0"), hours=24.0)
        speeds = [r["wind_speed"] for r in readings]
        assert all(s >= 0 for s in speeds)
        assert max(speeds) > np.mean(speeds) * 2  # gusts stick out
        assert all(0 <= r["wind_direction"] < 360 for r in readings)

    def test_pressure_stays_meteorological(self):
        readings = collect(pressure_sensor("p1", SITE, "edge-0"), hours=48.0)
        values = [r["pressure"] for r in readings]
        assert all(950 < v < 1070 for v in values)

    def test_sea_level_tidal_period(self):
        readings = collect(
            sea_level_sensor("s1", SITE, "edge-0", tidal_amplitude_m=0.8),
            hours=26.0,
        )
        values = np.array([r["water_level"] for r in readings])
        # Two highs and two lows in ~25h (semidiurnal): range ~2x amplitude.
        assert values.max() - values.min() == pytest.approx(1.6, abs=0.4)


class TestLifecycle:
    def test_detach_stops_emission(self):
        from repro.pubsub.subscription import SubscriptionFilter

        clock = SimClock()
        net = BrokerNetwork()
        seen = []
        net.subscribe("n1", SubscriptionFilter(), seen.append)
        sensor = temperature_sensor("t1", SITE, "edge-0")
        sensor.attach(net, clock)
        clock.run_until(600.0)
        count = len(seen)
        sensor.detach()
        clock.run_until(3600.0)
        assert len(seen) == count
        assert "t1" not in net.registry

    def test_double_attach_raises(self):
        from repro.errors import PubSubError

        clock = SimClock()
        net = BrokerNetwork()
        sensor = temperature_sensor("t1", SITE, "edge-0")
        sensor.attach(net, clock)
        with pytest.raises(PubSubError):
            sensor.attach(net, clock)

    def test_probe_does_not_perturb_stream(self):
        clock = SimClock()
        net = BrokerNetwork()
        sensor = temperature_sensor("t1", SITE, "edge-0")
        sensor.attach(net, clock)
        clock.run_until(300.0)
        before = sensor.rng.bit_generator.state["state"]["state"]
        sensor.probe(1000.0)
        after = sensor.rng.bit_generator.state["state"]["state"]
        assert before == after
