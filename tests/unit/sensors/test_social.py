"""Unit tests for social sensor models."""

import numpy as np

from repro.network.simclock import SimClock
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.subscription import SubscriptionFilter
from repro.sensors.osaka import OSAKA_AREA
from repro.sensors.social import (
    flight_schedule_sensor,
    traffic_sensor,
    train_schedule_sensor,
    twitter_sensor,
)
from repro.stt.spatial import Point

SITE = Point(34.69, 135.50)
_DAY = 86400.0


def collect(sensor, hours=24.0):
    clock = SimClock()
    net = BrokerNetwork()
    seen = []
    net.subscribe("n1", SubscriptionFilter(), seen.append)
    sensor.attach(net, clock)
    clock.run_until(hours * 3600.0)
    return seen


class TestTwitter:
    def test_marked_social(self):
        sensor = twitter_sensor("tw1", OSAKA_AREA, "edge-0")
        assert not sensor.metadata.physical
        assert sensor.metadata.has_theme("social/twitter")

    def test_payload_shape(self):
        readings = collect(twitter_sensor("tw1", OSAKA_AREA, "edge-0"), hours=4.0)
        assert readings
        tweet = readings[0]
        assert set(tweet.payload) == {"user", "text", "hashtags", "retweets"}
        assert isinstance(tweet["retweets"], int)
        assert "#" in tweet["hashtags"]

    def test_rate_below_advertised_max(self):
        sensor = twitter_sensor("tw1", OSAKA_AREA, "edge-0", frequency=0.5)
        readings = collect(sensor, hours=6.0)
        assert 0 < len(readings) < 0.5 * 6 * 3600

    def test_burst_hour_busier_than_quiet(self):
        sensor = twitter_sensor("tw1", OSAKA_AREA, "edge-0", burst_hour=18)
        readings = collect(sensor, hours=24.0)
        def count_in(h0, h1):
            return sum(1 for r in readings
                       if h0 <= (r.stamp.time % _DAY) / 3600 < h1)
        assert count_in(17, 19) > count_in(3, 5)

    def test_stamped_with_area(self):
        readings = collect(twitter_sensor("tw1", OSAKA_AREA, "edge-0"), hours=2.0)
        assert readings[0].stamp.location == OSAKA_AREA


class TestTraffic:
    def test_payload_shape(self):
        readings = collect(traffic_sensor("tr1", SITE, "edge-0"), hours=4.0)
        assert set(readings[0].payload) == {
            "road", "vehicles_per_hour", "mean_speed", "congestion",
        }

    def test_rush_hour_congestion(self):
        readings = collect(traffic_sensor("tr1", SITE, "edge-0"), hours=24.0)

        def mean_congestion(h0, h1):
            values = [r["congestion"] for r in readings
                      if h0 <= (r.stamp.time % _DAY) / 3600 < h1]
            return np.mean(values)

        assert mean_congestion(7, 9) > mean_congestion(2, 4)
        assert mean_congestion(17, 19) > mean_congestion(2, 4)

    def test_speed_drops_with_congestion(self):
        readings = collect(traffic_sensor("tr1", SITE, "edge-0"), hours=24.0)
        congested = [r["mean_speed"] for r in readings if r["congestion"] > 0.8]
        free = [r["mean_speed"] for r in readings if r["congestion"] < 0.3]
        assert np.mean(congested) < np.mean(free)

    def test_bounds(self):
        readings = collect(traffic_sensor("tr1", SITE, "edge-0"), hours=24.0)
        assert all(0 <= r["congestion"] <= 1 for r in readings)
        assert all(r["mean_speed"] >= 5.0 for r in readings)


class TestSchedules:
    def test_train_feed_shape(self):
        readings = collect(train_schedule_sensor("st1", SITE, "edge-0"), hours=12.0)
        assert readings
        update = readings[0]
        assert set(update.payload) == {
            "service", "scheduled_time", "delay_minutes", "cancelled",
        }
        assert isinstance(update["cancelled"], bool)
        assert update["delay_minutes"] >= 0.0

    def test_train_feed_is_sparse(self):
        sensor = train_schedule_sensor("st1", SITE, "edge-0", frequency=1.0 / 60.0)
        readings = collect(sensor, hours=12.0)
        max_possible = 12 * 60
        assert 0 < len(readings) < max_possible

    def test_flight_delays_longer_than_train(self):
        trains = collect(train_schedule_sensor("st1", SITE, "edge-0"), hours=48.0)
        flights = collect(flight_schedule_sensor("fl1", SITE, "edge-0"), hours=48.0)
        assert flights and trains
        assert (np.mean([f["delay_minutes"] for f in flights])
                > np.mean([t["delay_minutes"] for t in trains]))

    def test_city_granularity(self):
        readings = collect(train_schedule_sensor("st1", SITE, "edge-0"), hours=12.0)
        assert readings[0].stamp.temporal_granularity.name == "minute"
        assert readings[0].stamp.spatial_granularity.name == "city"
