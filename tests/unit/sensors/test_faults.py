"""Unit tests for fault-injection sensors."""

import pytest

from repro.network.simclock import SimClock
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.subscription import SubscriptionFilter
from repro.sensors.faults import FlakySensor, MalformedPayloadSensor
from repro.sensors.physical import temperature_sensor
from repro.stt.spatial import Point

SITE = Point(34.69, 135.50)


def make_flaky(up=600.0, down=300.0):
    base = temperature_sensor("flaky-1", SITE, "edge-0", frequency=1.0 / 60.0)
    return FlakySensor(base.metadata, base.generator,
                       up_duration=up, down_duration=down)


class TestFlakySensor:
    def test_flaps_between_published_and_gone(self):
        clock = SimClock()
        net = BrokerNetwork()
        sensor = make_flaky(up=600.0, down=300.0)
        sensor.attach(net, clock)
        assert "flaky-1" in net.registry
        clock.run_until(700.0)  # past the first outage start
        assert "flaky-1" not in net.registry
        clock.run_until(1000.0)  # recovered at t=900
        assert "flaky-1" in net.registry
        assert sensor.outages == 1

    def test_emissions_pause_during_outage(self):
        clock = SimClock()
        net = BrokerNetwork()
        seen = []
        net.subscribe("n1", SubscriptionFilter(), seen.append)
        sensor = make_flaky(up=600.0, down=600.0)
        sensor.attach(net, clock)
        clock.run_until(1200.0)
        # Up for 0..600 (readings at 60..540; the outage starts exactly at
        # t=600 before that tick's emission), down 600..1200 (none).
        in_outage = [t for t in seen if 600.0 <= t.stamp.time <= 1200.0]
        assert len(in_outage) == 0
        assert len(seen) == 9

    def test_stop_flapping_freezes(self):
        clock = SimClock()
        net = BrokerNetwork()
        sensor = make_flaky(up=600.0, down=300.0)
        sensor.attach(net, clock)
        sensor.stop_flapping()
        clock.run_until(5000.0)
        assert sensor.outages == 0
        assert "flaky-1" in net.registry

    def test_invalid_durations_raise(self):
        base = temperature_sensor("x", SITE, "edge-0")
        with pytest.raises(ValueError):
            FlakySensor(base.metadata, base.generator, up_duration=0.0)


class TestMalformedPayloadSensor:
    def make(self, rate=0.5):
        base = temperature_sensor("bad-1", SITE, "edge-0", frequency=1.0 / 60.0)
        return MalformedPayloadSensor(base.metadata, base.generator,
                                      corruption_rate=rate, seed=3)

    def test_corrupts_roughly_at_rate(self):
        clock = SimClock()
        net = BrokerNetwork()
        seen = []
        net.subscribe("n1", SubscriptionFilter(), seen.append)
        sensor = self.make(rate=0.5)
        sensor.attach(net, clock)
        clock.run_until(6000.0)
        assert 20 <= sensor.corrupted <= 80  # ~50 of 100

    def test_corruptions_violate_schema(self):
        clock = SimClock()
        net = BrokerNetwork()
        seen = []
        net.subscribe("n1", SubscriptionFilter(), seen.append)
        sensor = self.make(rate=1.0)
        sensor.attach(net, clock)
        clock.run_until(600.0)
        schema = sensor.metadata.schema
        assert seen
        assert all(not schema.accepts_payload(dict(t.payload)) for t in seen)

    def test_zero_rate_never_corrupts(self):
        clock = SimClock()
        net = BrokerNetwork()
        sensor = self.make(rate=0.0)
        sensor.attach(net, clock)
        clock.run_until(6000.0)
        assert sensor.corrupted == 0

    def test_invalid_rate_raises(self):
        base = temperature_sensor("x", SITE, "edge-0")
        with pytest.raises(ValueError):
            MalformedPayloadSensor(base.metadata, base.generator,
                                   corruption_rate=1.5)
