"""Unit tests: the sensor-side adaptive micro-batch flusher."""

import pytest

from repro.errors import PubSubError
from repro.network.simclock import SimClock
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.subscription import SubscriptionFilter
from repro.sensors.base import BatchingPolicy, SimulatedSensor
from tests.unit.pubsub.test_registry import make_metadata


@pytest.fixture
def rig():
    """(network, clock, delivered tuples) for an in-process broker."""
    network = BrokerNetwork()
    clock = SimClock()
    seen = []
    network.subscribe("edge-0", SubscriptionFilter(sensor_type="temperature"),
                      seen.append)
    return network, clock, seen


def make_sensor(frequency=1.0, batching=None) -> SimulatedSensor:
    return SimulatedSensor(
        make_metadata("t1", "temperature", frequency=frequency,
                      node_id="edge-0"),
        generator=lambda now, rng: {"v": now},
        batching=batching,
    )


class TestPolicy:
    def test_defaults_to_unbatched(self):
        assert BatchingPolicy().max_batch == 1

    def test_rejects_zero_batch(self):
        with pytest.raises(PubSubError):
            BatchingPolicy(max_batch=0)

    def test_rejects_non_positive_delay_when_batching(self):
        with pytest.raises(PubSubError):
            BatchingPolicy(max_batch=4, max_delay=0.0)
        BatchingPolicy(max_batch=1, max_delay=0.0)  # fine when unbatched


class TestUnbatchedPassthrough:
    def test_each_reading_published_immediately(self, rig):
        network, clock, seen = rig
        sensor = make_sensor()
        sensor.attach(network, clock)
        clock.run_until(3.5)
        assert len(seen) == 3
        assert sensor.batches_flushed == 0
        assert network.data_messages_sent == 3


class TestFlushOnFill:
    def test_flushes_when_batch_fills(self, rig):
        network, clock, seen = rig
        sensor = make_sensor(batching=BatchingPolicy(max_batch=3,
                                                     max_delay=100.0))
        sensor.attach(network, clock)
        clock.run_until(2.5)
        assert seen == []  # two readings buffered, batch not full
        clock.run_until(3.5)
        assert len(seen) == 3
        assert sensor.batches_flushed == 1
        # One network-level fan-out for three tuples.
        assert network.data_messages_sent == 1
        assert network.data_tuples_sent == 3

    def test_order_preserved_across_flushes(self, rig):
        network, clock, seen = rig
        sensor = make_sensor(batching=BatchingPolicy(max_batch=2,
                                                     max_delay=100.0))
        sensor.attach(network, clock)
        clock.run_until(6.5)
        assert [t.seq for t in seen] == [0, 1, 2, 3, 4, 5]


class TestFlushOnDelay:
    def test_partial_batch_flushes_after_max_delay(self, rig):
        network, clock, seen = rig
        sensor = make_sensor(batching=BatchingPolicy(max_batch=100,
                                                     max_delay=2.5))
        sensor.attach(network, clock)
        # Readings at t=1, 2, 3; the t=1 reading's delay budget expires at
        # t=3.5, flushing everything buffered by then.
        clock.run_until(3.4)
        assert seen == []
        clock.run_until(3.6)
        assert [t.seq for t in seen] == [0, 1, 2]
        assert sensor.batches_flushed == 1

    def test_delay_timer_rearms_per_batch(self, rig):
        network, clock, seen = rig
        sensor = make_sensor(batching=BatchingPolicy(max_batch=100,
                                                     max_delay=1.5))
        sensor.attach(network, clock)
        clock.run_until(10.0)
        # Each flush restarts the window on the next buffered reading.
        assert sensor.batches_flushed >= 2
        assert [t.seq for t in seen] == sorted(t.seq for t in seen)


class TestLifecycle:
    def test_detach_flushes_buffered_readings(self, rig):
        network, clock, seen = rig
        sensor = make_sensor(batching=BatchingPolicy(max_batch=100,
                                                     max_delay=100.0))
        sensor.attach(network, clock)
        clock.run_until(2.5)
        assert seen == []
        sensor.detach()
        assert [t.seq for t in seen] == [0, 1]
        clock.run()  # the cancelled flush timer must not fire
        assert len(seen) == 2

    def test_set_batching_flushes_first(self, rig):
        network, clock, seen = rig
        sensor = make_sensor(batching=BatchingPolicy(max_batch=100,
                                                     max_delay=100.0))
        sensor.attach(network, clock)
        clock.run_until(2.5)
        sensor.set_batching(None)
        assert len(seen) == 2  # buffered readings were not lost
        clock.run_until(3.5)
        assert len(seen) == 3  # and emission is per-tuple again
        assert sensor.batching.max_batch == 1

    def test_flush_on_empty_buffer_is_a_no_op(self, rig):
        network, clock, _seen = rig
        sensor = make_sensor(batching=BatchingPolicy(max_batch=4))
        sensor.attach(network, clock)
        assert sensor.flush() == 0
        assert sensor.batches_flushed == 0
