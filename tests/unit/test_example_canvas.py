"""The shipped example canvas must stay valid and translatable."""

import json
import pathlib

from repro.cli import main
from repro.dataflow.serialize import dataflow_from_dict

CANVAS = pathlib.Path(__file__).parents[2] / "examples" / "canvases" \
    / "osaka-scenario.json"


class TestShippedCanvas:
    def test_document_loads(self):
        flow = dataflow_from_dict(json.loads(CANVAS.read_text()))
        assert flow.name == "osaka-scenario"
        assert len(flow.control_edges) == 3

    def test_cli_validates_it(self, capsys):
        assert main(["validate", str(CANVAS)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_translates_it(self, capsys):
        assert main(["translate", str(CANVAS)]) == 0
        out = capsys.readouterr().out
        from repro.dsn.parse import parse_dsn

        program = parse_dsn(out)
        assert program.name == "osaka-scenario"

    def test_document_deploys(self):
        from repro.scenario import build_stack

        stack = build_stack()
        flow = dataflow_from_dict(json.loads(CANVAS.read_text()))
        deployment = stack.executor.deploy(flow)
        stack.run_until(3600.0)
        assert deployment.state.value == "running"
