"""Unit tests: batched transmission and tuple-denominated traffic stats."""

import pytest

from repro.network.netsim import NetworkSimulator
from repro.network.qos import QosPolicy
from repro.network.topology import Topology
from repro.streams.tuple import (
    SensorTuple,
    TupleBatch,
    estimate_batch_size_bytes,
)
from repro.stt.event import SttStamp
from repro.stt.spatial import Point


def make_batch(count: int) -> TupleBatch:
    return TupleBatch.of([
        SensorTuple(
            payload={"v": float(i)},
            stamp=SttStamp(time=float(i), location=Point(34.69, 135.50)),
            source="s",
            seq=i,
        )
        for i in range(count)
    ])


@pytest.fixture
def sim() -> NetworkSimulator:
    return NetworkSimulator(topology=Topology.line(3))


class TestSendBatch:
    def test_one_message_many_tuples(self, sim):
        batch = make_batch(5)
        inbox = []
        sim.send_batch("node-0", "node-2", batch,
                       estimate_batch_size_bytes(batch), inbox.append)
        sim.clock.run()
        assert len(inbox) == 1
        assert list(inbox[0]) == list(batch)
        assert sim.stats.messages_sent == 1
        assert sim.stats.tuples_sent == 5
        assert sim.stats.messages_delivered == 1
        assert sim.stats.tuples_delivered == 5

    def test_single_send_counts_one_tuple(self, sim):
        sim.send("node-0", "node-2", 1, 10.0, lambda _p: None)
        sim.clock.run()
        assert sim.stats.messages_sent == 1
        assert sim.stats.tuples_sent == 1
        assert sim.stats.tuples_delivered == 1

    def test_links_charged_once_per_batch(self, sim):
        batch = make_batch(8)
        size = estimate_batch_size_bytes(batch)
        sim.send_batch("node-0", "node-2", batch, size, lambda _p: None)
        sim.clock.run()
        for link in sim.topology.links:
            assert link.messages_transferred == 1
            assert link.bytes_transferred == size

    def test_local_delivery_is_immediate_and_counted(self, sim):
        batch = make_batch(3)
        inbox = []
        sim.send_batch("node-1", "node-1", batch, 30.0, inbox.append)
        sim.clock.run()
        assert len(inbox) == 1
        assert sim.stats.tuples_delivered == 3
        for link in sim.topology.links:
            assert link.messages_transferred == 0

    def test_unreachable_batch_drops_once(self, sim):
        sim.topology.node("node-2").fail()
        drops = []
        batch = make_batch(4)
        sim.send_batch("node-0", "node-2", batch, 40.0, lambda _p: None,
                       on_drop=lambda message, reason: drops.append(
                           (message.units, reason)))
        sim.clock.run()
        assert len(drops) == 1
        units, reason = drops[0]
        assert units == 4
        assert reason
        assert sim.stats.messages_dropped == 1
        assert sim.stats.tuples_delivered == 0

    def test_qos_budget_drop_fires_on_drop_once(self, sim):
        drops = []
        batch = make_batch(4)
        sim.send_batch(
            "node-0", "node-2", batch, 40.0, lambda _p: None,
            qos=QosPolicy(max_latency=1e-9),
            on_drop=lambda message, reason: drops.append(message.units),
        )
        sim.clock.run()
        assert drops == [4]

    def test_empty_batch_moves_zero_tuples(self, sim):
        inbox = []
        sim.send_batch("node-0", "node-2", TupleBatch.of([]), 24.0,
                       inbox.append)
        sim.clock.run()
        assert sim.stats.messages_sent == 1
        assert sim.stats.tuples_sent == 0
        assert len(inbox) == 1
