"""Unit tests for QoS classes and policies."""

import pytest

from repro.errors import NetworkError
from repro.network.qos import QosClass, QosPolicy


class TestQosClass:
    def test_parse(self):
        assert QosClass.parse("reliable") is QosClass.RELIABLE
        assert QosClass.parse("REAL_TIME") is QosClass.REAL_TIME
        assert QosClass.parse(QosClass.BEST_EFFORT) is QosClass.BEST_EFFORT

    def test_unknown_raises(self):
        with pytest.raises(NetworkError, match="unknown QoS"):
            QosClass.parse("platinum")


class TestQosPolicy:
    def test_defaults(self):
        policy = QosPolicy()
        assert policy.qos_class is QosClass.BEST_EFFORT
        assert policy.segment_bytes == 65536

    def test_string_class_coerced(self):
        assert QosPolicy(qos_class="real-time").qos_class is QosClass.REAL_TIME

    def test_invalid_segment_raises(self):
        with pytest.raises(NetworkError):
            QosPolicy(segment_bytes=0)

    def test_invalid_latency_raises(self):
        with pytest.raises(NetworkError):
            QosPolicy(max_latency=0.0)

    @pytest.mark.parametrize("size,expected", [
        (0, 1), (1, 1), (100, 1), (100.0, 1),
        (65536, 1), (65537, 2), (65536 * 3, 3), (65536 * 3 + 1, 4),
    ])
    def test_segments(self, size, expected):
        assert QosPolicy().segments(size) == expected

    def test_segments_custom_size(self):
        assert QosPolicy(segment_bytes=10).segments(35) == 4

    def test_describe(self):
        policy = QosPolicy(qos_class="real-time", priority=3, max_latency=0.5)
        text = policy.describe()
        assert "real-time" in text and "priority=3" in text and "0.5" in text
