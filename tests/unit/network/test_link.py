"""Unit tests for network links."""

import pytest

from repro.errors import NetworkError
from repro.network.link import Link


class TestConstruction:
    def test_self_loop_raises(self):
        with pytest.raises(NetworkError):
            Link("a", "a")

    def test_negative_latency_raises(self):
        with pytest.raises(NetworkError):
            Link("a", "b", latency=-1.0)

    def test_zero_bandwidth_raises(self):
        with pytest.raises(NetworkError):
            Link("a", "b", bandwidth=0.0)

    def test_key_is_canonical(self):
        assert Link("b", "a").key == Link("a", "b").key == ("a", "b")


class TestDelays:
    def test_delay_is_latency_plus_transmission(self):
        link = Link("a", "b", latency=0.01, bandwidth=1000.0)
        assert link.transfer_delay(500.0) == pytest.approx(0.01 + 0.5)

    def test_zero_size(self):
        link = Link("a", "b", latency=0.01)
        assert link.transfer_delay(0.0) == 0.01

    def test_negative_size_raises(self):
        with pytest.raises(NetworkError):
            Link("a", "b").transfer_delay(-1.0)


class TestAccounting:
    def test_bytes_and_messages(self):
        link = Link("a", "b")
        link.account(100.0)
        link.account(250.0)
        assert link.bytes_transferred == 350.0
        assert link.messages_transferred == 2


class TestEndpoints:
    def test_connects_and_other_end(self):
        link = Link("a", "b")
        assert link.connects("a") and link.connects("b")
        assert not link.connects("c")
        assert link.other_end("a") == "b"
        with pytest.raises(NetworkError):
            link.other_end("c")

    def test_fail_recover(self):
        link = Link("a", "b")
        link.fail()
        assert not link.up
        link.recover()
        assert link.up
