"""Unit tests for the grid topology builder."""

import pytest

from repro.errors import NetworkError, UnreachableError
from repro.network.topology import Topology


class TestGrid:
    def test_dimensions(self):
        topo = Topology.grid(rows=3, cols=4)
        assert len(topo) == 12
        # Interior links: 3*3 horizontal + 2*4 vertical.
        assert len(topo.links) == 3 * 3 + 2 * 4

    def test_manhattan_routing(self):
        topo = Topology.grid(rows=3, cols=3)
        path = topo.route("grid-0-0", "grid-2-2")
        assert len(path) == 5  # 4 hops

    def test_multipath_rerouting(self):
        topo = Topology.grid(rows=2, cols=2)
        direct = topo.route("grid-0-0", "grid-0-1")
        assert direct == ["grid-0-0", "grid-0-1"]
        topo.link("grid-0-0", "grid-0-1").fail()
        detour = topo.route("grid-0-0", "grid-0-1")
        assert detour == ["grid-0-0", "grid-1-0", "grid-1-1", "grid-0-1"]

    def test_cut_disconnects(self):
        topo = Topology.grid(rows=1, cols=3)
        topo.node("grid-0-1").fail()
        with pytest.raises(UnreachableError):
            topo.route("grid-0-0", "grid-0-2")

    def test_single_cell(self):
        topo = Topology.grid(rows=1, cols=1)
        assert len(topo) == 1 and not topo.links

    def test_invalid_dimensions(self):
        with pytest.raises(NetworkError):
            Topology.grid(rows=0, cols=3)

    def test_regions_by_row(self):
        topo = Topology.grid(rows=2, cols=2)
        assert topo.node("grid-1-0").region == "row-1"
