"""Unit tests for the topology and routing."""

import pytest

from repro.errors import NetworkError, UnknownNodeError, UnreachableError
from repro.network.topology import Topology


@pytest.fixture
def diamond() -> Topology:
    """a - b - d and a - c - d, with the b path faster."""
    topo = Topology()
    for name in "abcd":
        topo.add_node(name)
    topo.add_link("a", "b", latency=0.001)
    topo.add_link("b", "d", latency=0.001)
    topo.add_link("a", "c", latency=0.010)
    topo.add_link("c", "d", latency=0.010)
    return topo


class TestConstruction:
    def test_add_node_by_id(self):
        topo = Topology()
        node = topo.add_node("n1", capacity=123.0)
        assert node.capacity == 123.0
        assert "n1" in topo

    def test_duplicate_node_raises(self):
        topo = Topology()
        topo.add_node("n1")
        with pytest.raises(NetworkError, match="already"):
            topo.add_node("n1")

    def test_link_unknown_node_raises(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(UnknownNodeError):
            topo.add_link("a", "ghost")

    def test_duplicate_link_raises(self, diamond):
        with pytest.raises(NetworkError, match="already"):
            diamond.add_link("a", "b")

    def test_lookups(self, diamond):
        assert diamond.node("a").node_id == "a"
        assert diamond.link("b", "a").key == ("a", "b")
        with pytest.raises(UnknownNodeError):
            diamond.node("ghost")
        with pytest.raises(NetworkError):
            diamond.link("a", "d")

    def test_neighbors(self, diamond):
        assert diamond.neighbors("a") == ["b", "c"]

    def test_len(self, diamond):
        assert len(diamond) == 4


class TestRouting:
    def test_prefers_lower_latency(self, diamond):
        assert diamond.route("a", "d") == ["a", "b", "d"]

    def test_self_route(self, diamond):
        assert diamond.route("a", "a") == ["a"]

    def test_reroutes_around_dead_node(self, diamond):
        diamond.node("b").fail()
        assert diamond.route("a", "d") == ["a", "c", "d"]

    def test_reroutes_around_dead_link(self, diamond):
        diamond.link("a", "b").fail()
        assert diamond.route("a", "d") == ["a", "c", "d"]

    def test_unreachable_raises(self, diamond):
        diamond.node("b").fail()
        diamond.node("c").fail()
        with pytest.raises(UnreachableError):
            diamond.route("a", "d")

    def test_route_from_dead_node_raises(self, diamond):
        diamond.node("a").fail()
        with pytest.raises(UnreachableError, match="down"):
            diamond.route("a", "d")

    def test_path_latency(self, diamond):
        assert diamond.path_latency(["a", "b", "d"]) == pytest.approx(0.002)
        assert diamond.route_latency("a", "d") == pytest.approx(0.002)


class TestBuilders:
    def test_star(self):
        topo = Topology.star(leaf_count=5)
        assert len(topo) == 6
        assert topo.neighbors("hub") == [f"edge-{i}" for i in range(5)]
        # Hub gets double capacity.
        assert topo.node("hub").capacity == 2 * topo.node("edge-0").capacity

    def test_line(self):
        topo = Topology.line(node_count=4)
        assert topo.route("node-0", "node-3") == [
            "node-0", "node-1", "node-2", "node-3",
        ]

    def test_line_single_node(self):
        topo = Topology.line(node_count=1)
        assert len(topo) == 1

    def test_line_zero_raises(self):
        with pytest.raises(NetworkError):
            Topology.line(node_count=0)
