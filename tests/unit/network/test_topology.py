"""Unit tests for the topology and routing."""

import pytest

from repro.errors import NetworkError, UnknownNodeError, UnreachableError
from repro.network.topology import Topology


@pytest.fixture
def diamond() -> Topology:
    """a - b - d and a - c - d, with the b path faster."""
    topo = Topology()
    for name in "abcd":
        topo.add_node(name)
    topo.add_link("a", "b", latency=0.001)
    topo.add_link("b", "d", latency=0.001)
    topo.add_link("a", "c", latency=0.010)
    topo.add_link("c", "d", latency=0.010)
    return topo


class TestConstruction:
    def test_add_node_by_id(self):
        topo = Topology()
        node = topo.add_node("n1", capacity=123.0)
        assert node.capacity == 123.0
        assert "n1" in topo

    def test_duplicate_node_raises(self):
        topo = Topology()
        topo.add_node("n1")
        with pytest.raises(NetworkError, match="already"):
            topo.add_node("n1")

    def test_link_unknown_node_raises(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(UnknownNodeError):
            topo.add_link("a", "ghost")

    def test_duplicate_link_raises(self, diamond):
        with pytest.raises(NetworkError, match="already"):
            diamond.add_link("a", "b")

    def test_lookups(self, diamond):
        assert diamond.node("a").node_id == "a"
        assert diamond.link("b", "a").key == ("a", "b")
        with pytest.raises(UnknownNodeError):
            diamond.node("ghost")
        with pytest.raises(NetworkError):
            diamond.link("a", "d")

    def test_neighbors(self, diamond):
        assert diamond.neighbors("a") == ["b", "c"]

    def test_len(self, diamond):
        assert len(diamond) == 4


class TestRouting:
    def test_prefers_lower_latency(self, diamond):
        assert diamond.route("a", "d") == ["a", "b", "d"]

    def test_self_route(self, diamond):
        assert diamond.route("a", "a") == ["a"]

    def test_reroutes_around_dead_node(self, diamond):
        diamond.node("b").fail()
        assert diamond.route("a", "d") == ["a", "c", "d"]

    def test_reroutes_around_dead_link(self, diamond):
        diamond.link("a", "b").fail()
        assert diamond.route("a", "d") == ["a", "c", "d"]

    def test_unreachable_raises(self, diamond):
        diamond.node("b").fail()
        diamond.node("c").fail()
        with pytest.raises(UnreachableError):
            diamond.route("a", "d")

    def test_route_from_dead_node_raises(self, diamond):
        diamond.node("a").fail()
        with pytest.raises(UnreachableError, match="down"):
            diamond.route("a", "d")

    def test_path_latency(self, diamond):
        assert diamond.path_latency(["a", "b", "d"]) == pytest.approx(0.002)
        assert diamond.route_latency("a", "d") == pytest.approx(0.002)


class TestRouteCache:
    def test_generation_bumps_on_membership_changes(self):
        topo = Topology()
        start = topo.generation
        topo.add_node("a")
        topo.add_node("b")
        assert topo.generation > start
        mark = topo.generation
        topo.add_link("a", "b")
        assert topo.generation > mark

    def test_generation_bumps_on_liveness_and_routing_attrs(self, diamond):
        mark = diamond.generation
        diamond.node("b").fail()
        assert diamond.generation > mark
        mark = diamond.generation
        diamond.node("b").recover()
        assert diamond.generation > mark
        mark = diamond.generation
        diamond.link("a", "b").latency = 0.5
        assert diamond.generation > mark
        mark = diamond.generation
        diamond.link("a", "b").bandwidth = 1.0
        assert diamond.generation > mark

    def test_no_bump_on_noop_write(self, diamond):
        link = diamond.link("a", "b")
        mark = diamond.generation
        link.latency = link.latency
        diamond.node("b").up = True  # already up
        assert diamond.generation == mark

    def test_non_routing_attrs_do_not_invalidate(self, diamond):
        diamond.route("a", "d")
        mark = diamond.generation
        diamond.link("a", "b").account(100.0)
        diamond.node("b").work_done = 5.0
        assert diamond.generation == mark

    def test_cached_route_updates_after_failure(self, diamond):
        assert diamond.route("a", "d") == ["a", "b", "d"]
        diamond.node("b").fail()
        assert diamond.route("a", "d") == ["a", "c", "d"]

    def test_returned_path_is_a_fresh_list(self, diamond):
        path = diamond.route("a", "d")
        path.append("junk")
        assert diamond.route("a", "d") == ["a", "b", "d"]

    def test_unreachable_is_cached_and_revivable(self, diamond):
        diamond.node("b").fail()
        diamond.node("c").fail()
        for _ in range(2):  # second raise comes from the cache
            with pytest.raises(UnreachableError):
                diamond.route("a", "d")
        diamond.node("c").recover()
        assert diamond.route("a", "d") == ["a", "c", "d"]

    def test_dead_endpoint_detected_with_warm_cache(self, diamond):
        diamond.route("a", "d")
        diamond.node("d").fail()
        with pytest.raises(UnreachableError, match="down"):
            diamond.route("a", "d")

    def test_route_info_matches_route(self, diamond):
        info = diamond.route_info("a", "d")
        assert list(info.path) == diamond.route("a", "d")
        assert [link.latency for link in info.links] == [0.001, 0.001]
        assert diamond.route_latency("a", "d") == pytest.approx(
            diamond.path_latency(["a", "b", "d"])
        )

    def test_cache_disabled_still_routes(self):
        topo = Topology(cache_routes=False)
        for name in "ab":
            topo.add_node(name)
        topo.add_link("a", "b")
        assert topo.route("a", "b") == ["a", "b"]
        topo.node("b").fail()
        with pytest.raises(UnreachableError):
            topo.route("a", "b")

    def test_uncached_is_the_oracle(self, diamond):
        diamond.route("a", "d")
        diamond.link("b", "d").latency = 1.0  # b path now slower
        assert diamond.route("a", "d") == diamond.route_uncached("a", "d")
        assert diamond.route("a", "d") == ["a", "c", "d"]


class TestBuilders:
    def test_star(self):
        topo = Topology.star(leaf_count=5)
        assert len(topo) == 6
        assert topo.neighbors("hub") == [f"edge-{i}" for i in range(5)]
        # Hub gets double capacity.
        assert topo.node("hub").capacity == 2 * topo.node("edge-0").capacity

    def test_line(self):
        topo = Topology.line(node_count=4)
        assert topo.route("node-0", "node-3") == [
            "node-0", "node-1", "node-2", "node-3",
        ]

    def test_line_single_node(self):
        topo = Topology.line(node_count=1)
        assert len(topo) == 1

    def test_line_zero_raises(self):
        with pytest.raises(NetworkError):
            Topology.line(node_count=0)
