"""Unit tests for network nodes and load accounting."""

import pytest

from repro.errors import NetworkError
from repro.network.node import NetworkNode


class TestConstruction:
    def test_defaults(self):
        node = NetworkNode("n1")
        assert node.up and node.capacity == 1000.0

    def test_empty_id_raises(self):
        with pytest.raises(NetworkError):
            NetworkNode("")

    def test_non_positive_capacity_raises(self):
        with pytest.raises(NetworkError):
            NetworkNode("n1", capacity=0.0)


class TestLoadAccounting:
    def test_register_and_demand(self):
        node = NetworkNode("n1", capacity=100.0)
        node.register_process("p1", demand=30.0)
        node.register_process("p2", demand=50.0)
        assert node.load == 80.0
        assert node.utilization == pytest.approx(0.8)
        assert node.headroom == pytest.approx(20.0)

    def test_duplicate_registration_raises(self):
        node = NetworkNode("n1")
        node.register_process("p1")
        with pytest.raises(NetworkError, match="already placed"):
            node.register_process("p1")

    def test_update_demand(self):
        node = NetworkNode("n1", capacity=100.0)
        node.register_process("p1", demand=10.0)
        node.update_demand("p1", 90.0)
        assert node.load == 90.0

    def test_update_unknown_raises(self):
        node = NetworkNode("n1")
        with pytest.raises(NetworkError, match="not on node"):
            node.update_demand("ghost", 1.0)

    def test_unregister(self):
        node = NetworkNode("n1")
        node.register_process("p1", demand=10.0)
        node.unregister_process("p1")
        assert node.load == 0.0
        with pytest.raises(NetworkError):
            node.unregister_process("p1")

    def test_negative_demand_clamped(self):
        node = NetworkNode("n1")
        node.register_process("p1", demand=-5.0)
        assert node.load == 0.0

    def test_overload_detection(self):
        node = NetworkNode("n1", capacity=10.0)
        node.register_process("p1", demand=11.0)
        assert node.is_overloaded()
        assert node.utilization > 1.0
        assert node.headroom == 0.0

    def test_work_accounting(self):
        node = NetworkNode("n1")
        node.account_work(5.0)
        node.account_work(3.0)
        assert node.work_done == 8.0


class TestFailure:
    def test_fail_recover(self):
        node = NetworkNode("n1")
        node.fail()
        assert not node.up
        node.recover()
        assert node.up
