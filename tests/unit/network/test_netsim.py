"""Unit tests for the network simulator's message delivery."""

import pytest

from repro.network.netsim import NetworkSimulator
from repro.network.qos import QosPolicy
from repro.network.topology import Topology


@pytest.fixture
def sim() -> NetworkSimulator:
    return NetworkSimulator(topology=Topology.line(3, latency=0.01, bandwidth=1000.0))


class TestDelivery:
    def test_delivers_payload(self, sim):
        inbox = []
        sim.send("node-0", "node-2", {"v": 1}, 100.0, inbox.append)
        sim.clock.run()
        assert inbox == [{"v": 1}]
        assert sim.stats.messages_delivered == 1

    def test_delay_accumulates_over_hops(self, sim):
        times = []
        sim.send("node-0", "node-2", "x", 100.0, lambda _p: times.append(sim.clock.now))
        sim.clock.run()
        # Two hops: 2 * (0.01 latency + 100/1000 transmission) = 0.22.
        assert times[0] == pytest.approx(0.22)

    def test_local_send_is_fast(self, sim):
        times = []
        sim.send("node-1", "node-1", "x", 100.0, lambda _p: times.append(sim.clock.now))
        sim.clock.run()
        assert times[0] == 0.0
        # Local sends move no bytes on links.
        assert sim.total_link_bytes() == 0.0

    def test_link_byte_accounting(self, sim):
        sim.send("node-0", "node-2", "x", 100.0, lambda _p: None)
        sim.clock.run()
        assert sim.total_link_bytes() == 200.0  # 100 bytes x 2 hops
        assert sim.topology.link("node-0", "node-1").bytes_transferred == 100.0

    def test_ordering_preserved_between_same_pair(self, sim):
        inbox = []
        sim.send("node-0", "node-2", 1, 100.0, inbox.append)
        sim.send("node-0", "node-2", 2, 100.0, inbox.append)
        sim.clock.run()
        assert inbox == [1, 2]


class TestDrops:
    def test_unreachable_drops(self, sim):
        sim.topology.node("node-1").fail()
        drops = []
        sim.on_drop = lambda message, reason: drops.append(reason)
        result = sim.send("node-0", "node-2", "x", 100.0, lambda _p: None)
        assert result is None
        assert sim.stats.messages_dropped == 1
        assert "no live route" in drops[0]

    def test_target_dies_in_flight(self, sim):
        inbox = []
        sim.send("node-0", "node-2", "x", 100.0, inbox.append)
        sim.topology.node("node-2").fail()
        sim.clock.run()
        assert inbox == []
        assert sim.stats.messages_dropped == 1

    def test_latency_budget_exceeded(self, sim):
        strict = QosPolicy(qos_class="real-time", max_latency=0.05)
        result = sim.send("node-0", "node-2", "x", 100.0, lambda _p: None, qos=strict)
        assert result is None
        assert sim.stats.messages_dropped == 1

    def test_latency_budget_satisfied(self, sim):
        lenient = QosPolicy(qos_class="real-time", max_latency=1.0)
        inbox = []
        sim.send("node-0", "node-2", "x", 100.0, inbox.append, qos=lenient)
        sim.clock.run()
        assert inbox == ["x"]


class TestFaultInjection:
    def test_kill_and_revive_node(self, sim):
        sim.kill_node("node-1")
        assert not sim.topology.node("node-1").up
        sim.revive_node("node-1")
        assert sim.topology.node("node-1").up

    def test_kill_counts_one_failure_per_transition(self, sim):
        sim.kill_node("node-1")
        sim.kill_node("node-1")  # already down: not a new failure
        assert sim.topology.node("node-1").failures == 1
        sim.revive_node("node-1")
        sim.kill_node("node-1")
        assert sim.topology.node("node-1").failures == 2

    def test_per_message_on_drop_for_immediate_loss(self, sim):
        sim.kill_node("node-1")  # severs the line topology
        losses = []
        sim.send("node-0", "node-2", "x", 100.0, lambda _p: None,
                 on_drop=lambda message, reason: losses.append(reason))
        assert len(losses) == 1 and "no live route" in losses[0]

    def test_per_message_on_drop_for_in_flight_loss(self, sim):
        losses = []
        sim.send("node-0", "node-2", "x", 100.0, lambda _p: None,
                 on_drop=lambda message, reason: losses.append(reason))
        sim.kill_node("node-2")
        sim.clock.run()
        assert len(losses) == 1

    def test_per_message_callback_runs_before_global_hook(self, sim):
        order = []
        sim.on_drop = lambda message, reason: order.append("global")
        sim.kill_node("node-1")
        sim.send("node-0", "node-2", "x", 100.0, lambda _p: None,
                 on_drop=lambda message, reason: order.append("local"))
        assert order == ["local", "global"]

    def test_delivered_message_never_reports_loss(self, sim):
        losses = []
        inbox = []
        sim.send("node-0", "node-2", "x", 100.0, inbox.append,
                 on_drop=lambda message, reason: losses.append(reason))
        sim.clock.run()
        assert inbox == ["x"] and losses == []


class TestStats:
    def test_mean_delay(self, sim):
        sim.send("node-0", "node-1", "x", 0.0, lambda _p: None)
        sim.send("node-0", "node-2", "x", 0.0, lambda _p: None)
        sim.clock.run()
        assert sim.stats.mean_delay == pytest.approx(0.015)  # (0.01 + 0.02)/2

    def test_reset(self, sim):
        sim.send("node-0", "node-2", "x", 100.0, lambda _p: None)
        sim.clock.run()
        sim.reset_traffic_stats()
        assert sim.stats.messages_sent == 0
        assert sim.total_link_bytes() == 0.0
