"""Unit tests for the discrete-event clock."""

import pytest

from repro.errors import SimulationError
from repro.network.simclock import SimClock


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        clock = SimClock()
        order = []
        clock.schedule(5.0, lambda: order.append("b"))
        clock.schedule(1.0, lambda: order.append("a"))
        clock.schedule(9.0, lambda: order.append("c"))
        clock.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        clock = SimClock()
        order = []
        clock.schedule(1.0, lambda: order.append("first"))
        clock.schedule(1.0, lambda: order.append("second"))
        clock.run()
        assert order == ["first", "second"]

    def test_now_advances_during_callbacks(self):
        clock = SimClock()
        seen = []
        clock.schedule(3.0, lambda: seen.append(clock.now))
        clock.run()
        assert seen == [3.0]

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            SimClock().schedule(-1.0, lambda: None)

    def test_schedule_in_past_raises(self):
        clock = SimClock(start=10.0)
        with pytest.raises(SimulationError):
            clock.schedule_at(5.0, lambda: None)

    def test_callbacks_can_schedule_more(self):
        clock = SimClock()
        seen = []

        def chain():
            seen.append(clock.now)
            if clock.now < 3.0:
                clock.schedule(1.0, chain)

        clock.schedule(1.0, chain)
        clock.run()
        assert seen == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_events_skipped(self):
        clock = SimClock()
        fired = []
        event = clock.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        clock.run()
        assert fired == []
        assert clock.pending == 0

    def test_pending_counts_only_live(self):
        clock = SimClock()
        event = clock.schedule(1.0, lambda: None)
        clock.schedule(2.0, lambda: None)
        assert clock.pending == 2
        event.cancel()
        assert clock.pending == 1


class TestRunUntil:
    def test_stops_at_boundary(self):
        clock = SimClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append(1))
        clock.schedule(5.0, lambda: fired.append(5))
        clock.schedule(10.0, lambda: fired.append(10))
        executed = clock.run_until(5.0)
        assert executed == 2
        assert fired == [1, 5]
        assert clock.now == 5.0

    def test_advances_clock_even_without_events(self):
        clock = SimClock()
        clock.run_until(100.0)
        assert clock.now == 100.0

    def test_backwards_raises(self):
        clock = SimClock(start=10.0)
        with pytest.raises(SimulationError):
            clock.run_until(5.0)

    def test_runaway_loop_detected(self):
        clock = SimClock()

        def loop():
            clock.schedule(0.0, loop)

        clock.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="exceeded"):
            clock.run_until(1.0, max_events=100)

    def test_no_reentrant_run(self):
        clock = SimClock()
        errors = []

        def reenter():
            try:
                clock.run_until(100.0)
            except SimulationError as exc:
                errors.append(exc)

        clock.schedule(1.0, reenter)
        clock.run_until(10.0)
        assert len(errors) == 1


class TestPeriodic:
    def test_fires_at_interval(self):
        clock = SimClock()
        ticks = []
        clock.schedule_periodic(10.0, lambda: ticks.append(clock.now))
        clock.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_start_delay(self):
        clock = SimClock()
        ticks = []
        clock.schedule_periodic(10.0, lambda: ticks.append(clock.now), start_delay=1.0)
        clock.run_until(25.0)
        assert ticks == [1.0, 11.0, 21.0]

    def test_cancel_stops_future_firings(self):
        clock = SimClock()
        ticks = []
        cancel = clock.schedule_periodic(10.0, lambda: ticks.append(clock.now))
        clock.run_until(25.0)
        cancel()
        clock.run_until(100.0)
        assert ticks == [10.0, 20.0]

    def test_cancel_from_within_callback(self):
        clock = SimClock()
        ticks = []
        holder = {}

        def tick():
            ticks.append(clock.now)
            if len(ticks) == 2:
                holder["cancel"]()

        holder["cancel"] = clock.schedule_periodic(5.0, tick)
        clock.run_until(100.0)
        assert ticks == [5.0, 10.0]

    def test_zero_interval_raises(self):
        with pytest.raises(SimulationError):
            SimClock().schedule_periodic(0.0, lambda: None)
