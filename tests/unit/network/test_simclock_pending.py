"""Unit tests: O(1) pending count and lazy-deletion compaction."""

from repro.network.simclock import SimClock


class TestPendingCount:
    def test_pending_excludes_cancelled(self):
        clock = SimClock()
        events = [clock.schedule(float(i + 1), lambda: None)
                  for i in range(6)]
        assert clock.pending == 6
        events[0].cancel()
        events[2].cancel()
        assert clock.pending == 4

    def test_double_cancel_counts_once(self):
        clock = SimClock()
        event = clock.schedule(1.0, lambda: None)
        clock.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        event.cancel()
        assert clock.pending == 1

    def test_pending_drains_to_zero(self):
        clock = SimClock()
        events = [clock.schedule(float(i + 1), lambda: None)
                  for i in range(5)]
        events[3].cancel()
        clock.run()
        assert clock.pending == 0

    def test_cancel_after_fire_is_a_no_op(self):
        clock = SimClock()
        fired = clock.schedule(1.0, lambda: None)
        clock.schedule(2.0, lambda: None)
        clock.run_until(1.5)
        # The event already ran; cancelling it must not corrupt the count.
        fired.cancel()
        assert clock.pending == 1

    def test_cancel_own_event_from_its_callback(self):
        """A callback cancelling the very event that is firing (the sensor
        flusher does this when ``flush`` runs off its own timer)."""
        clock = SimClock()
        holder = {}
        ran = []

        def callback():
            holder["event"].cancel()
            ran.append(clock.now)

        holder["event"] = clock.schedule(1.0, callback)
        clock.schedule(2.0, lambda: ran.append(clock.now))
        clock.run()
        assert ran == [1.0, 2.0]
        assert clock.pending == 0


class TestCompaction:
    def test_heap_compacts_when_mostly_cancelled(self):
        clock = SimClock()
        keep = clock.schedule(100.0, lambda: None)
        doomed = [clock.schedule(float(i + 1), lambda: None)
                  for i in range(40)]
        before = len(clock._heap)
        for event in doomed:
            event.cancel()
        # Lazy deletion must not let the heap grow unboundedly: once
        # cancellations dominate, the live entries are rebuilt in place.
        assert len(clock._heap) < before
        assert clock.pending == 1
        keep.cancel()
        assert clock.pending == 0

    def test_compaction_preserves_order(self):
        clock = SimClock()
        order = []
        doomed = [clock.schedule(float(i + 1), lambda: None)
                  for i in range(30)]
        clock.schedule(50.0, lambda: order.append("a"))
        clock.schedule(60.0, lambda: order.append("b"))
        clock.schedule(55.0, lambda: order.append("mid"))
        for event in doomed:
            event.cancel()
        clock.run()
        assert order == ["a", "mid", "b"]

    def test_compaction_during_run_keeps_future_events(self):
        """run() iterates the same heap list the compactor rewrites."""
        clock = SimClock()
        order = []
        doomed = []

        def cancel_many():
            for event in doomed:
                event.cancel()
            order.append("cancelled")

        clock.schedule(1.0, cancel_many)
        doomed.extend(clock.schedule(float(i + 10), lambda: None)
                      for i in range(30))
        clock.schedule(100.0, lambda: order.append("late"))
        clock.run()
        assert order == ["cancelled", "late"]
        assert clock.pending == 0
