"""Unit tests for the designer's live deployment handle."""

import pytest

from repro.dataflow.ops import FilterSpec
from repro.designer.session import DesignerSession
from repro.errors import DataflowError
from repro.scenario import build_stack


@pytest.fixture
def stack():
    return build_stack()


@pytest.fixture
def session(stack):
    session = DesignerSession(stack.executor, name="handle-test")
    src = session.add_source("osaka-temp-umeda", node_id="src")
    hot = session.add_operator(FilterSpec("temperature > -100"), node_id="hot")
    out = session.add_sink(node_id="out")
    session.connect(src, hot)
    session.connect(hot, out)
    return session


class TestRender:
    def test_ascii(self, session):
        text = session.render()
        assert "handle-test" in text
        assert "hot [filter]" in text

    def test_dot(self, session):
        dot = session.render("dot")
        assert dot.startswith('digraph "handle-test"')

    def test_unknown_format(self, session):
        with pytest.raises(DataflowError):
            session.render("svg")


class TestReassignments:
    def test_only_own_changes_reported(self, stack, session):
        handle = session.deploy()
        stack.run_until(600.0)
        # A reassignment in another deployment must not leak in.
        stack.executor.monitor.record_assignment(
            "other-flow:x", "hub", "edge-0", "unrelated"
        )
        victim = handle.deployment.process("hot").node_id
        stack.topology.node(victim).register_process("hog", demand=5000.0)
        stack.run_until(1800.0)
        own = handle.reassignments()
        assert own
        assert all(c.process_id.startswith("handle-test:") for c in own)

    def test_empty_before_any_migration(self, stack, session):
        handle = session.deploy()
        stack.run_until(300.0)
        assert handle.reassignments() == []
