"""Unit tests for the designer palette."""

import pytest

from repro.designer.palette import OPERATOR_PALETTE, Palette
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.sensors.osaka import osaka_fleet


@pytest.fixture
def palette() -> Palette:
    net = BrokerNetwork()
    for sensor in osaka_fleet(Topology.star(leaf_count=2)):
        net.publish(sensor.metadata)
    return Palette(net.registry)


class TestOperatorPalette:
    def test_one_entry_per_table1_operation(self):
        names = {entry.name for entry in OPERATOR_PALETTE}
        assert names == {
            "filter", "transform", "validate", "virtual-property",
            "cull-time", "cull-space", "aggregation", "join",
            "trigger-on", "trigger-off",
        }

    def test_categories(self):
        by_category = {}
        for entry in OPERATOR_PALETTE:
            by_category.setdefault(entry.category, set()).add(entry.name)
        assert "aggregation" in by_category["windowed"]
        assert "join" in by_category["windowed"]
        assert "trigger-on" in by_category["control"]
        assert "filter" in by_category["per-tuple"]

    def test_parameters_declared(self):
        entry = next(e for e in OPERATOR_PALETTE if e.name == "aggregation")
        assert set(entry.parameters) == {"interval", "attributes", "function"}


class TestSourcePalette:
    @pytest.mark.parametrize("criterion", ["type", "location", "rate", "node"])
    def test_organisation_criteria(self, palette, criterion):
        groups = palette.sources(organise_by=criterion)
        total = sum(len(group) for group in groups.values())
        assert total == len(palette.discovery.registry)

    def test_unknown_criterion_raises(self, palette):
        with pytest.raises(ValueError, match="unknown organisation"):
            palette.sources(organise_by="vibe")

    def test_sensor_card(self, palette):
        metadata = palette.discovery.registry.get("osaka-temp-umeda")
        card = palette.describe_sensor(metadata)
        assert card["type"] == "temperature"
        assert card["period_s"] == 60.0
        assert "weather/temperature" in card["themes"]
        assert "temperature:float[celsius]" in card["schema"]
