"""Unit tests for the designer session (the headless web app)."""

import pytest

from repro.dataflow.ops import AggregationSpec, FilterSpec, TriggerOnSpec
from repro.designer.session import DesignerSession
from repro.errors import DataflowError, ValidationError
from repro.scenario import build_stack


@pytest.fixture
def stack():
    return build_stack(hot=True)


@pytest.fixture
def session(stack) -> DesignerSession:
    return DesignerSession(stack.executor, name="session-flow")


class TestDiscovery:
    def test_discover_by_type(self, session):
        found = session.discover(sensor_type="rain")
        assert len(found) == 3
        assert all(m.sensor_type == "rain" for m in found)

    def test_palette_available(self, session):
        assert len(session.palette.operators()) == 10


class TestCanvasEditing:
    def test_source_by_bare_id(self, session):
        src = session.add_source("osaka-temp-umeda")
        assert session.flow.sources[src].filter.sensor_ids == ("osaka-temp-umeda",)

    def test_incremental_validation_feedback(self, session):
        src = session.add_source("osaka-temp-umeda")
        op = session.add_operator(FilterSpec("temperature > 24"))
        assert not session.is_consistent  # dangling operator
        sink = session.add_sink()
        session.connect(src, op)
        session.connect(op, sink)
        assert session.is_consistent
        assert session.issues() == []

    def test_schema_pane_shows_propagated_schema(self, session):
        src = session.add_source("osaka-temp-umeda")
        agg = session.add_operator(
            AggregationSpec(interval=600.0, attributes=("temperature",),
                            function="MAX")
        )
        sink = session.add_sink()
        session.connect(src, agg)
        session.connect(agg, sink)
        assert "max_temperature" in session.schema_pane(agg)

    def test_schema_pane_for_broken_upstream(self, session):
        src = session.add_source("osaka-temp-umeda")
        bad = session.add_operator(FilterSpec("ghost > 1"))
        sink = session.add_sink()
        session.connect(src, bad)
        session.connect(bad, sink)
        assert "unavailable" in session.schema_pane(bad)

    def test_schema_pane_unknown_node(self, session):
        with pytest.raises(DataflowError):
            session.schema_pane("ghost")

    def test_remove_node(self, session):
        src = session.add_source("osaka-temp-umeda")
        session.remove_node(src)
        assert src not in session.flow


class TestPreview:
    def test_preview_with_probed_sensors(self, session, stack):
        src = session.add_source("osaka-temp-umeda")
        hot = session.add_operator(FilterSpec("temperature > -100"))
        sink = session.add_sink()
        session.connect(src, hot)
        session.connect(hot, sink)
        result = session.preview(
            sensors={src: stack.sensor("osaka-temp-umeda")}, count=4
        )
        assert len(result.at(src)) == 4
        assert len(result.at(hot)) == 4

    def test_preview_requires_input(self, session):
        session.add_source("osaka-temp-umeda")
        with pytest.raises(DataflowError, match="needs sensors or sample"):
            session.preview()


class TestPersistence:
    def test_save_load_round_trip(self, session):
        src = session.add_source("osaka-temp-umeda")
        op = session.add_operator(FilterSpec("temperature > 24"))
        sink = session.add_sink()
        session.connect(src, op)
        session.connect(op, sink)
        document = session.save()
        session.load(document)
        assert session.is_consistent
        assert session.save() == document


class TestTranslateDeploy:
    def build_valid(self, session):
        src = session.add_source("osaka-temp-umeda")
        op = session.add_operator(FilterSpec("temperature > 24"), node_id="hot")
        sink = session.add_sink(node_id="out")
        session.connect(src, op)
        session.connect(op, sink)
        return src

    def test_translate_consistent_canvas(self, session):
        self.build_valid(session)
        program = session.translate()
        assert program.name == "session-flow"
        assert len(program.services) == 3

    def test_translate_inconsistent_refused(self, session):
        session.add_source("osaka-temp-umeda")
        session.add_operator(FilterSpec("temperature > 24"))
        with pytest.raises(ValidationError):
            session.translate()

    def test_deploy_returns_live_handle(self, session, stack):
        self.build_valid(session)
        handle = session.deploy()
        stack.run_until(14 * 3600.0)
        annotations = handle.annotations()
        assert annotations["hot"]["tuples_in"] > 0
        assert annotations["hot"]["node"] in stack.topology.node_ids
        source_note = [v for k, v in annotations.items()
                       if "sensors" in v]
        assert source_note and source_note[0]["delivered"] > 0

    def test_handle_controls(self, session, stack):
        self.build_valid(session)
        handle = session.deploy()
        stack.run_until(3600.0)
        handle.pause()
        assert handle.state.value == "paused"
        handle.resume()
        handle.replace_operator("hot", FilterSpec("temperature > 30"))
        handle.teardown()
        assert handle.state.value == "stopped"
