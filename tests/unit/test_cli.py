"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.dataflow.serialize import dataflow_to_dict
from repro.pubsub.subscription import SubscriptionFilter


def canvas_document(valid=True) -> dict:
    flow = Dataflow("cli-canvas")
    src = flow.add_source(
        SubscriptionFilter(sensor_ids=("osaka-temp-umeda",)), node_id="src"
    )
    condition = "temperature > 24" if valid else "ghost > 1"
    op = flow.add_operator(FilterSpec(condition), node_id="hot")
    sink = flow.add_sink(node_id="out")
    flow.connect(src, op)
    flow.connect(op, sink)
    return dataflow_to_dict(flow)


class TestOperators:
    def test_lists_all_ten(self, capsys):
        assert main(["operators"]) == 0
        out = capsys.readouterr().out
        for name in ("filter", "join", "trigger-on", "cull-space"):
            assert name in out


class TestSensors:
    def test_lists_fleet(self, capsys):
        assert main(["sensors"]) == 0
        out = capsys.readouterr().out
        assert "osaka-temp-umeda" in out
        assert "weather/temperature" in out

    def test_extended_roster(self, capsys):
        assert main(["sensors", "--extended"]) == 0
        assert "osaka-tide-port" in capsys.readouterr().out


class TestValidate:
    def test_valid_canvas(self, tmp_path, capsys):
        path = tmp_path / "canvas.json"
        path.write_text(json.dumps(canvas_document(valid=True)))
        assert main(["validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_canvas(self, tmp_path, capsys):
        path = tmp_path / "canvas.json"
        path.write_text(json.dumps(canvas_document(valid=False)))
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "ghost" in out

    def test_missing_file(self, capsys):
        assert main(["validate", "/nonexistent/canvas.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestTranslate:
    def test_prints_dsn(self, tmp_path, capsys):
        path = tmp_path / "canvas.json"
        path.write_text(json.dumps(canvas_document(valid=True)))
        assert main(["translate", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith('dsn "cli-canvas" {')
        from repro.dsn.parse import parse_dsn

        parse_dsn(out)  # the printed artifact is valid DSN

    def test_invalid_canvas_fails(self, tmp_path, capsys):
        path = tmp_path / "canvas.json"
        path.write_text(json.dumps(canvas_document(valid=False)))
        assert main(["translate", str(path)]) == 1


class TestScenario:
    def test_hot_run(self, capsys):
        assert main(["scenario", "--hours", "10"]) == 0
        out = capsys.readouterr().out
        assert "StreamLoader monitor" in out
        assert "activated" in out

    def test_cool_run(self, capsys):
        assert main(["scenario", "--hours", "6", "--cool"]) == 0
        out = capsys.readouterr().out
        assert "trigger never fired" in out


class TestHealth:
    def test_health_screen(self, capsys):
        assert main(["health", "stations", "--hours", "2"]) == 0
        out = capsys.readouterr().out
        assert "== health @ t=" in out
        assert "-- objectives --" in out
        assert "station-averages:station-avg" in out

    def test_health_json_fires_and_resolves(self, capsys):
        assert main([
            "health", "stations", "--hours", "2",
            "--slo", "watermark_lag < 200", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        events = {entry[1] for entry in payload["history"]}
        assert events == {"fire", "resolve"}
        rule = payload["rules"]["slo:station-averages:watermark_lag"]
        assert rule["threshold"] == 200.0

    def test_health_json_shard_invariant(self, capsys):
        texts = []
        for shards in ("1", "4"):
            assert main([
                "health", "stations", "--hours", "1", "--shards", shards,
                "--slo", "watermark_lag < 450", "--json",
            ]) == 0
            texts.append(capsys.readouterr().out)
        assert texts[0] == texts[1]

    def test_bad_slo_expression_is_an_error(self, capsys):
        assert main(["health", "stations", "--slo", "p99 latency bad"]) == 1
        assert "error" in capsys.readouterr().err
