"""Sanity checks on the public API surface of the top-level package."""

import repro


class TestPublicApi:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_path_types(self):
        stack = repro.build_stack(attach_fleet=False)
        assert isinstance(stack, repro.Stack)
        flow = repro.osaka_scenario_flow(stack)
        assert isinstance(flow, repro.Dataflow)

    def test_every_table1_spec_exported(self):
        specs = [
            repro.FilterSpec, repro.TransformSpec, repro.ValidateSpec,
            repro.VirtualPropertySpec, repro.CullTimeSpec,
            repro.CullSpaceSpec, repro.AggregationSpec, repro.JoinSpec,
            repro.TriggerOnSpec, repro.TriggerOffSpec,
        ]
        kinds = {spec.kind for spec in specs}
        assert len(kinds) == 10

    def test_subpackages_importable(self):
        import importlib

        for name in (
            "repro.stt", "repro.schema", "repro.expr", "repro.streams",
            "repro.pubsub", "repro.network", "repro.dsn", "repro.dataflow",
            "repro.runtime", "repro.sensors", "repro.warehouse",
            "repro.sticker", "repro.designer", "repro.baselines",
            "repro.cli",
        ):
            importlib.import_module(name)
