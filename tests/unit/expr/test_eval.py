"""Unit tests for expression evaluation."""

import pytest

from repro.errors import EvaluationError, UnknownAttributeError
from repro.expr.eval import compile_expression


def ev(source, values=None, **qualified):
    return compile_expression(source).evaluate(values or {}, **qualified)


class TestArithmetic:
    def test_basic(self):
        assert ev("2 + 3 * 4") == 14
        assert ev("(2 + 3) * 4") == 20
        assert ev("7 / 2") == 3.5
        assert ev("7 % 3") == 1
        assert ev("-5 + 2") == -3

    def test_attribute_arithmetic(self):
        assert ev("a * 2 + b", {"a": 3, "b": 1}) == 7

    def test_division_by_zero_is_evaluation_error(self):
        with pytest.raises(EvaluationError, match="division by zero"):
            ev("1 / x", {"x": 0})

    def test_string_concatenation(self):
        assert ev("'a' + 'b'") == "ab"

    def test_string_plus_number_raises(self):
        with pytest.raises(EvaluationError):
            ev("'a' + 1")


class TestComparisons:
    def test_numeric(self):
        assert ev("3 > 2") is True
        assert ev("2 >= 2") is True
        assert ev("2 < 2") is False
        assert ev("x != y", {"x": 1, "y": 2}) is True

    def test_strings(self):
        assert ev("'abc' < 'abd'") is True
        assert ev("s == 'rain'", {"s": "rain"}) is True

    def test_equality_across_types_is_false_not_error(self):
        assert ev("x == 'a'", {"x": 1}) is False

    def test_ordering_null_is_false(self):
        assert ev("x > 1", {"x": None}) is False

    def test_ordering_mixed_types_raises(self):
        with pytest.raises(EvaluationError, match="cannot compare"):
            ev("x > 'a'", {"x": 1})


class TestLogical:
    def test_short_circuit_and(self):
        # The right side would fail; short-circuit must prevent evaluation.
        assert ev("false and (1 / x > 0)", {"x": 0}) is False

    def test_short_circuit_or(self):
        assert ev("true or (1 / x > 0)", {"x": 0}) is True

    def test_not(self):
        assert ev("not (1 > 2)") is True

    def test_non_boolean_operand_raises(self):
        with pytest.raises(EvaluationError, match="'and' needs a boolean"):
            ev("1 and true")


class TestInOperator:
    def test_substring(self):
        assert ev("'rain' in text", {"text": "heavy rain again"}) is True
        assert ev("'snow' in text", {"text": "heavy rain"}) is False

    def test_non_string_raises(self):
        with pytest.raises(EvaluationError):
            ev("1 in text", {"text": "x1"})


class TestAttributes:
    def test_missing_attribute_raises(self):
        with pytest.raises(UnknownAttributeError):
            ev("missing > 1", {"present": 1})

    def test_qualified_lookup(self):
        assert ev("left.a + right.a", left={"a": 1}, right={"a": 2}) == 3

    def test_unbound_qualifier_raises(self):
        with pytest.raises(UnknownAttributeError, match="unbound qualifier"):
            ev("left.a", {})


class TestEvaluateBool:
    def test_non_boolean_result_raises(self):
        expr = compile_expression("a + 1")
        with pytest.raises(EvaluationError, match="non-boolean"):
            expr.evaluate_bool({"a": 1})

    def test_boolean_result(self):
        assert compile_expression("a > 1").evaluate_bool({"a": 5}) is True


class TestCompiledExpression:
    def test_reusable(self):
        expr = compile_expression("x * 2")
        assert expr.evaluate({"x": 1}) == 2
        assert expr.evaluate({"x": 21}) == 42

    def test_attributes_reported(self):
        expr = compile_expression("left.a + b + f(c)")
        assert expr.attributes() == {("left", "a"), ("", "b"), ("", "c")}

    def test_source_kept(self):
        expr = compile_expression("a  >  1")
        assert expr.source == "a  >  1"
