"""Unit tests for the built-in function registry."""

import pytest

from repro.errors import EvaluationError, UnknownFunctionError
from repro.expr.eval import compile_expression
from repro.expr.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from repro.schema.types import AttributeType


def ev(source, values=None):
    return compile_expression(source).evaluate(values or {})


class TestMath:
    def test_basics(self):
        assert ev("abs(-3.5)") == 3.5
        assert ev("sqrt(16)") == 4.0
        assert ev("floor(3.7)") == 3
        assert ev("ceil(3.2)") == 4
        assert ev("round(3.456)") == 3
        assert ev("round(3.456, 2)") == 3.46
        assert ev("pow(2, 10)") == 1024.0
        assert ev("min(3, 7)") == 3
        assert ev("max(3, 7)") == 7
        assert ev("clamp(15, 0, 10)") == 10

    def test_log_exp_inverse(self):
        assert ev("log(exp(2.5))") == pytest.approx(2.5)

    def test_sqrt_negative_is_evaluation_error(self):
        with pytest.raises(EvaluationError):
            ev("sqrt(-1)")


class TestStrings:
    def test_basics(self):
        assert ev("upper('rain')") == "RAIN"
        assert ev("lower('RAIN')") == "rain"
        assert ev("trim('  x ')") == "x"
        assert ev("length('abcd')") == 4
        assert ev("contains('heavy rain', 'rain')") is True
        assert ev("startswith('osaka-temp', 'osaka')") is True
        assert ev("endswith('osaka-temp', 'temp')") is True
        assert ev("replace('a-b', '-', '_')") == "a_b"
        assert ev("concat('a', 'b')") == "ab"

    def test_str_conversion(self):
        assert ev("str(42)") == "42"
        assert ev("str(2.0)") == "2"
        assert ev("str(true)") == "true"


class TestTemporal:
    def test_hour_minute_day(self):
        t = 2 * 86400.0 + 3 * 3600.0 + 25 * 60.0
        assert ev("hour_of(t)", {"t": t}) == 3
        assert ev("minute_of(t)", {"t": t}) == 25
        assert ev("day_of(t)", {"t": t}) == 2

    def test_align(self):
        assert ev("align(3725.0, 'hour')") == 3600.0


class TestSpatialAndUnits:
    def test_distance(self):
        d = ev("distance_m(34.69, 135.50, 34.69, 135.51)")
        assert 800 < d < 1000  # ~0.9 km per 0.01 deg longitude at 34.7N

    def test_convert(self):
        assert ev("convert(100, 'yard', 'meter')") == pytest.approx(91.44)

    def test_convert_bad_units_is_evaluation_error(self):
        with pytest.raises(EvaluationError):
            ev("convert(1, 'meter', 'celsius')")


class TestValidationHelpers:
    def test_matches(self):
        assert ev("matches('2016-03-15', '[0-9]{4}-[0-9]{2}-[0-9]{2}')") is True
        assert ev("matches('15/03/2016', '[0-9]{4}-[0-9]{2}-[0-9]{2}')") is False

    def test_matches_bad_pattern_raises(self):
        with pytest.raises(EvaluationError, match="invalid pattern"):
            ev("matches('x', '(unclosed')")

    def test_between(self):
        assert ev("between(5, 0, 10)") is True
        assert ev("between(-1, 0, 10)") is False

    def test_is_finite(self):
        assert ev("is_finite(1.5)") is True
        assert ev("is_finite(1e308 * 10)") is False


class TestConditionals:
    def test_if(self):
        assert ev("if(x > 0, x, -x)", {"x": -5}) == 5

    def test_coalesce(self):
        assert ev("coalesce(x, 0)", {"x": None}) == 0
        assert ev("coalesce(x, 0)", {"x": 7}) == 7


class TestRegistry:
    def test_unknown_function(self):
        with pytest.raises(UnknownFunctionError, match="unknown function"):
            ev("frobnicate(1)")

    def test_wrong_arity(self):
        with pytest.raises(UnknownFunctionError, match="argument"):
            ev("abs(1, 2)")

    def test_names_sorted(self):
        names = DEFAULT_FUNCTIONS.names()
        assert names == sorted(names)
        assert "convert" in names

    def test_custom_registration_and_duplicate(self):
        registry = FunctionRegistry()
        registry.register("twice", (AttributeType.FLOAT,), AttributeType.FLOAT,
                          lambda x: 2 * x)
        assert registry.call("twice", [21]) == 42
        with pytest.raises(UnknownFunctionError, match="already registered"):
            registry.register("twice", (AttributeType.FLOAT,),
                              AttributeType.FLOAT, lambda x: x)

    def test_overload_by_arity(self):
        sig1 = DEFAULT_FUNCTIONS.signature("round", 1)
        sig2 = DEFAULT_FUNCTIONS.signature("round", 2)
        assert sig1.arity == 1 and sig2.arity == 2
