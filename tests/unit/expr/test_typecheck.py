"""Unit tests for static type checking against schemas."""

import pytest

from repro.errors import TypeMismatchError, UnknownAttributeError
from repro.expr.eval import compile_expression
from repro.schema.schema import StreamSchema
from repro.schema.types import AttributeType


@pytest.fixture
def schema():
    return StreamSchema.build(
        {"temp": "float", "count": "int", "name": "string", "ok": "bool"}
    )


class TestTypes:
    def test_comparison_is_bool(self, schema):
        assert (
            compile_expression("temp > 24").type_check(schema)
            is AttributeType.BOOL
        )

    def test_arithmetic_widens(self, schema):
        assert (
            compile_expression("count + 1").type_check(schema)
            is AttributeType.INT
        )
        assert (
            compile_expression("count + 1.5").type_check(schema)
            is AttributeType.FLOAT
        )
        assert (
            compile_expression("count / 2").type_check(schema)
            is AttributeType.FLOAT
        )

    def test_string_concat(self, schema):
        assert (
            compile_expression("name + '!'").type_check(schema)
            is AttributeType.STRING
        )

    def test_function_return_type(self, schema):
        assert (
            compile_expression("length(name)").type_check(schema)
            is AttributeType.INT
        )


class TestRejections:
    def test_unknown_attribute(self, schema):
        with pytest.raises(UnknownAttributeError, match="no attribute"):
            compile_expression("missing > 1").type_check(schema)

    def test_string_compared_to_number(self, schema):
        with pytest.raises(TypeMismatchError):
            compile_expression("name > 3").type_check(schema)

    def test_arithmetic_on_string(self, schema):
        with pytest.raises(TypeMismatchError):
            compile_expression("name * 2").type_check(schema)

    def test_logical_on_number(self, schema):
        with pytest.raises(TypeMismatchError):
            compile_expression("temp and ok").type_check(schema)

    def test_not_on_number(self, schema):
        with pytest.raises(TypeMismatchError):
            compile_expression("not temp").type_check(schema)

    def test_function_argument_type(self, schema):
        with pytest.raises(TypeMismatchError, match="argument 1"):
            compile_expression("upper(temp)").type_check(schema)

    def test_ordering_bools_allowed_equality_everything(self, schema):
        compile_expression("ok == true").type_check(schema)


class TestCheckBoolean:
    def test_accepts_condition(self, schema):
        compile_expression("temp > 24 and ok").check_boolean(schema)

    def test_rejects_value_expression(self, schema):
        with pytest.raises(TypeMismatchError, match="expected bool"):
            compile_expression("temp + 1").check_boolean(schema)


class TestQualifiedScopes:
    def test_join_predicate(self, schema):
        other = StreamSchema.build({"temp": "float", "road": "string"})
        compile_expression("left.temp > right.temp").check_boolean(
            left=schema, right=other
        )

    def test_unknown_qualifier(self, schema):
        with pytest.raises(UnknownAttributeError, match="unknown qualifier"):
            compile_expression("center.temp > 1").type_check(
                left=schema, right=schema
            )

    def test_unqualified_in_two_stream_context(self, schema):
        with pytest.raises(UnknownAttributeError, match="qualify"):
            compile_expression("temp > 1").type_check(
                left=schema, right=schema
            )

    def test_unknown_attribute_in_qualifier(self, schema):
        with pytest.raises(UnknownAttributeError, match="no attribute"):
            compile_expression("left.missing > 1").type_check(left=schema)
