"""Unit tests for the AST-to-closure lowering (:mod:`repro.expr.compile`).

The property suite (``tests/property/test_prop_compile_parity.py``) pins
compiled ≡ interpreted on random trees; these tests pin the *specific*
behaviours the lowering promises: constant folding, error taxonomy and
messages, short-circuit order, and the compile-once contract.
"""

import pytest

from repro.errors import EvaluationError, UnknownAttributeError
from repro.expr.eval import compile_expression


def generated_source(expr) -> str:
    return expr.prepare()._fast.__expr_source__


def both_raise(expr, values, exc_type, match):
    """Both paths raise the same error type with the same message."""
    with pytest.raises(exc_type, match=match) as compiled:
        expr.evaluate(values)
    with pytest.raises(exc_type, match=match) as interpreted:
        expr.interpret(values)
    assert str(compiled.value) == str(interpreted.value)


class TestConstantFolding:
    def test_constant_subtree_folds(self):
        expr = compile_expression("temperature > 2 * 3 + 4")
        source = generated_source(expr)
        assert "(10)" in source
        assert "2" not in source.replace("_t2", "").replace("(10)", "")
        assert expr.evaluate({"temperature": 11}) is True

    def test_fully_constant_expression(self):
        expr = compile_expression("1 + 2 == 3")
        assert expr.evaluate({}) is True
        assert expr.evaluate({}) == expr.interpret({})

    def test_failing_subtree_stays_dynamic(self):
        # 1/0 cannot fold; the error must surface at evaluation time with
        # the interpreter's message.
        expr = compile_expression("1 / 0 > 0")
        both_raise(expr, {}, EvaluationError, "division by zero")

    def test_failing_subtree_behind_short_circuit_never_runs(self):
        expr = compile_expression("false and 1 / 0 > 0")
        assert expr.evaluate({}) is False
        assert expr.interpret({}) is False

    def test_folding_calls_registry_functions(self):
        expr = compile_expression("contains('umeda-north', 'umeda')")
        assert expr.evaluate({}) is True


class TestErrorParity:
    def test_missing_attribute(self):
        both_raise(compile_expression("ghost > 1"), {},
                   UnknownAttributeError, "no attribute 'ghost'")

    def test_unbound_qualifier(self):
        both_raise(compile_expression("left.temp > 1"), {},
                   UnknownAttributeError, "unbound qualifier 'left'")

    def test_missing_qualified_attribute(self):
        expr = compile_expression("left.ghost > 1").prepare()
        with pytest.raises(UnknownAttributeError, match="left.ghost") as c:
            expr.evaluate({}, left={"temp": 1})
        with pytest.raises(UnknownAttributeError, match="left.ghost") as i:
            expr.interpret({}, left={"temp": 1})
        assert str(c.value) == str(i.value)

    def test_logic_needs_boolean(self):
        both_raise(compile_expression("a and true"), {"a": 3},
                   EvaluationError, "'and' needs a boolean")

    def test_arithmetic_needs_number(self):
        both_raise(compile_expression("a * 2"), {"a": "x"},
                   EvaluationError, "'\\*' needs a number")

    def test_bool_is_not_a_number(self):
        both_raise(compile_expression("a + 1"), {"a": True},
                   EvaluationError, "'\\+' needs a number")

    def test_incomparable_types(self):
        both_raise(compile_expression("a < b"), {"a": 1, "b": "x"},
                   EvaluationError, "cannot compare")

    def test_in_needs_strings(self):
        both_raise(compile_expression("a in b"), {"a": 1, "b": "xyz"},
                   EvaluationError, "'in' needs strings")

    def test_division_by_zero_by_attribute(self):
        both_raise(compile_expression("a / b"), {"a": 1, "b": 0},
                   EvaluationError, "division by zero")

    def test_function_failure_wrapped(self):
        both_raise(compile_expression("round(a, 'x')"), {"a": 1.5},
                   EvaluationError, "failed")

    def test_unknown_function_deferred_to_runtime(self):
        both_raise(compile_expression("frobnicate(a)"), {"a": 1},
                   Exception, "frobnicate")


class TestSemanticsParity:
    def test_none_comparisons_are_false(self):
        expr = compile_expression("a < 5")
        assert expr.evaluate({"a": None}) is False
        assert expr.interpret({"a": None}) is False

    def test_string_concatenation(self):
        expr = compile_expression("a + '-suffix'")
        assert expr.evaluate({"a": "x"}) == "x-suffix"

    def test_short_circuit_skips_right_error(self):
        # The right operand's missing attribute must not surface when the
        # left short-circuits — in both paths.
        expr = compile_expression("a > 10 and ghost > 1")
        assert expr.evaluate({"a": 1}) is False
        assert expr.interpret({"a": 1}) is False
        both_raise(expr, {"a": 11}, UnknownAttributeError, "ghost")

    def test_qualified_join_predicate(self):
        expr = compile_expression("left.v == right.v and left.k < right.k")
        kwargs = {"left": {"v": 1, "k": 2}, "right": {"v": 1, "k": 5}}
        assert expr.evaluate({}, **kwargs) is True
        assert expr.interpret({}, **kwargs) is True


class TestCompileOnce:
    def test_prepare_is_idempotent(self):
        expr = compile_expression("temperature > 24")
        assert expr.prepare() is expr
        fast = expr._fast
        expr.prepare()
        assert expr._fast is fast

    def test_evaluate_prepares_lazily(self):
        expr = compile_expression("temperature > 24")
        assert expr._fast is None
        assert expr.evaluate({"temperature": 30}) is True
        assert expr._fast is not None

    def test_generated_source_attached_for_debugging(self):
        source = generated_source(compile_expression("temperature > 24"))
        assert source.startswith("def _compiled(_V, _Q):")
        assert "'temperature'" in source
