"""Unit tests for the expression tokenizer."""

import pytest

from repro.errors import LexError
from repro.expr.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


class TestBasics:
    def test_always_ends_with_eof(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("a + b")[-1].kind is TokenKind.EOF

    def test_whitespace_ignored(self):
        assert texts("  a   +\tb ") == ["a", "+", "b"]

    def test_positions_recorded(self):
        tokens = tokenize("ab + cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
        assert tokens[2].position == 5


class TestNumbers:
    @pytest.mark.parametrize("source,expected", [
        ("42", "42"), ("3.14", "3.14"), ("1e5", "1e5"),
        ("2.5e-3", "2.5e-3"), ("1E+2", "1E+2"), (".5", ".5"),
    ])
    def test_number_forms(self, source, expected):
        tokens = tokenize(source)
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == expected

    def test_number_then_dot_ident_splits(self):
        # "1.x" must not swallow the dot (qualified refs use dots).
        assert texts("left.x") == ["left", ".", "x"]


class TestStrings:
    def test_single_and_double_quotes(self):
        assert texts("'abc'") == ["abc"]
        assert texts('"abc"') == ["abc"]

    def test_unclosed_raises_with_position(self):
        with pytest.raises(LexError) as exc_info:
            tokenize("x == 'oops")
        assert exc_info.value.position == 5

    def test_empty_string(self):
        tokens = tokenize("''")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == ""


class TestKeywordsAndIdents:
    def test_keywords_lowercased(self):
        tokens = tokenize("AND Or NOT True FALSE null IN")
        assert all(token.kind is TokenKind.KEYWORD for token in tokens[:-1])
        assert texts("AND Or NOT") == ["and", "or", "not"]

    def test_identifiers_keep_case(self):
        assert texts("Temperature _x a1") == ["Temperature", "_x", "a1"]

    def test_keyword_prefix_is_ident(self):
        tokens = tokenize("android")
        assert tokens[0].kind is TokenKind.IDENT


class TestOperators:
    @pytest.mark.parametrize("op", ["==", "!=", "<=", ">=", "<", ">",
                                     "+", "-", "*", "/", "%"])
    def test_operators(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].kind is TokenKind.OP
        assert tokens[1].text == op

    def test_bare_equals_becomes_double(self):
        tokens = tokenize("a = b")
        assert tokens[1].text == "=="

    def test_parens_and_commas(self):
        assert kinds("f(a, b)")[:6] == [
            TokenKind.IDENT, TokenKind.LPAREN, TokenKind.IDENT,
            TokenKind.COMMA, TokenKind.IDENT, TokenKind.RPAREN,
        ]

    def test_invalid_character_raises(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")
