"""Unit tests for the expression parser."""

import pytest

from repro.errors import ParseError
from repro.expr.ast import AttributeRef, BinaryOp, Call, Literal, UnaryOp
from repro.expr.parser import parse


class TestLiterals:
    def test_int_and_float(self):
        assert parse("42") == Literal(42)
        assert parse("3.5") == Literal(3.5)
        assert parse("1e3") == Literal(1000.0)

    def test_booleans_and_null(self):
        assert parse("true") == Literal(True)
        assert parse("false") == Literal(False)
        assert parse("null") == Literal(None)

    def test_string(self):
        assert parse("'abc'") == Literal("abc")


class TestReferences:
    def test_unqualified(self):
        assert parse("temperature") == AttributeRef("temperature")

    def test_qualified(self):
        assert parse("left.temp") == AttributeRef("temp", qualifier="left")


class TestPrecedence:
    def test_multiplication_binds_tighter(self):
        node = parse("a + b * c")
        assert isinstance(node, BinaryOp) and node.op == "+"
        assert isinstance(node.right, BinaryOp) and node.right.op == "*"

    def test_parentheses_override(self):
        node = parse("(a + b) * c")
        assert node.op == "*"
        assert isinstance(node.left, BinaryOp) and node.left.op == "+"

    def test_comparison_over_arithmetic(self):
        node = parse("a + 1 > b - 2")
        assert node.op == ">"
        assert node.left.op == "+" and node.right.op == "-"

    def test_and_over_or(self):
        node = parse("a or b and c")
        assert node.op == "or"
        assert node.right.op == "and"

    def test_not_binds_tightest_of_logical(self):
        node = parse("not a and b")
        assert node.op == "and"
        assert isinstance(node.left, UnaryOp) and node.left.op == "not"

    def test_left_associativity(self):
        node = parse("a - b - c")
        assert node.op == "-"
        assert isinstance(node.left, BinaryOp) and node.left.op == "-"
        assert node.left.right == AttributeRef("b")

    def test_unary_minus(self):
        node = parse("-a * b")
        assert node.op == "*"
        assert isinstance(node.left, UnaryOp)

    def test_double_negation(self):
        node = parse("not not a")
        assert isinstance(node.operand, UnaryOp)


class TestCalls:
    def test_no_args(self):
        assert parse("f()") == Call("f", ())

    def test_multiple_args(self):
        node = parse("convert(x, 'yard', 'meter')")
        assert node == Call(
            "convert",
            (AttributeRef("x"), Literal("yard"), Literal("meter")),
        )

    def test_nested_calls(self):
        node = parse("max(abs(a), abs(b))")
        assert isinstance(node.args[0], Call)

    def test_expression_args(self):
        node = parse("sqrt(a*a + b*b)")
        assert isinstance(node.args[0], BinaryOp)


class TestInOperator:
    def test_in_parses_as_comparison(self):
        node = parse("'rain' in text")
        assert node.op == "in"
        assert node.left == Literal("rain")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "a +", "(a", "a)", "f(a,", "a b", "1 2", "a ==", "and a",
        "a..b", "f(,)",
    ])
    def test_malformed_raises(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_trailing_input_reported(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("a + b c")


class TestRoundTrip:
    @pytest.mark.parametrize("source", [
        "a + b * c",
        "not (x > 3 and y < 2)",
        "convert(temp, 'celsius', 'fahrenheit') >= 80",
        "left.a == right.b or left.c != 0",
        "'storm' in text",
        "-x % 3 == 1",
        "if(a > 0, a, -a) > 2.5",
    ])
    def test_unparse_reparses_identically(self, source):
        tree = parse(source)
        assert parse(tree.unparse()) == tree
