"""Unit tests for themes and the taxonomy."""

import pytest

from repro.errors import SttError
from repro.stt.thematic import DEFAULT_TAXONOMY, Theme, ThemeTaxonomy


class TestTheme:
    def test_normalisation(self):
        assert Theme(" /Weather/Rain/ ").path == "weather/rain"

    def test_empty_raises(self):
        with pytest.raises(SttError):
            Theme("   ")

    def test_invalid_segment_raises(self):
        with pytest.raises(SttError):
            Theme("weather/ra in")

    def test_parent_chain(self):
        theme = Theme("a/b/c")
        assert theme.parent == Theme("a/b")
        assert theme.parent.parent == Theme("a")
        assert theme.parent.parent.parent is None

    def test_root(self):
        assert Theme("weather/rain").root == Theme("weather")
        assert Theme("weather").root == Theme("weather")

    def test_subtheme_relation(self):
        assert Theme("weather/rain").is_subtheme_of("weather")
        assert Theme("weather").is_subtheme_of("weather")
        assert not Theme("weather").is_subtheme_of("weather/rain")
        # Prefix is segment-wise: "weatherx" is not under "weather".
        assert not Theme("weatherx").is_subtheme_of("weather")

    def test_matches_is_symmetric(self):
        a, b = Theme("weather/rain"), Theme("weather")
        assert a.matches(b) and b.matches(a)
        assert not Theme("weather").matches(Theme("mobility"))


class TestTaxonomy:
    def test_register_adds_ancestors(self):
        taxonomy = ThemeTaxonomy()
        taxonomy.register("a/b/c")
        assert taxonomy.known("a/b")
        assert taxonomy.known("a")
        assert len(taxonomy) == 3

    def test_validate_rejects_unknown(self):
        taxonomy = ThemeTaxonomy(["weather/rain"])
        with pytest.raises(SttError, match="not part of the taxonomy"):
            taxonomy.validate("wheather/rain")

    def test_validate_accepts_known(self):
        taxonomy = ThemeTaxonomy(["weather/rain"])
        assert taxonomy.validate("weather/rain") == Theme("weather/rain")

    def test_children(self):
        taxonomy = ThemeTaxonomy(["x/a", "x/b", "x/a/deep", "y"])
        children = taxonomy.children("x")
        assert children == [Theme("x/a"), Theme("x/b")]

    def test_roots(self):
        taxonomy = ThemeTaxonomy(["x/a", "y/b"])
        assert taxonomy.roots() == [Theme("x"), Theme("y")]

    def test_contains_protocol(self):
        taxonomy = ThemeTaxonomy(["weather/rain"])
        assert "weather" in taxonomy
        assert Theme("weather/rain") in taxonomy
        assert "nope" not in taxonomy
        assert 42 not in taxonomy


class TestDefaultTaxonomy:
    @pytest.mark.parametrize("path", [
        "weather/temperature", "weather/rain", "sea/water-level",
        "mobility/traffic", "social/twitter", "disaster/flood",
    ])
    def test_paper_sensor_families_present(self, path):
        assert DEFAULT_TAXONOMY.known(path)

    def test_roots_cover_physical_and_social(self):
        roots = {theme.path for theme in DEFAULT_TAXONOMY.roots()}
        assert {"weather", "sea", "mobility", "social"} <= roots
