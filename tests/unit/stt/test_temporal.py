"""Unit tests for instants, intervals, granules, alignment."""

import pytest

from repro.errors import GranularityError
from repro.stt.temporal import (
    Instant,
    Interval,
    align_instant,
    granule_index,
)

_DAY = 86400.0


class TestAlignment:
    def test_align_second_is_floor(self):
        assert align_instant(12.7, "second") == 12.0

    def test_align_minute(self):
        assert align_instant(125.0, "minute") == 120.0

    def test_align_hour(self):
        assert align_instant(3725.0, "hour") == 3600.0

    def test_align_day(self):
        assert align_instant(2.5 * _DAY, "day") == 2 * _DAY

    def test_align_is_idempotent(self):
        for gran in ("second", "minute", "hour", "day", "week", "month", "year"):
            aligned = align_instant(12345678.9, gran)
            assert align_instant(aligned, gran) == aligned

    def test_align_month_boundaries(self):
        # January is 31 days: a time in early February aligns to Jan 31 end.
        jan_31 = 31 * _DAY
        assert align_instant(jan_31 + 5.0, "month") == jan_31
        assert align_instant(jan_31 - 5.0, "month") == 0.0

    def test_align_year(self):
        year = 365 * _DAY
        assert align_instant(year + 100.0, "year") == year
        assert align_instant(year - 100.0, "year") == 0.0

    def test_align_never_exceeds_input(self):
        for t in (0.0, 59.0, 3600.0, 1e7, 3.2e7):
            for gran in ("second", "minute", "hour", "day", "month", "year"):
                assert align_instant(t, gran) <= t


class TestGranuleIndex:
    def test_same_granule_same_index(self):
        assert granule_index(3601.0, "hour") == granule_index(3700.0, "hour")

    def test_adjacent_granules_differ(self):
        assert granule_index(3599.0, "hour") != granule_index(3600.0, "hour")

    def test_month_index_increases_across_boundary(self):
        jan_31 = 31 * _DAY
        assert granule_index(jan_31, "month") == granule_index(jan_31 + 10, "month")
        assert granule_index(jan_31 - 10, "month") < granule_index(jan_31, "month")

    def test_year_index(self):
        year = 365 * _DAY
        assert granule_index(0.0, "year") == 0
        assert granule_index(year + 1.0, "year") == 1


class TestInstant:
    def test_granule_bounds_contain_instant(self):
        instant = Instant(3725.0, "hour")
        granule = instant.granule()
        assert granule.start == 3600.0
        assert granule.end == 7200.0
        assert granule.contains(instant)

    def test_coarsen_aligns(self):
        instant = Instant(3725.0, "second")
        coarse = instant.coarsened("hour")
        assert coarse.seconds == 3600.0
        assert coarse.granularity.name == "hour"

    def test_coarsen_to_finer_raises(self):
        with pytest.raises(GranularityError):
            Instant(3725.0, "hour").coarsened("second")

    def test_same_granule_uses_coarser_of_the_two(self):
        fine = Instant(3605.0, "second")
        coarse = Instant(3900.0, "hour")
        assert fine.same_granule(coarse)
        other_hour = Instant(7300.0, "hour")
        assert not fine.same_granule(other_hour)


class TestInterval:
    def test_contains_is_half_open(self):
        interval = Interval(10.0, 20.0)
        assert interval.contains(10.0)
        assert interval.contains(19.999)
        assert not interval.contains(20.0)
        assert not interval.contains(9.999)

    def test_contains_instant(self):
        assert Interval(0.0, 100.0).contains(Instant(50.0, "second"))

    def test_backwards_raises(self):
        with pytest.raises(GranularityError):
            Interval(20.0, 10.0)

    def test_zero_length_allowed_but_empty(self):
        interval = Interval(10.0, 10.0)
        assert interval.length == 0.0
        assert not interval.contains(10.0)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))
        assert not Interval(0, 10).overlaps(Interval(10, 20))  # half-open

    def test_intersection(self):
        result = Interval(0, 10).intersection(Interval(5, 15))
        assert result == Interval(5, 10)
        assert Interval(0, 10).intersection(Interval(20, 30)) is None
