"""Unit tests for the unit-of-measure registry."""

import pytest

from repro.errors import UnitError
from repro.stt.units import DEFAULT_UNITS, Unit, UnitRegistry, convert


class TestConversions:
    def test_yards_to_meters_paper_example(self):
        # The paper's own example: "from yards to meters".
        assert convert(100.0, "yard", "meter") == pytest.approx(91.44)

    def test_identity(self):
        assert convert(42.0, "meter", "meter") == 42.0

    @pytest.mark.parametrize(
        "value,src,dst,expected",
        [
            (1.0, "km", "meter", 1000.0),
            (1.0, "mile", "km", 1.609344),
            (0.0, "celsius", "kelvin", 273.15),
            (100.0, "celsius", "fahrenheit", 212.0),
            (32.0, "fahrenheit", "celsius", 0.0),
            (36.0, "km/h", "m/s", 10.0),
            (1.0, "atm", "hpa", 1013.25),
            (50.0, "percent", "fraction", 0.5),
            (2.0, "hour", "second", 7200.0),
        ],
    )
    def test_known_conversions(self, value, src, dst, expected):
        assert convert(value, src, dst) == pytest.approx(expected)

    def test_round_trip(self):
        for src, dst in [("yard", "meter"), ("celsius", "fahrenheit"),
                         ("kmh", "mph"), ("hpa", "atm")]:
            assert convert(convert(7.5, src, dst), dst, src) == pytest.approx(7.5)

    def test_cross_dimension_raises(self):
        with pytest.raises(UnitError, match="cannot convert"):
            convert(1.0, "meter", "celsius")

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitError, match="unknown unit"):
            convert(1.0, "parsec", "meter")


class TestRegistry:
    def test_compatible(self):
        assert DEFAULT_UNITS.compatible("meter", "mile")
        assert not DEFAULT_UNITS.compatible("meter", "kelvin")
        assert not DEFAULT_UNITS.compatible("meter", "nonsense")

    def test_units_of_dimension(self):
        lengths = [unit.name for unit in DEFAULT_UNITS.units_of("length")]
        assert "meter" in lengths and "yard" in lengths

    def test_duplicate_registration_raises(self):
        registry = UnitRegistry()
        registry.register(Unit("meter", "length", 1.0))
        with pytest.raises(UnitError, match="already registered"):
            registry.register(Unit("meter", "length", 1.0))

    def test_duplicate_alias_raises(self):
        registry = UnitRegistry()
        registry.register(Unit("meter", "length", 1.0), ["m"])
        with pytest.raises(UnitError, match="alias"):
            registry.register(Unit("minute", "duration", 60.0), ["m"])

    def test_alias_resolution_case_insensitive(self):
        assert DEFAULT_UNITS.resolve("KM/H").name == "kmh"

    def test_affine_unit_round_trip(self):
        fahrenheit = DEFAULT_UNITS.resolve("fahrenheit")
        assert fahrenheit.from_base(fahrenheit.to_base(98.6)) == pytest.approx(98.6)
