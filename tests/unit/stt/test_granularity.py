"""Unit tests for the granularity lattices."""

import pytest

from repro.errors import GranularityError
from repro.stt.granularity import (
    SPATIAL_GRANULARITIES,
    TEMPORAL_GRANULARITIES,
    common_spatial,
    common_temporal,
    spatial_granularity,
    temporal_granularity,
    temporal_conversion_factor,
)


class TestTemporalResolution:
    def test_canonical_names_resolve(self):
        for name in TEMPORAL_GRANULARITIES:
            assert temporal_granularity(name).name == name

    @pytest.mark.parametrize(
        "alias,canonical",
        [("s", "second"), ("min", "minute"), ("h", "hour"), ("d", "day"),
         ("w", "week"), ("months", "month"), ("y", "year")],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert temporal_granularity(alias).name == canonical

    def test_case_and_whitespace_insensitive(self):
        assert temporal_granularity("  Hour ").name == "hour"

    def test_unknown_raises(self):
        with pytest.raises(GranularityError, match="unknown temporal"):
            temporal_granularity("fortnight")

    def test_idempotent_on_granularity_objects(self):
        hour = temporal_granularity("hour")
        assert temporal_granularity(hour) is hour


class TestTemporalOrdering:
    def test_chain_is_strictly_increasing_in_seconds(self):
        sizes = [g.seconds for g in sorted(
            TEMPORAL_GRANULARITIES.values(), key=lambda g: g.rank)]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)

    def test_finer_coarser_relations(self):
        second = temporal_granularity("second")
        day = temporal_granularity("day")
        assert second.is_finer_than(day)
        assert day.is_coarser_than(second)
        assert not second.is_coarser_than(day)
        assert not second.is_finer_than(second)

    def test_expected_sizes(self):
        assert temporal_granularity("minute").seconds == 60.0
        assert temporal_granularity("hour").seconds == 3600.0
        assert temporal_granularity("day").seconds == 86400.0
        assert temporal_granularity("week").seconds == 7 * 86400.0

    def test_irregular_flags(self):
        assert not temporal_granularity("month").regular
        assert not temporal_granularity("year").regular
        assert temporal_granularity("day").regular


class TestCommonGranularity:
    def test_common_temporal_is_the_coarsest(self):
        assert common_temporal("second", "hour", "minute").name == "hour"

    def test_common_temporal_single(self):
        assert common_temporal("day").name == "day"

    def test_common_temporal_empty_raises(self):
        with pytest.raises(GranularityError):
            common_temporal()

    def test_common_spatial_is_the_coarsest(self):
        assert common_spatial("point", "city", "district").name == "city"

    def test_common_spatial_empty_raises(self):
        with pytest.raises(GranularityError):
            common_spatial()


class TestConversionFactor:
    def test_minutes_per_hour(self):
        assert temporal_conversion_factor("minute", "hour") == 60.0

    def test_seconds_per_day(self):
        assert temporal_conversion_factor("second", "day") == 86400.0

    def test_identity(self):
        assert temporal_conversion_factor("hour", "hour") == 1.0

    def test_wrong_direction_raises(self):
        with pytest.raises(GranularityError, match="cannot convert"):
            temporal_conversion_factor("hour", "minute")


class TestSpatial:
    def test_chain_cells_grow(self):
        sizes = [g.cell_meters for g in sorted(
            SPATIAL_GRANULARITIES.values(), key=lambda g: g.rank)]
        assert sizes == sorted(sizes)

    def test_point_is_finest(self):
        point = spatial_granularity("point")
        assert all(
            point.rank <= g.rank for g in SPATIAL_GRANULARITIES.values()
        )
        assert point.cell_meters == 0.0

    @pytest.mark.parametrize(
        "alias,canonical",
        [("state", "prefecture"), ("town", "city"), ("neighbourhood", "district")],
    )
    def test_spatial_aliases(self, alias, canonical):
        assert spatial_granularity(alias).name == canonical

    def test_unknown_spatial_raises(self):
        with pytest.raises(GranularityError, match="unknown spatial"):
            spatial_granularity("galaxy")
