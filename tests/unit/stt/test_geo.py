"""Unit tests for coordinate conversions."""

import pytest

from repro.errors import CoordinateError
from repro.stt.geo import (
    CoordinateSystem,
    LocalGrid,
    convert_coordinates,
    from_web_mercator,
    haversine_m,
    to_web_mercator,
)


class TestWebMercator:
    def test_origin_maps_to_origin(self):
        x, y = to_web_mercator(0.0, 0.0)
        assert x == 0.0
        assert y == pytest.approx(0.0, abs=1e-6)

    def test_round_trip(self):
        for lat, lon in [(34.69, 135.50), (-33.87, 151.21), (51.5, -0.13)]:
            x, y = to_web_mercator(lat, lon)
            back = from_web_mercator(x, y)
            assert back[0] == pytest.approx(lat, abs=1e-9)
            assert back[1] == pytest.approx(lon, abs=1e-9)

    def test_polar_latitudes_rejected(self):
        with pytest.raises(CoordinateError):
            to_web_mercator(89.0, 0.0)

    def test_longitude_monotone_in_x(self):
        x1, _ = to_web_mercator(0.0, 10.0)
        x2, _ = to_web_mercator(0.0, 20.0)
        assert x2 > x1


class TestLocalGrid:
    def test_origin_is_zero(self):
        grid = LocalGrid(34.69, 135.50)
        assert grid.to_local(34.69, 135.50) == (0.0, 0.0)

    def test_round_trip_metro_scale(self):
        grid = LocalGrid(34.69, 135.50)
        lat, lon = 34.75, 135.58
        east, north = grid.to_local(lat, lon)
        back = grid.to_wgs84(east, north)
        assert back[0] == pytest.approx(lat, abs=1e-9)
        assert back[1] == pytest.approx(lon, abs=1e-9)

    def test_north_offset_sign(self):
        grid = LocalGrid(34.69, 135.50)
        _, north = grid.to_local(34.79, 135.50)
        assert north > 0
        _, south = grid.to_local(34.59, 135.50)
        assert south < 0

    def test_absurd_offset_raises(self):
        grid = LocalGrid(34.69, 135.50)
        with pytest.raises(CoordinateError):
            grid.to_wgs84(0.0, 1e9)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_symmetry(self):
        d1 = haversine_m(34.69, 135.50, 35.68, 139.65)
        d2 = haversine_m(35.68, 139.65, 34.69, 135.50)
        assert d1 == pytest.approx(d2)

    def test_one_degree_latitude(self):
        # ~111 km per degree of latitude.
        assert haversine_m(0.0, 0.0, 1.0, 0.0) == pytest.approx(111_000, rel=0.01)


class TestConvertCoordinates:
    def test_identity_system(self):
        assert convert_coordinates(34.69, 135.50, "wgs84", "wgs84") == (34.69, 135.50)

    def test_wgs84_to_mercator_and_back(self):
        x, y = convert_coordinates(34.69, 135.50, "wgs84", "web-mercator")
        lat, lon = convert_coordinates(x, y, "web-mercator", "wgs84")
        assert (lat, lon) == (pytest.approx(34.69), pytest.approx(135.50))

    def test_local_requires_grid(self):
        with pytest.raises(CoordinateError, match="LocalGrid"):
            convert_coordinates(34.69, 135.50, "wgs84", "local-enu")

    def test_full_triangle(self):
        grid = LocalGrid(34.69, 135.50)
        east, north = convert_coordinates(
            34.70, 135.52, "wgs84", "local-enu", grid=grid
        )
        x, y = convert_coordinates(east, north, "local-enu", "web-mercator", grid=grid)
        lat, lon = convert_coordinates(x, y, "web-mercator", "wgs84")
        assert lat == pytest.approx(34.70, abs=1e-6)
        assert lon == pytest.approx(135.52, abs=1e-6)

    def test_system_parse(self):
        assert CoordinateSystem.parse("WEB_MERCATOR") is CoordinateSystem.WEB_MERCATOR
        with pytest.raises(CoordinateError):
            CoordinateSystem.parse("utm-zone-53")
