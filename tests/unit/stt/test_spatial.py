"""Unit tests for spatial objects and the granularity grid."""

import pytest

from repro.errors import CoordinateError, GranularityError
from repro.stt.spatial import (
    Box,
    GridCell,
    Point,
    coarsen,
    grid_cell_for,
    representative_point,
    within,
)


class TestPoint:
    def test_valid_construction(self):
        point = Point(34.69, 135.50)
        assert point.lat == 34.69

    @pytest.mark.parametrize("lat,lon", [(91.0, 0.0), (-91.0, 0.0),
                                          (0.0, 181.0), (0.0, -181.0)])
    def test_out_of_range_raises(self, lat, lon):
        with pytest.raises(CoordinateError):
            Point(lat, lon)

    def test_distance_to_self_is_zero(self):
        point = Point(34.69, 135.50)
        assert point.distance_m(point) == 0.0

    def test_distance_osaka_tokyo_plausible(self):
        osaka = Point(34.6937, 135.5023)
        tokyo = Point(35.6762, 139.6503)
        distance = osaka.distance_m(tokyo)
        assert 380_000 < distance < 420_000  # ~400 km


class TestBox:
    def test_from_corners_normalises(self):
        box = Box.from_corners(Point(34.8, 135.7), Point(34.5, 135.3))
        assert box.south == 34.5 and box.north == 34.8
        assert box.west == 135.3 and box.east == 135.7

    def test_invalid_orientation_raises(self):
        with pytest.raises(CoordinateError):
            Box(south=35.0, west=135.0, north=34.0, east=136.0)

    def test_contains_boundary_inclusive(self):
        box = Box(south=34.0, west=135.0, north=35.0, east=136.0)
        assert box.contains(Point(34.0, 135.0))
        assert box.contains(Point(35.0, 136.0))
        assert not box.contains(Point(33.999, 135.5))

    def test_center(self):
        box = Box(south=34.0, west=135.0, north=36.0, east=137.0)
        assert box.center() == Point(35.0, 136.0)

    def test_intersects(self):
        a = Box(south=0, west=0, north=10, east=10)
        b = Box(south=5, west=5, north=15, east=15)
        c = Box(south=11, west=11, north=12, east=12)
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)


class TestGrid:
    def test_cell_contains_its_point(self):
        point = Point(34.69, 135.50)
        cell = grid_cell_for(point, "city")
        assert cell.bounds().contains(point)

    def test_same_cell_for_nearby_points(self):
        a = grid_cell_for(Point(34.69, 135.50), "prefecture")
        b = grid_cell_for(Point(34.70, 135.51), "prefecture")
        assert a == b

    def test_different_cells_for_distant_points(self):
        a = grid_cell_for(Point(34.69, 135.50), "block")
        b = grid_cell_for(Point(35.69, 139.50), "block")
        assert a != b

    def test_point_granularity_raises(self):
        with pytest.raises(GranularityError):
            grid_cell_for(Point(0.0, 0.0), "point")

    def test_grid_cell_rejects_point_granularity(self):
        with pytest.raises(GranularityError):
            GridCell("point", 0, 0)

    def test_cell_center_is_inside_bounds(self):
        cell = grid_cell_for(Point(34.69, 135.50), "district")
        assert cell.bounds().contains(cell.center())


class TestCoarsen:
    def test_point_coarsens_to_containing_cell(self):
        point = Point(34.69, 135.50)
        cell = coarsen(point, "city")
        assert isinstance(cell, GridCell)
        assert cell.bounds().contains(point)

    def test_cell_coarsens_to_coarser_cell(self):
        fine = grid_cell_for(Point(34.69, 135.50), "district")
        coarse = coarsen(fine, "prefecture")
        assert coarse.granularity.name == "prefecture"

    def test_cell_cannot_coarsen_to_finer(self):
        coarse = grid_cell_for(Point(34.69, 135.50), "prefecture")
        with pytest.raises(GranularityError):
            coarsen(coarse, "district")

    def test_point_to_point_is_identity(self):
        point = Point(1.0, 2.0)
        assert coarsen(point, "point") is point

    def test_box_to_point_raises(self):
        box = Box(south=0, west=0, north=1, east=1)
        with pytest.raises(GranularityError):
            coarsen(box, "point")


class TestHelpers:
    def test_representative_point(self):
        point = Point(1.0, 2.0)
        assert representative_point(point) is point
        box = Box(south=0, west=0, north=2, east=4)
        assert representative_point(box) == Point(1.0, 2.0)
        cell = grid_cell_for(point, "city")
        assert cell.bounds().contains(representative_point(cell))

    def test_within(self):
        box = Box(south=34.0, west=135.0, north=35.0, east=136.0)
        assert within(Point(34.5, 135.5), box)
        assert not within(Point(36.0, 135.5), box)
