"""Unit tests for STT stamps and events."""

import pytest

from repro.errors import GranularityError
from repro.stt.event import Event, SttStamp
from repro.stt.spatial import GridCell, Point


@pytest.fixture
def stamp() -> SttStamp:
    return SttStamp(
        time=3725.0,
        location=Point(34.69, 135.50),
        themes=("weather/rain",),
    )


class TestSttStamp:
    def test_defaults(self, stamp):
        assert stamp.temporal_granularity.name == "second"
        assert stamp.spatial_granularity.name == "point"

    def test_string_granularities_coerced(self):
        stamp = SttStamp(
            time=0.0,
            location=Point(0, 0),
            temporal_granularity="hour",
            spatial_granularity="city",
        )
        assert stamp.temporal_granularity.name == "hour"
        assert stamp.spatial_granularity.name == "city"

    def test_string_themes_coerced(self, stamp):
        assert stamp.themes[0].path == "weather/rain"

    def test_has_theme_matches_super_and_sub(self, stamp):
        assert stamp.has_theme("weather")
        assert stamp.has_theme("weather/rain")
        assert not stamp.has_theme("mobility")

    def test_with_themes_deduplicates(self, stamp):
        extended = stamp.with_themes("weather/rain", "disaster/flood")
        assert len(extended.themes) == 2

    def test_coarsen_temporal(self, stamp):
        coarse = stamp.coarsened(temporal="hour")
        assert coarse.time == 3600.0
        assert coarse.temporal_granularity.name == "hour"

    def test_coarsen_spatial(self, stamp):
        coarse = stamp.coarsened(spatial="city")
        assert isinstance(coarse.location, GridCell)
        assert coarse.spatial_granularity.name == "city"

    def test_coarsen_to_finer_raises(self, stamp):
        coarse = stamp.coarsened(temporal="day")
        with pytest.raises(GranularityError):
            coarse.coarsened(temporal="hour")

    def test_point_property(self, stamp):
        assert stamp.point == Point(34.69, 135.50)
        city = stamp.coarsened(spatial="city")
        assert city.location.bounds().contains(city.point)


class TestCompatibility:
    def test_same_hour_same_city_compatible(self):
        a = SttStamp(time=3700.0, location=Point(34.69, 135.50),
                     temporal_granularity="hour", spatial_granularity="city")
        b = SttStamp(time=3900.0, location=Point(34.70, 135.51),
                     temporal_granularity="second", spatial_granularity="point")
        assert a.compatible_with(b)
        assert b.compatible_with(a)

    def test_different_hours_incompatible(self):
        a = SttStamp(time=3700.0, location=Point(34.69, 135.50),
                     temporal_granularity="hour")
        b = SttStamp(time=7300.0, location=Point(34.69, 135.50))
        assert not a.compatible_with(b)

    def test_point_granularity_requires_equality(self):
        a = SttStamp(time=10.0, location=Point(34.69, 135.50))
        b = SttStamp(time=10.0, location=Point(34.70, 135.50))
        assert not a.compatible_with(b)
        c = SttStamp(time=10.0, location=Point(34.69, 135.50))
        assert a.compatible_with(c)


class TestEvent:
    def test_coarsened_event_keeps_value(self):
        event = Event(
            value=31.5,
            stamp=SttStamp(time=3725.0, location=Point(34.69, 135.50)),
            source="temp-1",
        )
        coarse = event.coarsened(temporal="hour")
        assert coarse.value == 31.5
        assert coarse.stamp.time == 3600.0
        assert coarse.source == "temp-1"
