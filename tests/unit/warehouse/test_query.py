"""Unit tests for warehouse queries and roll-ups."""

import pytest

from repro.errors import WarehouseError
from repro.stt.spatial import Box
from repro.warehouse.loader import EventWarehouse


@pytest.fixture
def warehouse(make_tuple) -> EventWarehouse:
    wh = EventWarehouse()
    # 6 hours of readings, one per 30 min, from two stations/themes.
    for i in range(12):
        wh.load(make_tuple(
            i, temperature=20.0 + i, time=i * 1800.0,
            themes=("weather/temperature",), source="temp-1",
        ))
    for i in range(6):
        wh.load(make_tuple(
            i, temperature=5.0, time=i * 3600.0, lat=35.68, lon=139.65,
            themes=("mobility/traffic",), source="traffic-1",
        ))
    return wh


class TestFilters:
    def test_theme_filter(self, warehouse):
        assert warehouse.query().theme("weather").count() == 12
        assert warehouse.query().theme("mobility/traffic").count() == 6
        assert warehouse.query().theme("social").count() == 0

    def test_source_filter(self, warehouse):
        assert warehouse.query().source("temp-1").count() == 12

    def test_time_range(self, warehouse):
        assert warehouse.query().time_range(0.0, 3600.0).count() == 3
        with pytest.raises(WarehouseError):
            warehouse.query().time_range(10.0, 0.0)

    def test_area_filter(self, warehouse):
        osaka = Box(south=34.5, west=135.3, north=34.9, east=135.7)
        assert warehouse.query().area(osaka).count() == 12

    def test_where_measure(self, warehouse):
        hot = warehouse.query().where_measure("temperature", minimum=28.0)
        assert hot.count() == 4  # 28, 29, 30, 31

    def test_chaining(self, warehouse):
        count = (warehouse.query()
                 .theme("weather")
                 .time_range(0.0, 7200.0)
                 .where_measure("temperature", maximum=22.0)
                 .count())
        assert count == 3  # 20, 21, 22 at t=0, 1800, 3600

    def test_measure_values(self, warehouse):
        values = warehouse.query().theme("weather").measure_values("temperature")
        assert values.min() == 20.0 and values.max() == 31.0


class TestRollups:
    def test_rollup_time_hourly_avg(self, warehouse):
        rows = (warehouse.query().theme("weather")
                .rollup_time("hour", measure="temperature", agg="avg"))
        assert len(rows) == 6
        assert rows[0].group == (0.0,)
        assert rows[0].value == 20.5  # (20 + 21) / 2
        assert rows[0].count == 2

    def test_rollup_time_count(self, warehouse):
        rows = warehouse.query().rollup_time("day", measure="temperature",
                                             agg="count")
        assert len(rows) == 1
        assert rows[0].value == 18.0

    def test_rollup_space_separates_cities(self, warehouse):
        rows = warehouse.query().rollup_space("prefecture",
                                              measure="temperature", agg="avg")
        assert len(rows) == 2  # Osaka cell and Tokyo cell

    def test_rollup_theme(self, warehouse):
        rows = warehouse.query().rollup_theme(measure="temperature", agg="max")
        by_root = {row.group[0]: row.value for row in rows}
        assert by_root["weather"] == 31.0
        assert by_root["mobility"] == 5.0

    def test_unknown_aggregate_raises(self, warehouse):
        with pytest.raises(WarehouseError, match="unknown aggregate"):
            warehouse.query().rollup_time("hour", measure="temperature",
                                          agg="median")

    def test_rollup_rows_sorted(self, warehouse):
        rows = (warehouse.query().theme("weather")
                .rollup_time("hour", measure="temperature"))
        starts = [row.group[0] for row in rows]
        assert starts == sorted(starts)

    @pytest.mark.parametrize("agg,expected", [
        ("avg", 25.5), ("sum", 306.0), ("min", 20.0), ("max", 31.0),
    ])
    def test_aggregates(self, warehouse, agg, expected):
        rows = (warehouse.query().theme("weather")
                .rollup_time("day", measure="temperature", agg=agg))
        assert rows[0].value == expected
