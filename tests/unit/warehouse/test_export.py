"""Unit tests for warehouse export (rows + CSV)."""

import csv

from repro.warehouse.loader import EventWarehouse


class TestIterRows:
    def test_denormalised_rows(self, make_tuple):
        warehouse = EventWarehouse()
        warehouse.load(make_tuple(0, temperature=25.5, time=3725.0))
        rows = list(warehouse.iter_rows())
        assert len(rows) == 1
        row = rows[0]
        assert row["event_time"] == 3725.0
        assert row["time_granularity"] == "second"
        assert row["source"] == "sensor-1"
        assert row["themes"] == ["weather/temperature"]
        assert row["measures"]["temperature"] == 25.5
        assert row["attributes"]["station"] == "station-1"

    def test_order_is_load_order(self, make_tuple):
        warehouse = EventWarehouse()
        for i in range(5):
            warehouse.load(make_tuple(i, time=float(i)))
        ids = [row["fact_id"] for row in warehouse.iter_rows()]
        assert ids == [0, 1, 2, 3, 4]


class TestCsvExport:
    def test_csv_round_trip(self, make_tuple, tmp_path):
        warehouse = EventWarehouse()
        warehouse.load(make_tuple(0, temperature=25.5, station="umeda"))
        warehouse.load(make_tuple(1, temperature=19.0, station="namba"))
        path = tmp_path / "facts.csv"
        count = warehouse.to_csv(str(path))
        assert count == 2
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["m_temperature"] == "25.5"
        assert rows[0]["a_station"] == "umeda"
        assert rows[0]["themes"] == "weather/temperature"

    def test_ragged_measures_padded(self, make_tuple, tmp_path):
        warehouse = EventWarehouse()
        warehouse.load(make_tuple(0))
        warehouse.load(make_tuple(1).with_updates(extra_measure=7.0))
        path = tmp_path / "facts.csv"
        warehouse.to_csv(str(path))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["m_extra_measure"] == ""
        assert rows[1]["m_extra_measure"] == "7.0"

    def test_empty_warehouse(self, tmp_path):
        warehouse = EventWarehouse()
        path = tmp_path / "facts.csv"
        assert warehouse.to_csv(str(path)) == 0
