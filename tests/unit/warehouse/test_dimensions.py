"""Unit tests for warehouse dimensions."""

import pytest

from repro.errors import WarehouseError
from repro.stt.spatial import Point
from repro.stt.thematic import Theme
from repro.warehouse.dimensions import (
    SourceDimension,
    SpaceDimension,
    ThemeDimension,
    TimeDimension,
)


class TestTimeDimension:
    def test_same_granule_same_key(self):
        dim = TimeDimension()
        assert dim.key_for(3700.0, "hour") == dim.key_for(3900.0, "hour")

    def test_different_granules_differ(self):
        dim = TimeDimension()
        assert dim.key_for(3700.0, "hour") != dim.key_for(7300.0, "hour")

    def test_granularity_levels_distinct(self):
        dim = TimeDimension()
        assert dim.key_for(3700.0, "hour") != dim.key_for(3700.0, "day")

    def test_member_round_trip(self):
        dim = TimeDimension()
        key = dim.key_for(3700.0, "hour")
        member = dim.member(key)
        assert member.granularity == "hour"
        assert member.start == 3600.0

    def test_unknown_key_raises(self):
        with pytest.raises(WarehouseError):
            TimeDimension().member(99)


class TestSpaceDimension:
    def test_same_cell_same_key(self):
        dim = SpaceDimension()
        a = dim.key_for(Point(34.69, 135.50), "city")
        b = dim.key_for(Point(34.70, 135.51), "city")
        assert a == b

    def test_point_granularity_interned_at_block(self):
        dim = SpaceDimension()
        key = dim.key_for(Point(34.69, 135.50), "point")
        assert dim.member(key).granularity == "block"

    def test_cell_reconstruction(self):
        dim = SpaceDimension()
        key = dim.key_for(Point(34.69, 135.50), "city")
        cell = dim.cell(key)
        assert cell.bounds().contains(Point(34.69, 135.50))


class TestThemeDimension:
    def test_interning(self):
        dim = ThemeDimension()
        a = dim.key_for("weather/rain")
        b = dim.key_for(Theme("weather/rain"))
        assert a == b
        assert dim.member(a) == "weather/rain"

    def test_keys_matching_hierarchy(self):
        dim = ThemeDimension()
        rain = dim.key_for("weather/rain")
        temp = dim.key_for("weather/temperature")
        traffic = dim.key_for("mobility/traffic")
        matched = dim.keys_matching("weather")
        assert matched == {rain, temp}


class TestSourceDimension:
    def test_unknown_source_label(self):
        dim = SourceDimension()
        key = dim.key_for("")
        assert dim.member(key) == "(unknown)"

    def test_len(self):
        dim = SourceDimension()
        dim.key_for("a")
        dim.key_for("b")
        dim.key_for("a")
        assert len(dim) == 2
