"""Unit tests for the warehouse loader."""

from repro.warehouse.loader import EventWarehouse


class TestLoad:
    def test_measures_and_attributes_split(self, make_tuple):
        warehouse = EventWarehouse()
        fact = warehouse.load(make_tuple(0, temperature=25.5, station="umeda"))
        assert fact.measures == {"temperature": 25.5, "humidity": 0.6}
        assert fact.attributes == {"station": "umeda"}
        assert len(warehouse) == 1

    def test_value_attribute_projection(self, make_tuple):
        warehouse = EventWarehouse()
        fact = warehouse.load(make_tuple(0, temperature=25.5),
                              value_attribute="temperature")
        assert fact.measures == {"temperature": 25.5}
        assert "humidity" in fact.attributes

    def test_missing_value_attribute_rejected(self, make_tuple):
        warehouse = EventWarehouse()
        assert warehouse.load(make_tuple(0), value_attribute="ghost") is None
        assert warehouse.rejected == 1
        assert len(warehouse) == 0

    def test_bool_is_attribute_not_measure(self, make_tuple):
        warehouse = EventWarehouse()
        tuple_ = make_tuple(0).with_updates(cancelled=True)
        fact = warehouse.load(tuple_)
        assert "cancelled" in fact.attributes
        assert "cancelled" not in fact.measures

    def test_empty_payload_rejected(self, make_tuple):
        warehouse = EventWarehouse()
        empty = make_tuple(0).with_payload({})
        assert warehouse.load(empty) is None
        assert warehouse.rejected == 1

    def test_none_values_skipped(self, make_tuple):
        warehouse = EventWarehouse()
        tuple_ = make_tuple(0).with_updates(extra=None)
        fact = warehouse.load(tuple_)
        assert "extra" not in fact.measures
        assert "extra" not in fact.attributes

    def test_dimensions_shared_across_facts(self, make_tuple):
        warehouse = EventWarehouse()
        a = warehouse.load(make_tuple(0, time=10.0))
        b = warehouse.load(make_tuple(1, time=20.0))
        assert a.time_key != b.time_key  # different seconds
        # Same source and location intern to the same keys.
        assert a.source_key == b.source_key
        assert a.space_key == b.space_key

    def test_fact_ids_dense(self, make_tuple):
        warehouse = EventWarehouse()
        facts = [warehouse.load(make_tuple(i, time=float(i))) for i in range(5)]
        assert [fact.fact_id for fact in facts] == [0, 1, 2, 3, 4]

    def test_event_time_preserved_unaligned(self, make_tuple):
        warehouse = EventWarehouse()
        fact = warehouse.load(make_tuple(0, time=3725.5))
        assert fact.event_time == 3725.5
