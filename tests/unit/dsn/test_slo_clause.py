"""Unit tests for the ``slo`` clause (render, parse, check, CLI syntax)."""

import pytest

from repro.cli import DEFAULT_SLO_EXPRS, parse_slo_expr
from repro.dsn.ast import (
    DsnChannel,
    DsnProgram,
    DsnService,
    DsnSlo,
    ServiceRole,
)
from repro.dsn.parse import parse_dsn
from repro.errors import DsnError, DsnParseError, StreamLoaderError
from repro.network.qos import QosPolicy


def slo_program() -> DsnProgram:
    program = DsnProgram(name="p")
    program.services.append(
        DsnService(role=ServiceRole.SOURCE, name="src", kind="sensor-stream",
                   params={"filter": {"sensor_type": "rain"}, "active": True})
    )
    program.services.append(
        DsnService(role=ServiceRole.SINK, name="k", kind="collector",
                   params={"config": {}}, qos=QosPolicy())
    )
    program.channels.append(DsnChannel("src", "k", 0))
    return program


class TestRender:
    def test_slo_free_program_renders_historical_form(self):
        # Golden stability: without rules, no slo line appears at all.
        assert "slo" not in slo_program().render()

    def test_slo_clause_renders(self):
        program = slo_program()
        program.slos.append(
            DsnSlo(flow="p", metric="p99_latency", op="<", threshold=5.0,
                   window=60.0)
        )
        assert '  slo "p" p99_latency < 5 over 60;\n' in program.render()

    def test_slo_renders_after_channels(self):
        program = slo_program()
        program.slos.append(
            DsnSlo(flow="p", metric="watermark_lag", op="<", threshold=900.0)
        )
        text = program.render()
        assert text.index("slo ") > text.index('channel "src" -> "k"')


class TestParse:
    def test_round_trip(self):
        program = slo_program()
        program.slos.append(
            DsnSlo(flow="p", metric="p99_latency", op="<=", threshold=5.0,
                   window=60.0)
        )
        program.slos.append(
            DsnSlo(flow="p", metric="watermark_lag", op="<", threshold=900.0)
        )
        assert parse_dsn(program.render()) == program

    def test_parse_extracts_fields(self):
        lines = slo_program().render().splitlines()
        lines.insert(-1, '  slo "p" saturation >= 0.5 over 0;')
        parsed = parse_dsn("\n".join(lines) + "\n")
        assert parsed.slos == [
            DsnSlo(flow="p", metric="saturation", op=">=", threshold=0.5,
                   window=0.0)
        ]

    def test_malformed_slo_line_rejected(self):
        lines = slo_program().render().splitlines()
        lines.insert(-1, '  slo "p" p99_latency ~ 5 over 60;')
        with pytest.raises(DsnParseError):
            parse_dsn("\n".join(lines) + "\n")


class TestCheck:
    def test_bad_comparator_rejected(self):
        program = slo_program()
        program.slos.append(
            DsnSlo(flow="p", metric="p99_latency", op="!=", threshold=5.0)
        )
        with pytest.raises(DsnError):
            program.check()

    def test_negative_window_rejected(self):
        program = slo_program()
        program.slos.append(
            DsnSlo(flow="p", metric="p99_latency", op="<", threshold=5.0,
                   window=-60.0)
        )
        with pytest.raises(DsnError):
            program.check()


class TestCliExpressions:
    def test_parse_simple_expression(self):
        slo = parse_slo_expr("watermark_lag < 900", flow="f")
        assert slo == DsnSlo(flow="f", metric="watermark_lag", op="<",
                             threshold=900.0)

    def test_parse_windowed_expression(self):
        slo = parse_slo_expr("p99_latency <= 5.0 over 60", flow="f")
        assert slo.window == 60.0
        assert slo.op == "<="

    def test_garbage_rejected(self):
        with pytest.raises(StreamLoaderError):
            parse_slo_expr("p99_latency is fine", flow="f")

    def test_defaults_parse(self):
        for expr in DEFAULT_SLO_EXPRS:
            assert parse_slo_expr(expr, flow="f").flow == "f"
