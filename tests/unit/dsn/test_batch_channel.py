"""Unit tests: channel ``batch`` hints — AST, parse, derivation, apply."""

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.dsn.ast import DsnChannel
from repro.dsn.generate import dataflow_to_dsn
from repro.dsn.parse import parse_dsn
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.executor import Executor
from repro.scenario import apply_batch_hints
from repro.sensors.base import SimulatedSensor
from tests.unit.dsn.test_ast import small_program
from tests.unit.pubsub.test_registry import make_metadata


class TestChannelSyntax:
    def test_default_batch_renders_unchanged(self):
        channel = DsnChannel("a", "b", 0)
        assert "batch" not in channel.render()

    def test_batch_renders_and_round_trips(self):
        program = small_program()
        program.channels[0] = DsnChannel("src", "f", 0, batch=16)
        text = program.render()
        assert 'channel "src" -> "f" port 0 batch 16;' in text
        parsed = parse_dsn(text)
        assert parsed.channels[0].batch == 16
        assert parsed.channels[1].batch == 1
        assert parsed.render() == text

    def test_batch_free_program_text_is_stable(self):
        # Golden files predate batching; an all-default program must
        # render byte-identically to the historical form.
        program = small_program()
        assert parse_dsn(program.render()).render() == program.render()


def _temperature_flow() -> Dataflow:
    flow = Dataflow("hints")
    source = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temp"
    )
    keep = flow.add_operator(FilterSpec("v > 0"), node_id="keep")
    sink = flow.add_sink("collector", node_id="out")
    flow.connect(source, keep)
    flow.connect(keep, sink)
    return flow


def _registry_with(frequencies: "list[float]"):
    network = BrokerNetwork()
    for index, frequency in enumerate(frequencies):
        network.publish(make_metadata(f"t{index}", "temperature",
                                      frequency=frequency,
                                      node_id="edge-0"))
    return network.registry


class TestHintDerivation:
    def test_hint_is_rate_times_delay(self):
        # Two 2 Hz sensors on the filter: 4 tuples/s x 4 s budget = 16.
        program = dataflow_to_dsn(_temperature_flow(),
                                  _registry_with([2.0, 2.0]),
                                  batch_delay=4.0)
        assert program.channels[0].batch == 16
        # Operator-to-operator channels carry no hint.
        assert program.channels[1].batch == 1

    def test_hint_clamped_to_max_batch(self):
        program = dataflow_to_dsn(_temperature_flow(),
                                  _registry_with([100.0]),
                                  batch_delay=10.0, max_batch=32)
        assert program.channels[0].batch == 32

    def test_slow_sensor_never_hints_below_one(self):
        program = dataflow_to_dsn(_temperature_flow(),
                                  _registry_with([1.0 / 3600.0]),
                                  batch_delay=1.0)
        assert program.channels[0].batch == 1

    def test_no_delay_no_hints(self):
        program = dataflow_to_dsn(_temperature_flow(),
                                  _registry_with([2.0]))
        assert all(channel.batch == 1 for channel in program.channels)


class TestApplyBatchHints:
    def test_deploy_records_and_apply_configures(self):
        topology = Topology()
        topology.add_node("edge-0")
        netsim = NetworkSimulator(topology=topology)
        network = BrokerNetwork(netsim=netsim)
        executor = Executor(netsim, network)

        fleet = [
            SimulatedSensor(
                make_metadata(f"t{i}", "temperature", frequency=2.0,
                              node_id="edge-0"),
                generator=lambda now, rng: {"v": now},
            )
            for i in range(2)
        ]
        for sensor in fleet:
            sensor.attach(network, netsim.clock)

        program = dataflow_to_dsn(_temperature_flow(), network.registry,
                                  batch_delay=2.0)
        deployment = executor.deploy(program)
        assert deployment.batch_hints == {"temp": 8}

        configured = apply_batch_hints(deployment, fleet, max_delay=2.0)
        assert configured == 2
        for sensor in fleet:
            assert sensor.batching.max_batch == 8
            assert sensor.batching.max_delay == 2.0

        # The configured sensors now move fewer, larger messages.
        netsim.clock.run_until(8.5)
        assert network.data_tuples_sent > 0
        assert network.data_messages_sent < network.data_tuples_sent
