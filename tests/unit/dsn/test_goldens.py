"""Golden tests for DSN translation.

Each test translates a representative conceptual dataflow — the shipped
Osaka canvas plus three walkthrough-style flows — to its DSN program text
and compares it byte-for-byte against a snapshot under ``goldens/``.  Any
translator change that alters the emitted program shows up as a readable
diff here.

To accept an intentional change::

    pytest tests/unit/dsn/test_goldens.py --update-goldens
"""

import json
import pathlib

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import (
    AggregationSpec,
    FilterSpec,
    JoinSpec,
    TransformSpec,
    TriggerOnSpec,
    VirtualPropertySpec,
)
from repro.dataflow.serialize import dataflow_from_dict
from repro.dsn.generate import dataflow_to_dsn
from repro.dsn.parse import parse_dsn
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.subscription import SubscriptionFilter
from repro.sensors.osaka import osaka_fleet

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
CANVAS = pathlib.Path(__file__).parents[3] / "examples" / "canvases" \
    / "osaka-scenario.json"


@pytest.fixture(scope="module")
def registry():
    net = BrokerNetwork()
    for sensor in osaka_fleet(Topology.star(leaf_count=3), extended=True):
        net.publish(sensor.metadata)
    return net.registry


def osaka_canvas_flow() -> Dataflow:
    return dataflow_from_dict(json.loads(CANVAS.read_text()))


def p1_apparent_temperature_flow() -> Dataflow:
    """The P1 walkthrough design: join, virtual property, filter, window."""
    flow = Dataflow("p1-apparent-temperature")
    temp = flow.add_source(
        SubscriptionFilter(sensor_ids=("osaka-temp-umeda",)), node_id="temp"
    )
    hum = flow.add_source(
        SubscriptionFilter(sensor_ids=("osaka-humidity-umeda",)), node_id="hum"
    )
    join = flow.add_operator(
        JoinSpec(interval=120.0, predicate="true",
                 left_prefix="t", right_prefix="h"),
        node_id="combine",
    )
    apparent = flow.add_operator(
        VirtualPropertySpec(
            "apparent_temperature",
            "temperature + 0.33 * humidity * 10.0 - 4.0",
        ),
        node_id="apparent",
    )
    hot = flow.add_operator(
        FilterSpec("apparent_temperature > 27"), node_id="hot"
    )
    hourly = flow.add_operator(
        AggregationSpec(interval=3600.0, attributes=("apparent_temperature",),
                        function="MAX"),
        node_id="hourly-max",
    )
    out = flow.add_sink("collector", node_id="out")
    flow.connect(temp, join, port=0)
    flow.connect(hum, join, port=1)
    flow.connect(join, apparent)
    flow.connect(apparent, hot)
    flow.connect(hot, hourly)
    flow.connect(hourly, out)
    return flow


def p2_torrential_rain_flow() -> Dataflow:
    """The P2 walkthrough design: trigger-gated acquisition + warehouse."""
    flow = Dataflow("p2-torrential-rain")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temp"
    )
    rain = flow.add_source(
        SubscriptionFilter(sensor_type="rain"), node_id="rain",
        initially_active=False,
    )
    trigger = flow.add_operator(
        TriggerOnSpec(interval=300.0, window=3600.0,
                      condition="avg_temperature > 25",
                      targets=("osaka-rain-umeda", "osaka-rain-namba")),
        node_id="hot-hour",
    )
    torrential = flow.add_operator(
        FilterSpec("rain_rate > 10"), node_id="torrential"
    )
    warehouse = flow.add_sink("warehouse", node_id="dw")
    flow.connect(temp, trigger)
    flow.connect(rain, torrential)
    flow.connect(torrential, warehouse)
    flow.connect_control(trigger, rain)
    return flow


def p3_fahrenheit_feed_flow() -> Dataflow:
    """The P3 walkthrough design: plug-and-play source into a unit
    transform feeding the visualization."""
    flow = Dataflow("p3-fahrenheit-feed")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temp"
    )
    to_f = flow.add_operator(
        TransformSpec(
            {"temperature": "convert(temperature, 'celsius', 'fahrenheit')"}
        ),
        node_id="to-fahrenheit",
    )
    sticker = flow.add_sink("visualization", node_id="sticker")
    flow.connect(temp, to_f)
    flow.connect(to_f, sticker)
    return flow


def p5_sharded_stations_flow() -> Dataflow:
    """PR-5 scale-out design: an equi-join and a grouped aggregation,
    both split into key-hashed shard replicas via the ``shard`` clause."""
    flow = Dataflow("p5-sharded-stations")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temp"
    )
    hum = flow.add_source(
        SubscriptionFilter(sensor_type="humidity"), node_id="hum"
    )
    combine = flow.add_operator(
        JoinSpec(interval=120.0, predicate="left.station == right.station"),
        node_id="combine",
    )
    averages = flow.add_operator(
        AggregationSpec(interval=600.0, attributes=("temperature",),
                        function="AVG", group_by="station"),
        node_id="station-avg",
    )
    joined = flow.add_sink("collector", node_id="joined")
    out = flow.add_sink("collector", node_id="out")
    flow.connect(temp, combine, port=0)
    flow.connect(hum, combine, port=1)
    flow.connect(combine, joined)
    flow.connect(temp, averages)
    flow.connect(averages, out)
    return flow


def p6_elastic_stations_flow() -> Dataflow:
    """PR-6 elastic design: a grouped aggregation sharded with the
    ``elastic`` clause, attaching the load-feedback rebalance loop."""
    flow = Dataflow("p6-elastic-stations")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temp"
    )
    averages = flow.add_operator(
        AggregationSpec(interval=600.0, attributes=("temperature",),
                        function="AVG", group_by="station"),
        node_id="station-avg",
    )
    out = flow.add_sink("collector", node_id="out")
    flow.connect(temp, averages)
    flow.connect(averages, out)
    return flow


def p7_fused_pipeline_flow() -> Dataflow:
    """PR-7 fusion design: a 4-op non-blocking chain pinned into one
    process via the ``fuse`` clause."""
    flow = Dataflow("p7-fused-pipeline")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temp"
    )
    hot = flow.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    to_f = flow.add_operator(
        TransformSpec(
            {"temperature": "convert(temperature, 'celsius', 'fahrenheit')"}
        ),
        node_id="to-fahrenheit",
    )
    apparent = flow.add_operator(
        VirtualPropertySpec("heat_flag", "temperature > 86"),
        node_id="apparent",
    )
    out = flow.add_sink("collector", node_id="out")
    flow.connect(temp, hot)
    flow.connect(hot, to_f)
    flow.connect(to_f, apparent)
    flow.connect(apparent, out)
    return flow


FLOWS = {
    "osaka-scenario": osaka_canvas_flow,
    "p1-apparent-temperature": p1_apparent_temperature_flow,
    "p2-torrential-rain": p2_torrential_rain_flow,
    "p3-fahrenheit-feed": p3_fahrenheit_feed_flow,
    "p5-sharded-stations": p5_sharded_stations_flow,
    "p6-elastic-stations": p6_elastic_stations_flow,
    "p7-fused-pipeline": p7_fused_pipeline_flow,
}

#: shard directives passed to the translator per golden flow; flows not
#: listed translate shard-free (their goldens keep the historical form).
SHARDS = {
    "p5-sharded-stations": {"combine": 2, "station-avg": 4},
    "p6-elastic-stations": {"station-avg": 4},
}

#: golden flows translated with ``elastic=True`` (shard clauses carry the
#: trailing ``elastic`` keyword).
ELASTIC = {"p6-elastic-stations"}

#: golden flows translated with ``fuse=True`` (the planner's chains are
#: pinned into explicit ``fuse`` clauses).
FUSED = {"p7-fused-pipeline"}


@pytest.mark.parametrize("name", sorted(FLOWS))
class TestDsnGoldens:
    def test_translation_matches_golden(self, name, registry, update_goldens):
        text = dataflow_to_dsn(
            FLOWS[name](), registry, shards=SHARDS.get(name),
            elastic=name in ELASTIC, fuse=name in FUSED,
        ).render()
        path = GOLDEN_DIR / f"{name}.dsn"
        if update_goldens:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(text)
            return
        assert path.exists(), (
            f"missing golden {path.name}; generate it with "
            f"pytest {__file__} --update-goldens"
        )
        assert text == path.read_text()

    def test_golden_parses_back_to_same_program(self, name, registry,
                                                update_goldens):
        if update_goldens:
            pytest.skip("goldens being rewritten")
        text = (GOLDEN_DIR / f"{name}.dsn").read_text()
        assert parse_dsn(text).render() == text
