"""Unit tests for DSN -> dataflow reverse translation."""

import pytest

from repro.dsn.generate import dataflow_to_dsn, dsn_to_dataflow
from repro.dsn.parse import parse_dsn
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.sensors.osaka import osaka_fleet
from tests.unit.dsn.test_generate import scenario_flow


@pytest.fixture
def registry():
    net = BrokerNetwork()
    for sensor in osaka_fleet(Topology.star(leaf_count=2)):
        net.publish(sensor.metadata)
    return net.registry


class TestReverseTranslation:
    def test_full_round_trip(self, registry):
        program = dataflow_to_dsn(scenario_flow(), registry)
        flow = dsn_to_dataflow(program)
        again = dataflow_to_dsn(flow, registry)
        assert again.render() == program.render()

    def test_round_trip_through_text(self, registry):
        text = dataflow_to_dsn(scenario_flow(), registry).render()
        flow = dsn_to_dataflow(parse_dsn(text))
        assert dataflow_to_dsn(flow, registry).render() == text

    def test_structure_reconstructed(self, registry):
        program = dataflow_to_dsn(scenario_flow(), registry)
        flow = dsn_to_dataflow(program)
        assert set(flow.sources) == {"temp", "rain"}
        assert set(flow.operators) == {"trig", "torrential"}
        assert set(flow.sinks) == {"dw"}
        assert len(flow.control_edges) == 1
        assert not flow.sources["rain"].initially_active
        assert flow.sources["temp"].initially_active

    def test_reconstructed_flow_is_deployable(self, registry):
        from repro.scenario import build_stack

        stack = build_stack()
        program = dataflow_to_dsn(scenario_flow(), stack.broker_network.registry)
        flow = dsn_to_dataflow(program)
        deployment = stack.executor.deploy(flow)
        stack.run_until(3600.0)
        assert deployment.process("trig").operator.stats.tuples_in > 0

    def test_invalid_program_rejected(self):
        from repro.dsn.ast import DsnChannel, DsnProgram, DsnService, ServiceRole
        from repro.errors import DsnError

        program = DsnProgram(name="broken")
        program.services.append(
            DsnService(role=ServiceRole.SOURCE, name="s", params={})
        )
        program.channels.append(DsnChannel("s", "ghost", 0))
        with pytest.raises(DsnError):
            dsn_to_dataflow(program)
