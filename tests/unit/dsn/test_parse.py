"""Unit tests for the DSN parser."""

import pytest

from repro.dsn.ast import ServiceRole
from repro.dsn.parse import parse_dsn
from repro.errors import DsnParseError
from tests.unit.dsn.test_ast import small_program


class TestRoundTrip:
    def test_parse_of_render_is_identity(self):
        program = small_program()
        parsed = parse_dsn(program.render())
        assert parsed.render() == program.render()

    def test_parsed_fields(self):
        parsed = parse_dsn(small_program().render())
        assert parsed.name == "p"
        assert parsed.service("src").role is ServiceRole.SOURCE
        assert parsed.service("src").params["filter"] == {"sensor_type": "rain"}
        assert parsed.service("f").params["condition"] == "rain_rate > 10"
        assert parsed.service("k").qos is not None

    def test_comments_and_blank_lines_ignored(self):
        text = small_program().render()
        commented = "# generated\n\n" + text.replace(
            'dsn "p" {', 'dsn "p" {\n  # services below'
        )
        assert parse_dsn(commented).render() == text


class TestErrors:
    def test_empty_document(self):
        with pytest.raises(DsnParseError, match="empty"):
            parse_dsn("")

    def test_missing_header(self):
        with pytest.raises(DsnParseError, match="header"):
            parse_dsn('service source "x" {\n}\n')

    def test_missing_closing_brace(self):
        with pytest.raises(DsnParseError, match="closing brace"):
            parse_dsn('dsn "p" {\n')

    def test_unterminated_service(self):
        with pytest.raises(DsnParseError, match="unterminated"):
            parse_dsn('dsn "p" {\n  service source "x" {\n')

    def test_invalid_json_param(self):
        text = (
            'dsn "p" {\n'
            '  service operator "f" kind "filter" {\n'
            "    param condition = {broken json;\n"
            "  }\n"
            "}\n"
        )
        with pytest.raises(DsnParseError, match="JSON"):
            parse_dsn(text)

    def test_unknown_statement(self):
        text = 'dsn "p" {\n  teleport "a" -> "b";\n}\n'
        with pytest.raises(DsnParseError, match="unexpected statement"):
            parse_dsn(text)

    def test_line_number_reported(self):
        text = 'dsn "p" {\n  nonsense;\n}\n'
        with pytest.raises(DsnParseError, match="line 2"):
            parse_dsn(text)

    def test_content_after_close(self):
        text = small_program().render() + 'control "f" -> "src";\n'
        with pytest.raises(DsnParseError, match="after closing"):
            parse_dsn(text)

    def test_undeclared_endpoint_caught_by_check(self):
        text = (
            'dsn "p" {\n'
            '  service source "a" {\n  }\n'
            '  channel "a" -> "ghost" port 0;\n'
            "}\n"
        )
        from repro.errors import DsnError

        with pytest.raises(DsnError):
            parse_dsn(text)


class TestShardClause:
    def _program_text(self, shard_line: str) -> str:
        return (
            'dsn "p" {\n'
            '  service operator "agg" kind "aggregation" {\n  }\n'
            '  service source "s" {\n  }\n'
            '  channel "s" -> "agg" port 0;\n'
            f"  {shard_line}\n"
            "}\n"
        )

    def test_plain_shard_not_elastic(self):
        parsed = parse_dsn(self._program_text('shard "agg" 4 by "station";'))
        (shard,) = parsed.shards
        assert shard.count == 4
        assert shard.keys == ("station",)
        assert shard.elastic is False

    def test_elastic_shard_parsed(self):
        parsed = parse_dsn(
            self._program_text('shard "agg" 4 by "station" elastic;')
        )
        (shard,) = parsed.shards
        assert shard.elastic is True

    def test_elastic_round_trips(self):
        text = self._program_text('shard "agg" 8 by "station", "hour" elastic;')
        rendered = parse_dsn(text).render()
        assert 'shard "agg" 8 by "station", "hour" elastic;' in rendered
        assert parse_dsn(rendered).render() == rendered

    def test_misplaced_elastic_rejected(self):
        with pytest.raises(DsnParseError, match="unexpected statement"):
            parse_dsn(self._program_text('shard "agg" 4 elastic by "station";'))


class TestValueEdgeCases:
    def test_string_with_semicolons_and_braces(self):
        text = (
            'dsn "p" {\n'
            '  service operator "f" kind "filter" {\n'
            '    param condition = "contains(text, \'a;b}c\')";\n'
            "  }\n"
            '  service source "s" {\n  }\n'
            '  channel "s" -> "f" port 0;\n'
            "}\n"
        )
        parsed = parse_dsn(text)
        assert parsed.service("f").params["condition"] == "contains(text, 'a;b}c')"

    def test_nested_json_values(self):
        text = (
            'dsn "p" {\n'
            '  service source "s" {\n'
            '    param filter = {"area": [34.5, 135.3, 34.9, 135.7], '
            '"sensor_ids": ["a", "b"]};\n'
            "  }\n"
            "}\n"
        )
        parsed = parse_dsn(text)
        assert parsed.service("s").params["filter"]["sensor_ids"] == ["a", "b"]
