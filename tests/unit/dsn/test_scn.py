"""Unit tests for the SCN controller: discovery, placement, migration."""

import pytest

from repro.dsn.ast import DsnChannel, DsnProgram, DsnService, ServiceRole
from repro.dsn.scn import PlacementDecision, ScnController
from repro.errors import PlacementError, ScnError
from repro.network.qos import QosPolicy
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.sensors.physical import rain_sensor, temperature_sensor
from repro.stt.spatial import Point

SITE = Point(34.69, 135.50)


@pytest.fixture
def topo() -> Topology:
    return Topology.line(3, latency=0.01)


@pytest.fixture
def registry(topo):
    net = BrokerNetwork()
    net.publish(temperature_sensor("t1", SITE, "node-0").metadata)
    net.publish(rain_sensor("r1", SITE, "node-2").metadata)
    return net.registry


def make_program() -> DsnProgram:
    program = DsnProgram(name="p")
    program.services.append(
        DsnService(role=ServiceRole.SOURCE, name="src",
                   params={"filter": {"sensor_ids": ["t1"]}, "active": True})
    )
    program.services.append(
        DsnService(role=ServiceRole.OPERATOR, name="f", kind="filter",
                   params={"condition": "temperature > 0"})
    )
    program.services.append(
        DsnService(role=ServiceRole.SINK, name="k", kind="collector",
                   params={"config": {}}, qos=QosPolicy())
    )
    program.channels.append(DsnChannel("src", "f", 0))
    program.channels.append(DsnChannel("f", "k", 0))
    return program


class TestDiscovery:
    def test_resolves_sensors(self, topo, registry):
        scn = ScnController(topo)
        bindings = scn.discover(make_program(), registry)
        assert [m.sensor_id for m in bindings["src"]] == ["t1"]

    def test_no_match_raises(self, topo, registry):
        scn = ScnController(topo)
        program = make_program()
        program.services[0] = DsnService(
            role=ServiceRole.SOURCE, name="src",
            params={"filter": {"sensor_ids": ["ghost"]}},
        )
        with pytest.raises(ScnError, match="discovery failed"):
            scn.discover(program, registry)


class TestPlacement:
    def test_operators_placed_near_data(self, topo, registry):
        scn = ScnController(topo)
        program = make_program()
        bindings = scn.discover(program, registry)
        placements = scn.place(program, bindings)
        # Sensor t1 is on node-0; filter should land there (distance wins).
        assert placements["f"].node_id == "node-0"

    def test_source_pinned_to_sensor_node(self, topo, registry):
        scn = ScnController(topo)
        program = make_program()
        bindings = scn.discover(program, registry)
        placements = scn.place(program, bindings)
        assert placements["src"].node_id == "node-0"

    def test_load_pushes_placement_away(self, topo, registry):
        # Saturate node-0: placement must prefer a neighbour despite distance.
        topo.node("node-0").register_process("hog", demand=950.0)
        scn = ScnController(topo, distance_weight=1.0)
        program = make_program()
        bindings = scn.discover(program, registry)
        placements = scn.place(program, bindings, demands={"f": 100.0})
        assert placements["f"].node_id != "node-0"

    def test_dead_nodes_not_candidates(self, topo, registry):
        topo.node("node-0").fail()
        scn = ScnController(topo)
        program = make_program()
        bindings = scn.discover(program, registry)
        placements = scn.place(program, bindings)
        assert placements["f"].node_id != "node-0"

    def test_no_live_nodes_raises(self, topo, registry):
        for node in topo.nodes:
            node.fail()
        scn = ScnController(topo)
        program = make_program()
        with pytest.raises(PlacementError):
            scn.place(program, {"src": list(registry.all())[:1]})

    def test_cyclic_channels_raise(self, topo, registry):
        program = make_program()
        program.channels.append(DsnChannel("k", "src", 0))
        scn = ScnController(topo)
        with pytest.raises(ScnError, match="cyclic"):
            scn.place(program, {})


class TestQosAdmission:
    def test_within_budget_passes(self, topo, registry):
        scn = ScnController(topo)
        program = make_program()
        bindings = scn.discover(program, registry)
        placements = scn.place(program, bindings)
        scn.admit_qos(program, placements)

    def test_over_budget_rejected(self, topo, registry):
        scn = ScnController(topo)
        program = make_program()
        program.services[2] = DsnService(
            role=ServiceRole.SINK, name="k", kind="collector",
            params={"config": {}},
            qos=QosPolicy(qos_class="real-time", max_latency=1e-9),
        )
        bindings = scn.discover(program, registry)
        placements = dict(scn.place(program, bindings))
        # Force the sink far from the filter so the route is non-trivial.
        placements["k"] = PlacementDecision("k", "node-2", 0.0, "forced")
        placements["f"] = PlacementDecision("f", "node-0", 0.0, "forced")
        with pytest.raises(ScnError, match="QoS admission failed"):
            scn.admit_qos(program, placements)


class TestMigration:
    def test_overload_triggers_move(self, topo):
        scn = ScnController(topo, overload_threshold=0.8)
        node = topo.node("node-0")
        node.register_process("p:heavy", demand=900.0)
        placements = {
            "p:heavy": PlacementDecision("p:heavy", "node-0", 0.0, "live"),
        }
        moves = scn.suggest_migrations(placements, {"p:heavy": 900.0})
        assert len(moves) == 1
        assert moves[0].from_node == "node-0"
        assert moves[0].to_node in ("node-1", "node-2")
        assert "utilization" in moves[0].reason

    def test_no_move_below_threshold(self, topo):
        scn = ScnController(topo, overload_threshold=0.8)
        topo.node("node-0").register_process("p:light", demand=100.0)
        placements = {"p:light": PlacementDecision("p:light", "node-0", 0.0, "")}
        assert scn.suggest_migrations(placements, {"p:light": 100.0}) == []

    def test_pinned_services_never_move(self, topo):
        scn = ScnController(topo, overload_threshold=0.5)
        topo.node("node-0").register_process("p:src", demand=900.0)
        placements = {"p:src": PlacementDecision("p:src", "node-0", 0.0, "")}
        moves = scn.suggest_migrations(placements, {"p:src": 900.0},
                                       pinned={"p:src"})
        assert moves == []

    def test_no_move_when_nowhere_has_room(self, topo):
        scn = ScnController(topo, overload_threshold=0.8)
        for node in topo.nodes:
            node.register_process(f"bg-{node.node_id}", demand=950.0)
        placements = {
            "bg-node-0": PlacementDecision("bg-node-0", "node-0", 0.0, ""),
        }
        moves = scn.suggest_migrations(placements, {"bg-node-0": 950.0})
        assert moves == []

    def test_migration_history_recorded(self, topo):
        scn = ScnController(topo, overload_threshold=0.5)
        topo.node("node-0").register_process("p:x", demand=900.0)
        placements = {"p:x": PlacementDecision("p:x", "node-0", 0.0, "")}
        scn.suggest_migrations(placements, {"p:x": 900.0})
        assert len(scn.migrations) == 1


class TestPlaceShards:
    """Shard placement: spread-first, pack fallback, hard failure modes."""

    def test_spreads_over_distinct_nodes(self, topo):
        scn = ScnController(topo)
        decisions = scn.place_shards("agg", 3, ["node-0"], demand=1.0)
        assert [d.service for d in decisions] == ["agg#0", "agg#1", "agg#2"]
        nodes = [d.node_id for d in decisions]
        assert len(set(nodes)) == 3

    def test_packs_when_shards_exceed_nodes(self, topo):
        scn = ScnController(topo)
        decisions = scn.place_shards("agg", 5, ["node-0"], demand=1.0)
        assert len(decisions) == 5
        # All three nodes are used before any node takes a second shard.
        assert len(set(d.node_id for d in decisions[:3])) == 3

    def test_avoid_excludes_nodes(self, topo):
        scn = ScnController(topo)
        decisions = scn.place_shards(
            "agg", 2, ["node-0"], demand=1.0, avoid={"node-1"}
        )
        assert all(d.node_id != "node-1" for d in decisions)

    def test_no_live_nodes_raises(self, topo):
        scn = ScnController(topo)
        for node in topo.nodes:
            node.fail()
        with pytest.raises(PlacementError, match="no live nodes"):
            scn.place_shards("agg", 2, [], demand=1.0)

    def test_avoiding_everything_raises(self, topo):
        scn = ScnController(topo)
        with pytest.raises(PlacementError, match="no live nodes"):
            scn.place_shards(
                "agg", 1, [], demand=1.0,
                avoid={"node-0", "node-1", "node-2"},
            )

    def test_capacity_exhausted_names_the_shard(self):
        # Each node absorbs one 600-unit shard (capacity 1000); the
        # fourth shard finds every candidate full, even via packing.
        topo = Topology.line(3)
        scn = ScnController(topo)
        with pytest.raises(PlacementError,
                           match=r"capacity exhausted placing shard 3"):
            scn.place_shards("agg", 4, ["node-0"], demand=600.0)

    def test_projected_load_counts_against_capacity(self):
        topo = Topology.line(2)
        scn = ScnController(topo)
        with pytest.raises(PlacementError, match="capacity exhausted"):
            scn.place_shards(
                "agg", 1, [], demand=600.0,
                projected={"node-0": 500.0, "node-1": 500.0},
            )

    def test_dead_nodes_never_chosen(self, topo):
        scn = ScnController(topo)
        topo.node("node-2").fail()
        decisions = scn.place_shards("agg", 4, ["node-0"], demand=1.0)
        assert all(d.node_id != "node-2" for d in decisions)
