"""Unit tests for the ``fuse`` clause (render, parse, check)."""

import pytest

from repro.dsn.ast import (
    DsnChannel,
    DsnFuse,
    DsnProgram,
    DsnService,
    ServiceRole,
)
from repro.dsn.parse import parse_dsn
from repro.errors import DsnError, DsnParseError
from repro.network.qos import QosPolicy


def fusible_program() -> DsnProgram:
    """src -> f -> g -> k with a fusible operator pair."""
    program = DsnProgram(name="p")
    program.services.append(
        DsnService(role=ServiceRole.SOURCE, name="src", kind="sensor-stream",
                   params={"filter": {"sensor_type": "rain"}, "active": True})
    )
    program.services.append(
        DsnService(role=ServiceRole.OPERATOR, name="f", kind="filter",
                   params={"condition": "rain_rate > 10"})
    )
    program.services.append(
        DsnService(role=ServiceRole.OPERATOR, name="g", kind="transform",
                   params={"assignments": {"x": "rain_rate * 2"}})
    )
    program.services.append(
        DsnService(role=ServiceRole.SINK, name="k", kind="collector",
                   params={"config": {}}, qos=QosPolicy())
    )
    program.channels.append(DsnChannel("src", "f", 0))
    program.channels.append(DsnChannel("f", "g", 0))
    program.channels.append(DsnChannel("g", "k", 0))
    return program


class TestRender:
    def test_fuse_free_program_renders_historical_form(self):
        # Golden stability: without hints, no fuse line appears at all.
        assert "fuse" not in fusible_program().render()

    def test_fuse_clause_renders_chain(self):
        program = fusible_program()
        program.fuses.append(DsnFuse(members=("f", "g")))
        assert '  fuse "f" -> "g";\n' in program.render()

    def test_fuse_renders_after_channels(self):
        program = fusible_program()
        program.fuses.append(DsnFuse(members=("f", "g")))
        text = program.render()
        assert text.index("fuse ") > text.index('channel "g" -> "k"')


class TestParse:
    def test_round_trip(self):
        program = fusible_program()
        program.fuses.append(DsnFuse(members=("f", "g")))
        parsed = parse_dsn(program.render())
        assert parsed.fuses == [DsnFuse(members=("f", "g"))]
        assert parsed == program

    def test_long_chain_round_trip(self):
        program = fusible_program()
        program.services.append(
            DsnService(role=ServiceRole.OPERATOR, name="h", kind="validate",
                       params={"condition": "x >= 0"})
        )
        program.channels.append(DsnChannel("g", "h", 0))
        program.fuses.append(DsnFuse(members=("f", "g", "h")))
        parsed = parse_dsn(program.render())
        assert parsed.fuses[0].members == ("f", "g", "h")

    def test_single_member_fuse_is_a_parse_error(self):
        text = fusible_program().render().replace(
            "}", '  fuse "f";\n}', 1
        )
        # The closing brace of the first service block is the first "}";
        # the injected statement is malformed wherever it lands.
        with pytest.raises(DsnParseError):
            parse_dsn(text)


class TestCheck:
    def test_undeclared_member_rejected(self):
        program = fusible_program()
        program.fuses.append(DsnFuse(members=("f", "ghost")))
        with pytest.raises(DsnError, match="undeclared"):
            program.check()

    def test_non_operator_member_rejected(self):
        program = fusible_program()
        program.fuses.append(DsnFuse(members=("f", "k")))
        with pytest.raises(DsnError, match="not an operator"):
            program.check()

    def test_short_chain_rejected(self):
        program = fusible_program()
        program.fuses.append(DsnFuse(members=("f",)))
        with pytest.raises(DsnError, match="at least 2"):
            program.check()

    def test_overlapping_hints_rejected(self):
        program = fusible_program()
        program.fuses.append(DsnFuse(members=("f", "g")))
        program.fuses.append(DsnFuse(members=("g", "f")))
        with pytest.raises(DsnError, match="more than one"):
            program.check()


class TestGenerate:
    def test_translator_emits_no_hints_by_default(self):
        from repro.dataflow.graph import Dataflow
        from repro.dataflow.ops import FilterSpec, TransformSpec
        from repro.dsn.generate import dataflow_to_dsn
        from repro.pubsub.subscription import SubscriptionFilter

        flow = Dataflow("flow")
        flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                              node_id="src")
        flow.add_operator(FilterSpec(condition="temperature > 24"),
                          node_id="f")
        flow.add_operator(
            TransformSpec(assignments={"x": "temperature * 2"}), node_id="g"
        )
        flow.add_sink(sink_kind="collector", node_id="k")
        flow.connect("src", "f")
        flow.connect("f", "g")
        flow.connect("g", "k")

        plain = dataflow_to_dsn(flow, validate=False)
        assert plain.fuses == []

        pinned = dataflow_to_dsn(flow, validate=False, fuse=True)
        assert [hint.members for hint in pinned.fuses] == [("f", "g")]
        # And the pinned program round-trips through the parser.
        assert parse_dsn(pinned.render()) == pinned
