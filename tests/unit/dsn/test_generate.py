"""Unit tests for the dataflow -> DSN translator."""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec, TriggerOnSpec
from repro.dsn.ast import ServiceRole
from repro.dsn.generate import dataflow_to_dsn
from repro.dsn.parse import parse_dsn
from repro.errors import ValidationError
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.subscription import SubscriptionFilter
from repro.sensors.osaka import osaka_fleet


@pytest.fixture
def registry():
    net = BrokerNetwork()
    for sensor in osaka_fleet(Topology.star(leaf_count=2)):
        net.publish(sensor.metadata)
    return net.registry


def scenario_flow():
    flow = Dataflow("scenario")
    temp = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                           node_id="temp")
    rain = flow.add_source(SubscriptionFilter(sensor_type="rain"),
                           node_id="rain", initially_active=False)
    trig = flow.add_operator(
        TriggerOnSpec(interval=300.0, window=3600.0,
                      condition="avg_temperature > 25",
                      targets=("osaka-rain-umeda",)),
        node_id="trig",
    )
    filt = flow.add_operator(FilterSpec("rain_rate > 10"), node_id="torrential")
    sink = flow.add_sink("warehouse", node_id="dw")
    flow.connect(temp, trig)
    flow.connect(rain, filt)
    flow.connect(filt, sink)
    flow.connect_control(trig, rain)
    return flow


class TestTranslation:
    def test_every_node_becomes_a_service(self, registry):
        program = dataflow_to_dsn(scenario_flow(), registry)
        assert {s.name for s in program.services} == {
            "temp", "rain", "trig", "torrential", "dw",
        }

    def test_roles_and_kinds(self, registry):
        program = dataflow_to_dsn(scenario_flow(), registry)
        assert program.service("temp").role is ServiceRole.SOURCE
        assert program.service("trig").kind == "trigger-on"
        assert program.service("dw").role is ServiceRole.SINK
        assert program.service("dw").kind == "warehouse"

    def test_edges_become_channels_and_controls(self, registry):
        program = dataflow_to_dsn(scenario_flow(), registry)
        assert len(program.channels) == 3
        assert len(program.controls) == 1
        assert program.controls[0].trigger == "trig"

    def test_initial_activation_in_params(self, registry):
        program = dataflow_to_dsn(scenario_flow(), registry)
        assert program.service("temp").params["active"] is True
        assert program.service("rain").params["active"] is False

    def test_operator_params_embedded(self, registry):
        program = dataflow_to_dsn(scenario_flow(), registry)
        trig = program.service("trig")
        assert trig.params["condition"] == "avg_temperature > 25"
        assert trig.params["window"] == 3600.0

    def test_full_text_round_trip(self, registry):
        program = dataflow_to_dsn(scenario_flow(), registry)
        assert parse_dsn(program.render()).render() == program.render()


class TestSoundnessGate:
    def test_invalid_flow_refused(self, registry):
        flow = Dataflow("broken")
        src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                              node_id="s")
        bad = flow.add_operator(FilterSpec("ghost > 1"), node_id="bad")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, bad)
        flow.connect(bad, sink)
        with pytest.raises(ValidationError):
            dataflow_to_dsn(flow, registry)

    def test_skip_validation_for_prevalidated(self, registry):
        flow = scenario_flow()
        from repro.dataflow.validate import validate_dataflow

        validate_dataflow(flow, registry).raise_if_invalid()
        program = dataflow_to_dsn(flow, registry, validate=False)
        assert program.name == "scenario"
