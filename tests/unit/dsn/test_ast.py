"""Unit tests for the DSN program model."""

import pytest

from repro.dsn.ast import (
    DsnChannel,
    DsnControl,
    DsnProgram,
    DsnService,
    DsnShard,
    ServiceRole,
)
from repro.errors import DsnError
from repro.network.qos import QosPolicy


def small_program() -> DsnProgram:
    program = DsnProgram(name="p")
    program.services.append(
        DsnService(role=ServiceRole.SOURCE, name="src", kind="sensor-stream",
                   params={"filter": {"sensor_type": "rain"}, "active": True})
    )
    program.services.append(
        DsnService(role=ServiceRole.OPERATOR, name="f", kind="filter",
                   params={"condition": "rain_rate > 10"})
    )
    program.services.append(
        DsnService(role=ServiceRole.SINK, name="k", kind="collector",
                   params={"config": {}}, qos=QosPolicy())
    )
    program.channels.append(DsnChannel("src", "f", 0))
    program.channels.append(DsnChannel("f", "k", 0))
    return program


class TestModel:
    def test_service_lookup(self):
        program = small_program()
        assert program.service("f").kind == "filter"
        with pytest.raises(DsnError):
            program.service("ghost")

    def test_services_by_role(self):
        program = small_program()
        assert [s.name for s in program.services_by_role(ServiceRole.SOURCE)] \
            == ["src"]

    def test_channels_into_sorted_by_port(self):
        program = DsnProgram(name="p")
        for name in ("a", "b", "j"):
            program.services.append(
                DsnService(role=ServiceRole.OPERATOR, name=name, kind="filter")
            )
        program.channels.append(DsnChannel("b", "j", 1))
        program.channels.append(DsnChannel("a", "j", 0))
        assert [c.port for c in program.channels_into("j")] == [0, 1]

    def test_role_parse(self):
        assert ServiceRole.parse("operator") is ServiceRole.OPERATOR
        with pytest.raises(DsnError):
            ServiceRole.parse("widget")


class TestCheck:
    def test_valid_program_passes(self):
        small_program().check()

    def test_duplicate_services_fail(self):
        program = small_program()
        program.services.append(
            DsnService(role=ServiceRole.OPERATOR, name="f", kind="filter")
        )
        with pytest.raises(DsnError, match="duplicate"):
            program.check()

    def test_dangling_channel_fails(self):
        program = small_program()
        program.channels.append(DsnChannel("ghost", "f", 0))
        with pytest.raises(DsnError, match="undeclared"):
            program.check()

    def test_dangling_control_fails(self):
        program = small_program()
        program.controls.append(DsnControl("ghost", "src"))
        with pytest.raises(DsnError, match="undeclared"):
            program.check()


class TestRender:
    def test_render_contains_all_statements(self):
        text = small_program().render()
        assert 'dsn "p" {' in text
        assert 'service source "src" kind "sensor-stream"' in text
        assert 'param condition = "rain_rate > 10";' in text
        assert 'channel "src" -> "f" port 0;' in text
        assert text.rstrip().endswith("}")

    def test_render_is_deterministic(self):
        assert small_program().render() == small_program().render()

    def test_params_sorted(self):
        service = DsnService(role=ServiceRole.OPERATOR, name="x", kind="k",
                             params={"zeta": 1, "alpha": 2})
        text = service.render()
        assert text.index("alpha") < text.index("zeta")

    def test_qos_rendered(self):
        service = DsnService(
            role=ServiceRole.SINK, name="k", kind="warehouse",
            qos=QosPolicy(qos_class="real-time", segment_bytes=512,
                          priority=1, max_latency=0.25),
        )
        text = service.render()
        assert 'qos class "real-time" segment 512 priority 1 max_latency 0.25;' in text

    def test_shard_rendered(self):
        program = small_program()
        program.shards.append(
            DsnShard(service="f", count=4, keys=("station",))
        )
        assert 'shard "f" 4 by "station";' in program.render()

    def test_elastic_shard_rendered(self):
        program = small_program()
        program.shards.append(
            DsnShard(service="f", count=4, keys=("station",), elastic=True)
        )
        assert 'shard "f" 4 by "station" elastic;' in program.render()
