"""Unit tests for the tracer: sampling, span trees, eviction, control."""

import pytest

from repro.errors import StreamLoaderError
from repro.obs.render import (
    format_duration,
    render_trace,
    render_trace_tree,
    slowest_sink_traces,
    trace_for_tuple,
)
from repro.obs.trace import CONTROL_TRACE_ID, Tracer


class TestSampling:
    def test_sampling_one_records_every_trace(self):
        tracer = Tracer(sampling=1.0)
        contexts = [tracer.start_trace("publish", float(i)) for i in range(10)]
        assert all(ctx is not None for ctx in contexts)
        assert tracer.traces_started == 10

    def test_sampling_zero_records_nothing(self):
        tracer = Tracer(sampling=0.0)
        assert not tracer.enabled
        assert tracer.start_trace("publish", 0.0) is None
        assert tracer.traces_started == 0

    def test_error_diffusion_is_exact_for_quarter_rate(self):
        tracer = Tracer(sampling=0.25)
        sampled = [
            tracer.start_trace("publish", float(i)) is not None
            for i in range(12)
        ]
        # Every 4th publication exactly, deterministically.
        assert sampled == [False, False, False, True] * 3

    def test_sampling_out_of_range_rejected(self):
        with pytest.raises(StreamLoaderError):
            Tracer(sampling=1.5)
        with pytest.raises(StreamLoaderError):
            Tracer(sampling=-0.1)


class TestSpans:
    def test_child_context_links_to_parent_span(self):
        tracer = Tracer()
        ctx = tracer.start_trace("publish", 0.0, source="s")
        span = tracer.span(ctx, "transmit", 0.0, 1.5)
        child = ctx.child_of(span)
        assert child.trace_id == ctx.trace_id
        assert child.span_id == span.span_id
        leaf = tracer.span(child, "sink", 1.5)
        spans = tracer.trace(ctx.trace_id)
        assert [s.name for s in spans] == ["publish", "transmit", "sink"]
        assert spans[0].parent_id is None
        assert spans[1].parent_id == spans[0].span_id
        assert leaf.parent_id == span.span_id

    def test_span_default_end_is_instantaneous(self):
        tracer = Tracer()
        ctx = tracer.start_trace("publish", 3.0)
        span = tracer.span(ctx, "evaluate", 7.0)
        assert span.duration == 0.0

    def test_duration_spans_the_whole_trace(self):
        tracer = Tracer()
        ctx = tracer.start_trace("publish", 10.0)
        tracer.span(ctx, "transmit", 10.0, 12.5)
        assert tracer.duration(ctx.trace_id) == pytest.approx(2.5)

    def test_find_by_name_and_attrs(self):
        tracer = Tracer()
        ctx = tracer.start_trace("publish", 0.0, source="a")
        tracer.span(ctx, "transmit", 0.0, to="n1")
        tracer.span(ctx, "transmit", 0.0, to="n2")
        assert len(tracer.find("transmit")) == 2
        assert len(tracer.find("transmit", to="n1")) == 1
        assert len(tracer.find(source="a")) == 1


class TestEviction:
    def test_fifo_eviction_beyond_cap(self):
        tracer = Tracer(max_traces=3)
        contexts = [tracer.start_trace("publish", 0.0) for _ in range(5)]
        assert tracer.traces_dropped == 2
        assert tracer.trace(contexts[0].trace_id) == []
        assert tracer.trace(contexts[-1].trace_id) != []
        assert len(tracer.trace_ids()) == 3

    def test_span_into_evicted_trace_is_dropped_quietly(self):
        tracer = Tracer(max_traces=1)
        old = tracer.start_trace("publish", 0.0)
        tracer.start_trace("publish", 1.0)  # evicts `old`
        tracer.span(old, "transmit", 1.0)   # must not raise or resurrect
        assert tracer.trace(old.trace_id) == []


class TestControlEvents:
    def test_events_live_in_the_control_trace(self):
        tracer = Tracer()
        tracer.event("placement", 5.0, service="f", node="n0")
        events = tracer.control_events()
        assert len(events) == 1
        assert events[0].trace_id == CONTROL_TRACE_ID
        assert events[0].attrs["node"] == "n0"
        assert tracer.trace_ids() == []  # control trace is not a data trace

    def test_events_bypass_sampling(self):
        tracer = Tracer(sampling=0.0)
        tracer.event("placement", 1.0)
        assert len(tracer.control_events()) == 1

    def test_bound_clock_supplies_event_time(self):
        class FakeClock:
            now = 42.0

        tracer = Tracer()
        tracer.bind_clock(FakeClock())
        assert tracer.event("reassignment").start == 42.0


class TestRendering:
    def _traced(self):
        tracer = Tracer()
        ctx = tracer.start_trace(
            "publish", 0.0, source="rain-1", node="e0", tuple="rain-1#3"
        )
        span = tracer.span(
            ctx, "transmit", 0.0, 1.2, **{"from": "e0", "to": "hub"}
        )
        child = ctx.child_of(span)
        s2 = tracer.span(
            child, "evaluate", 1.2, node="hub", operator="filter",
            process="p", tuple="rain-1#3",
        )
        tracer.span(
            child.child_of(s2), "sink", 1.2, node="hub",
            operator="collector", process="q", tuple="rain-1#3",
        )
        return tracer, ctx

    def test_tree_shows_every_hop_with_durations(self):
        tracer, ctx = self._traced()
        tree = render_trace_tree(tracer.trace(ctx.trace_id))
        lines = tree.splitlines()
        assert lines[0].startswith("publish rain-1")
        assert "└─ transmit e0 -> hub (1.20s)" in lines[1]
        assert "evaluate filter on hub" in lines[2]
        assert "sink collector on hub" in lines[3]
        # Depth increases along the path.
        assert lines[2].index("evaluate") > lines[1].index("transmit")

    def test_render_trace_resolves_lineage(self):
        from repro.obs.lineage import LineageStore

        tracer, ctx = self._traced()
        out = render_trace(tracer, ctx.trace_id, lineage=LineageStore())
        assert "rain-1#3 -> sink" in out
        assert "lineage: rain-1#3" in out

    def test_slowest_and_tuple_lookup(self):
        tracer = Tracer()
        fast = tracer.start_trace("publish", 0.0, tuple="a#1")
        tracer.span(fast, "transmit", 0.0, 0.1)
        tracer.span(fast, "sink", 0.1, tuple="a#1")
        slow = tracer.start_trace("publish", 0.0, tuple="b#1")
        tracer.span(slow, "transmit", 0.0, 9.0)
        tracer.span(slow, "sink", 9.0, tuple="b#1")
        sourced = tracer.start_trace("publish", 0.0, tuple="c#1")
        tracer.span(sourced, "transmit", 0.0, 99.0)  # never reaches a sink
        assert slowest_sink_traces(tracer, 2) == [
            slow.trace_id, fast.trace_id,
        ]
        assert trace_for_tuple(tracer, "b#1") == slow.trace_id
        assert trace_for_tuple(tracer, "nope#0") is None

    def test_format_duration_adapts_units(self):
        assert format_duration(2.5) == "2.50s"
        assert format_duration(0.00403) == "4.03ms"
