"""Unit tests for the lineage store and the blocking operators' records."""

from repro.obs.lineage import LineageStore, tuple_key
from repro.streams.aggregate import AggregationOperator
from repro.streams.join import JoinOperator
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point


def make_tuple(source: str, seq: int, **payload) -> SensorTuple:
    return SensorTuple(
        payload=payload or {"temperature": 20.0},
        stamp=SttStamp(time=float(seq), location=Point(34.7, 135.5)),
        source=source,
        seq=seq,
    )


class TestLineageStore:
    def test_explain_resolves_transitively(self):
        store = LineageStore()
        a, b = make_tuple("s", 1), make_tuple("s", 2)
        mid = make_tuple("agg", 0)
        out = make_tuple("join", 0)
        store.record(mid, [a, b], "agg", 60.0)
        store.record(out, [mid, make_tuple("t", 9)], "join", 120.0)
        assert store.explain(tuple_key(out)) == ["s#1", "s#2", "t#9"]

    def test_unrecorded_key_is_its_own_source(self):
        assert LineageStore().explain("rain-1#4") == ["rain-1#4"]

    def test_inputs_only_direct_contributors(self):
        store = LineageStore()
        out = make_tuple("agg", 0)
        store.record(out, [make_tuple("s", 1)], "agg", 60.0)
        assert store.inputs(tuple_key(out)) == ("s#1",)
        assert store.inputs("s#1") is None

    def test_diamond_lineage_deduplicates(self):
        store = LineageStore()
        shared = make_tuple("s", 1)
        left = make_tuple("aggL", 0)
        right = make_tuple("aggR", 0)
        top = make_tuple("join", 0)
        store.record(left, [shared], "aggL", 60.0)
        store.record(right, [shared], "aggR", 60.0)
        store.record(top, [left, right], "join", 120.0)
        assert store.explain(tuple_key(top)) == ["s#1"]

    def test_fifo_eviction_is_bounded(self):
        store = LineageStore(max_records=2)
        outs = [make_tuple("agg", i) for i in range(4)]
        for i, out in enumerate(outs):
            store.record(out, [make_tuple("s", i)], "agg", 0.0)
        assert len(store) == 2
        assert store.evicted == 2
        assert store.inputs("agg#0") is None
        assert store.inputs("agg#3") == ("s#3",)


class TestOperatorRecording:
    def test_aggregation_records_window_members(self):
        op = AggregationOperator(
            interval=60.0, attributes=["temperature"], function="AVG",
        )
        store = LineageStore()
        op.lineage = store
        inputs = [make_tuple("temp-1", i, temperature=20.0 + i) for i in range(3)]
        for t in inputs:
            op.on_tuple(t)
        emitted = op.on_timer(60.0)
        assert len(emitted) == 1
        assert store.explain(tuple_key(emitted[0])) == [
            "temp-1#0", "temp-1#1", "temp-1#2",
        ]

    def test_join_records_the_matched_pair(self):
        op = JoinOperator(
            interval=60.0, predicate="left.station == right.station",
        )
        store = LineageStore()
        op.lineage = store
        op.on_tuple(make_tuple("a", 1, station="umeda"), port=0)
        op.on_tuple(make_tuple("b", 7, station="umeda"), port=1)
        emitted = op.on_timer(60.0)
        assert len(emitted) == 1
        assert set(store.inputs(tuple_key(emitted[0]))) == {"a#1", "b#7"}

    def test_without_store_no_recording_happens(self):
        op = AggregationOperator(
            interval=60.0, attributes=["temperature"], function="AVG",
        )
        op.on_tuple(make_tuple("temp-1", 0))
        assert op.on_timer(60.0)  # emits fine with lineage unset
