"""Unit tests for the latency/watermark/backpressure plane."""

import pytest

from repro.obs import Observability
from repro.obs.latency import LatencyPlane, ProcessProbe
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def plane() -> LatencyPlane:
    return LatencyPlane(MetricsRegistry())


class TestProcessProbe:
    def test_non_blocking_commits_max_stamp(self, plane):
        probe = plane.register_process("f", blocking=False, sink=False)
        probe.note(10.0, 8.0)
        probe.note(11.0, 6.0)  # out-of-order stamp must not regress
        assert probe.committed == 8.0
        assert probe.buffered == 0

    def test_blocking_buffers_until_flush(self, plane):
        probe = plane.register_process("agg", blocking=True, sink=False)
        probe.note(10.0, 8.0)
        probe.note(11.0, 9.0)
        assert probe.committed == float("-inf")
        assert probe.buffered == 2
        probe.commit_flush(300.0, [])
        assert probe.committed == 300.0
        assert probe.buffered == 0
        assert probe.per_epoch == 2

    def test_saturation_ratio(self, plane):
        probe = plane.register_process("agg", blocking=True, sink=False)
        assert probe.saturation() == 0.0  # no epoch yet
        for _ in range(4):
            probe.note(1.0, 0.5)
        probe.commit_flush(300.0, [])
        assert probe.saturation() == 0.0  # just flushed
        probe.note(301.0, 300.5)
        probe.note(302.0, 301.5)
        assert probe.saturation() == pytest.approx(0.5)

    def test_non_blocking_saturation_is_zero(self, plane):
        probe = plane.register_process("f", blocking=False, sink=False)
        probe.note(1.0, 0.0)
        assert probe.saturation() == 0.0

    def test_sink_probe_feeds_e2e_histogram(self, plane):
        probe = plane.register_process("out", blocking=False, sink=True)
        probe.note(10.0, 7.5)
        assert plane.e2e.count == 1
        assert plane.e2e.sum == pytest.approx(2.5)

    def test_non_sink_probe_does_not_feed_e2e(self, plane):
        probe = plane.register_process("f", blocking=False, sink=False)
        probe.note(10.0, 7.5)
        assert plane.e2e.count == 0

    def test_note_batch_commits_like_repeated_note(self, plane, make_tuple):
        # Watermark state (running maxima) must be bit-identical to noting
        # every tuple; that is what the alert-determinism property relies
        # on across batch sizes.
        a = plane.register_process("a", blocking=False, sink=False)
        b = plane.register_process("b", blocking=False, sink=False)
        tuples = [make_tuple(i, time=float(i)) for i in range(5)]
        a.note_batch(10.0, tuples)
        for tuple_ in tuples:
            b.note(10.0, tuple_.stamp.time)
        assert a.committed == b.committed == 4.0
        assert a.pending == b.pending == 4.0

    def test_note_batch_amortizes_histogram_observes(self, plane, make_tuple):
        # The batched path records one observe per batch — the batch's
        # *worst* stage latency (oldest stamp) — instead of one per tuple
        # (BENCH_8 measured the per-tuple probe at ~60% receive overhead).
        probe = plane.register_process("a", blocking=False, sink=True)
        tuples = [make_tuple(i, time=float(i)) for i in range(5)]
        probe.note_batch(10.0, tuples)
        assert probe.hist.count == 1
        assert probe.hist.sum == pytest.approx(10.0)  # now - oldest stamp
        assert plane.e2e.count == 1
        assert plane.e2e.sum == pytest.approx(10.0)

    def test_note_batch_buffers_whole_batch_when_blocking(
        self, plane, make_tuple
    ):
        probe = plane.register_process("agg", blocking=True, sink=False)
        probe.note_batch(10.0, [make_tuple(i, time=float(i)) for i in range(5)])
        assert probe.buffered == 5
        assert probe.committed == float("-inf")  # commits only at flush

    def test_note_batch_on_empty_batch_is_a_no_op(self, plane):
        probe = plane.register_process("a", blocking=False, sink=False)
        probe.note_batch(10.0, [])
        assert probe.hist.count == 0
        assert probe.pending == float("-inf")

    def test_flush_histogram_records_emitted_staleness(self, plane, make_tuple):
        probe = plane.register_process("agg", blocking=True, sink=False)
        probe.commit_flush(300.0, [make_tuple(0, time=100.0)])
        assert probe.flush_hist.count == 1
        assert probe.flush_hist.sum == pytest.approx(200.0)


class TestWatermarks:
    def test_cold_process_has_no_watermark(self, plane):
        plane.register_process("f", blocking=False, sink=False)
        assert plane.watermark("f") is None
        assert plane.watermark_lag("f") is None

    def test_watermark_is_min_over_upstream_chain(self, plane):
        up = plane.register_process("up", blocking=False, sink=False)
        down = plane.register_process("down", blocking=False, sink=True)
        plane.set_upstreams("down", ["up"])
        up.note(10.0, 9.0)
        down.note(11.0, 10.5)
        # down has seen 10.5 but up has only released 9.0.
        assert plane.watermark("up") == 9.0
        assert plane.watermark("down") == 9.0

    def test_lag_measured_from_source_high(self, plane):
        probe = plane.register_process("f", blocking=False, sink=False)
        probe.note(10.0, 9.0)
        assert plane.watermark_lag("f") is None  # sources still cold
        plane.note_publish("s", 20.0, 15.0)
        assert plane.watermark_lag("f") == pytest.approx(6.0)
        assert plane.max_watermark_lag() == pytest.approx(6.0)

    def test_lag_clamped_at_zero(self, plane):
        probe = plane.register_process("f", blocking=False, sink=False)
        plane.note_publish("s", 5.0, 4.0)
        probe.note(10.0, 9.0)  # ahead of the recorded source high
        assert plane.watermark_lag("f") == 0.0

    def test_unknown_and_self_upstreams_are_dropped(self, plane):
        probe = plane.register_process("f", blocking=False, sink=False)
        plane.set_upstreams("f", ["f", "ghost"])
        assert probe.upstreams == ()

    def test_memo_shared_across_lookups(self, plane):
        up = plane.register_process("up", blocking=False, sink=False)
        down = plane.register_process("down", blocking=False, sink=False)
        plane.set_upstreams("down", ["up"])
        up.note(10.0, 7.0)
        down.note(11.0, 9.0)
        memo: dict = {}
        assert plane.watermark("down", memo) == 7.0
        assert memo["up"] == 7.0


class TestBackpressureGauges:
    def test_route_inflight_counts_and_clamps(self, plane):
        plane.link_send("a", "b")
        plane.link_send("a", "b")
        plane.link_done("a", "b")
        assert plane._route_inflight[("a", "b")] == 1
        plane.link_done("a", "b")
        plane.link_done("a", "b")  # spurious completion must not go negative
        assert plane._route_inflight[("a", "b")] == 0

    def test_refresh_publishes_gauges(self, plane):
        probe = plane.register_process("agg", blocking=True, sink=False)
        plane.note_publish("s", 10.0, 9.0)
        probe.note(10.0, 9.0)
        probe.commit_flush(300.0, [])
        probe.note(301.0, 300.5)
        plane.link_send("a", "b")
        plane.refresh()
        metrics = plane.metrics
        assert metrics.get("queue_depth", process="agg").value == 1
        assert metrics.get("saturation", process="agg").value == 1.0
        assert metrics.get("watermark_lag_seconds", process="agg") is not None
        assert metrics.get("network_route_inflight", route="a->b").value == 1
        assert metrics.get("source_watermark").value == 9.0


class TestLogicalHealth:
    def test_shard_suffixes_group_to_one_service(self, plane):
        for i in range(2):
            probe = plane.register_process(f"agg#{i}", blocking=True, sink=False)
            probe.note(10.0, 8.0 + i)
            probe.commit_flush(300.0, [])
        merge = plane.register_process("agg#merge", blocking=False, sink=False)
        merge.note(300.0, 299.0)
        plane.note_publish("s", 310.0, 305.0)
        health = plane.logical_health()
        assert list(health) == ["agg"]
        assert health["agg"]["watermark"] == 299.0  # min across the group
        assert health["agg"]["lag"] == pytest.approx(6.0)

    def test_queue_depth_summed_across_shards(self, plane):
        for i in range(3):
            probe = plane.register_process(f"agg#{i}", blocking=True, sink=False)
            probe.note(1.0, 0.5)
        health = plane.logical_health()
        assert health["agg"]["queue_depth"] == 3

    def test_cold_member_makes_group_cold(self, plane):
        hot = plane.register_process("agg#0", blocking=False, sink=False)
        plane.register_process("agg#1", blocking=False, sink=False)
        hot.note(10.0, 9.0)
        assert plane.logical_health()["agg"]["watermark"] is None


class TestObservabilityBundle:
    def test_plane_absent_by_default(self):
        obs = Observability(sampling=0.0)
        assert obs.latency is None

    def test_ensure_latency_is_idempotent(self):
        obs = Observability(sampling=0.0)
        plane = obs.ensure_latency()
        assert obs.ensure_latency() is plane
        assert isinstance(plane, LatencyPlane)

    def test_register_process_is_idempotent(self, plane):
        first = plane.register_process("f", blocking=False, sink=False)
        again = plane.register_process("f", blocking=True, sink=True)
        assert again is first
        assert isinstance(first, ProcessProbe)
