"""Unit tests for the metrics registry and its instruments."""

import json

import pytest

from repro.errors import StreamLoaderError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(StreamLoaderError):
            Counter().inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0


class TestHistogram:
    def test_cumulative_bucket_counts(self):
        h = Histogram(boundaries=(1.0, 5.0, 10.0))
        for v in (0.5, 0.7, 3.0, 7.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 3, 4]  # <=1, <=5, <=10
        assert h.count == 5
        assert h.sum == pytest.approx(111.2)
        assert h.mean == pytest.approx(111.2 / 5)

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram(boundaries=(1.0, 5.0))
        h.observe(1.0)
        assert h.counts == [1, 1]  # le semantics: 1.0 <= 1.0

    def test_quantile_returns_bucket_upper_bound(self):
        h = Histogram(boundaries=(1.0, 5.0, 10.0))
        for v in (0.5, 0.5, 0.5, 7.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 10.0

    def test_quantile_above_last_boundary_is_inf(self):
        h = Histogram(boundaries=(1.0,))
        h.observe(50.0)
        assert h.quantile(1.0) == float("inf")

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(StreamLoaderError):
            Histogram(boundaries=(5.0, 1.0))
        with pytest.raises(StreamLoaderError):
            Histogram(boundaries=(1.0, 1.0))

    def test_quantile_of_empty_histogram_is_zero(self):
        h = Histogram(boundaries=(1.0, 5.0))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.99) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_quantile_extremes(self):
        h = Histogram(boundaries=(1.0, 5.0, 10.0))
        for v in (0.5, 3.0, 7.0):
            h.observe(v)
        # q=0 has rank 0: every cumulative count satisfies >= 0.
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 10.0

    def test_quantile_all_observations_overflow(self):
        h = Histogram(boundaries=(1.0, 5.0))
        for _ in range(3):
            h.observe(100.0)
        assert h.quantile(0.5) == float("inf")
        assert h.quantile(1.0) == float("inf")

    def test_quantile_rejects_out_of_range(self):
        h = Histogram(boundaries=(1.0,))
        with pytest.raises(StreamLoaderError):
            h.quantile(-0.1)
        with pytest.raises(StreamLoaderError):
            h.quantile(1.1)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("tuples_total", node="n0")
        b = reg.counter("tuples_total", node="n0")
        assert a is b
        other = reg.counter("tuples_total", node="n1")
        assert other is not a

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.gauge("util", node="n0", op="f")
        b = reg.gauge("util", op="f", node="n0")
        assert a is b

    def test_kind_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(StreamLoaderError):
            reg.gauge("x")

    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("tuples_total", "tuples seen", node="n0").inc(3)
        reg.gauge("util").set(0.5)
        text = reg.expose()
        assert "# HELP tuples_total tuples seen" in text
        assert "# TYPE tuples_total counter" in text
        assert 'tuples_total{node="n0"} 3' in text
        assert "util 0.5" in text

    def test_exposition_histogram_le_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 5.0), node="n0")
        h.observe(0.5)
        h.observe(90.0)
        text = reg.expose()
        assert 'lat_bucket{le="1",node="n0"} 1' in text
        assert 'lat_bucket{le="5",node="n0"} 1' in text
        assert 'lat_bucket{le="+Inf",node="n0"} 2' in text
        assert 'lat_sum{node="n0"} 90.5' in text
        assert 'lat_count{node="n0"} 2' in text

    def test_label_values_escaped_in_exposition(self):
        """Regression: backslashes, quotes, and newlines inside label
        values must be escaped or the exposition text is unparseable."""
        reg = MetricsRegistry()
        reg.counter("routes_total", route='a"b\\c\nd').inc()
        text = reg.expose()
        assert 'routes_total{route="a\\"b\\\\c\\nd"} 1' in text
        assert "\nd" not in text.replace("\\nd", "")  # no raw newline leaks

    def test_expose_sorted_regardless_of_registration_order(self):
        first = MetricsRegistry()
        first.counter("zz_total", node="n1").inc()
        first.counter("zz_total", node="n0").inc()
        first.gauge("aa_util").set(1.0)
        second = MetricsRegistry()
        second.gauge("aa_util").set(1.0)
        second.counter("zz_total", node="n0").inc()
        second.counter("zz_total", node="n1").inc()
        assert first.expose() == second.expose()
        assert first.to_json() == second.to_json()
        assert list(first.snapshot()) == sorted(first.snapshot())

    def test_values_view(self):
        reg = MetricsRegistry()
        reg.gauge("depth", process="b").set(2.0)
        reg.gauge("depth", process="a").set(1.0)
        reg.histogram("h").observe(0.5)
        assert reg.values("depth") == [
            ({"process": "a"}, 1.0), ({"process": "b"}, 2.0),
        ]
        assert reg.values("h") == []  # histograms have no scalar view
        assert reg.values("missing") == []

    def test_snapshot_roundtrips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c", node="n0").inc()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = json.loads(reg.to_json())
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["series"][0] == {
            "labels": {"node": "n0"}, "value": 1.0,
        }
        assert snap["h"]["series"][0]["count"] == 1
