"""Unit tests for the deterministic alerting engine."""

import pytest

from repro.errors import StreamLoaderError
from repro.network.simclock import SimClock
from repro.obs.alerts import AlertEngine, AlertRule, _HistogramWindow
from repro.obs.latency import LatencyPlane
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture
def metrics() -> MetricsRegistry:
    return MetricsRegistry()


@pytest.fixture
def plane(metrics) -> LatencyPlane:
    return LatencyPlane(metrics)


def make_engine(metrics, plane=None, tracer=None, cadence=60.0):
    engine = AlertEngine(metrics, plane=plane, tracer=tracer, cadence=cadence)
    clock = SimClock()
    engine.start(clock)
    return engine, clock


class TestAlertRule:
    def test_rejects_unknown_comparator(self):
        with pytest.raises(StreamLoaderError):
            AlertRule(name="r", metric="saturation", op="!=", threshold=1.0)

    def test_rejects_negative_window_and_sustain(self):
        with pytest.raises(StreamLoaderError):
            AlertRule(name="r", metric="saturation", op="<", threshold=1.0,
                      window=-1.0)
        with pytest.raises(StreamLoaderError):
            AlertRule(name="r", metric="saturation", op="<", threshold=1.0,
                      sustain=-1.0)

    def test_describe_mentions_window_and_sustain(self):
        rule = AlertRule(name="r", metric="p99_latency", op="<",
                         threshold=5.0, window=60.0, sustain=120.0)
        assert rule.describe() == "p99_latency < 5 over 60s sustained 120s"


class TestEngineLifecycle:
    def test_rejects_nonpositive_cadence(self, metrics):
        with pytest.raises(StreamLoaderError):
            AlertEngine(metrics, cadence=0.0)

    def test_tick_before_start_is_an_error(self, metrics):
        engine = AlertEngine(metrics)
        with pytest.raises(StreamLoaderError):
            engine.tick()

    def test_ticks_offset_half_a_cadence(self, metrics):
        engine = AlertEngine(metrics, cadence=60.0)
        clock = SimClock()
        times = []
        original = engine.tick
        engine.tick = lambda: (times.append(clock.now), original())
        engine.start(clock)
        clock.run_until(100.0)
        assert times == [30.0, 90.0]

    def test_latency_rule_without_plane_is_rejected(self, metrics):
        engine = AlertEngine(metrics)
        with pytest.raises(StreamLoaderError):
            engine.add_rule(AlertRule(name="r", metric="p99_latency",
                                      op="<", threshold=5.0, window=60.0))


class TestThresholdRules:
    def test_gauge_rule_fires_and_resolves(self, metrics):
        gauge = metrics.gauge("queue_depth", process="agg")
        engine, clock = make_engine(metrics)
        engine.add_rule(AlertRule(name="deep", metric="queue_depth",
                                  op="<", threshold=10.0))
        gauge.set(3.0)
        clock.run_until(40.0)  # first tick at t=30
        assert engine.firing() == []
        gauge.set(25.0)
        clock.run_until(100.0)
        assert engine.firing() == ["deep"]
        gauge.set(2.0)
        clock.run_until(160.0)
        assert engine.firing() == []
        assert [(t.event, t.time) for t in engine.history] == [
            ("fire", 90.0), ("resolve", 150.0),
        ]

    def test_vacuous_health_when_metric_absent(self, metrics):
        engine, clock = make_engine(metrics)
        engine.add_rule(AlertRule(name="r", metric="no_such_gauge",
                                  op="<", threshold=1.0))
        clock.run_until(100.0)
        assert engine.firing() == []
        assert engine.last_values() == {"r": None}

    def test_gauge_family_evaluated_at_its_max(self, metrics):
        metrics.gauge("depth", process="a").set(1.0)
        metrics.gauge("depth", process="b").set(50.0)
        engine, clock = make_engine(metrics)
        engine.add_rule(AlertRule(name="r", metric="depth",
                                  op="<", threshold=10.0))
        clock.run_until(40.0)
        assert engine.firing() == ["r"]
        assert engine.last_values()["r"] == 50.0

    def test_firing_gauge_tracks_state(self, metrics):
        gauge = metrics.gauge("depth")
        engine, clock = make_engine(metrics)
        engine.add_rule(AlertRule(name="r", metric="depth",
                                  op="<", threshold=1.0))
        firing_gauge = metrics.get("alerts_firing", rule="r")
        assert firing_gauge.value == 0.0
        gauge.set(5.0)
        clock.run_until(40.0)
        assert firing_gauge.value == 1.0
        counter = metrics.get("alert_transitions_total", rule="r",
                              event="fire")
        assert counter.value == 1.0


class TestSustainedRules:
    def test_transient_breach_is_ignored(self, metrics):
        gauge = metrics.gauge("depth")
        engine, clock = make_engine(metrics)
        engine.add_rule(AlertRule(name="r", metric="depth", op="<",
                                  threshold=1.0, sustain=120.0))
        gauge.set(5.0)
        clock.run_until(100.0)  # breached for one tick (70s < sustain)
        gauge.set(0.0)
        clock.run_until(220.0)
        assert engine.history == []

    def test_persistent_breach_fires_after_sustain(self, metrics):
        gauge = metrics.gauge("depth")
        engine, clock = make_engine(metrics)
        engine.add_rule(AlertRule(name="r", metric="depth", op="<",
                                  threshold=1.0, sustain=120.0))
        gauge.set(5.0)
        clock.run_until(400.0)
        # breach_since=30; fires at the first tick with 120s elapsed: 150.
        assert [(t.event, t.time) for t in engine.history] == [("fire", 150.0)]


class TestWindowedQuantiles:
    def test_window_quantiles_only_recent_observations(self):
        hist = Histogram(boundaries=(1.0, 10.0, 100.0))
        window = _HistogramWindow(hist, window=60.0)
        for _ in range(10):
            hist.observe(50.0)  # a burst of slow tuples
        assert window.quantile(0.0, 0.99) == 100.0
        for _ in range(100):
            hist.observe(0.5)  # recovery
        assert window.quantile(30.0, 0.99) == 100.0  # burst still in window
        for _ in range(100):
            hist.observe(0.5)  # steady fast traffic after the burst
        assert window.quantile(90.0, 0.99) == 1.0  # burst slid out

    def test_empty_window_is_none(self):
        hist = Histogram(boundaries=(1.0,))
        window = _HistogramWindow(hist, window=60.0)
        assert window.quantile(0.0, 0.99) is None
        hist.observe(0.5)
        assert window.quantile(60.0, 0.99) == 1.0
        assert window.quantile(120.0, 0.99) is None  # drained again

    def test_burn_rate_rule_resolves_after_burst_ages_out(self, metrics, plane):
        engine, clock = make_engine(metrics, plane=plane)
        engine.add_rule(AlertRule(name="slo", metric="p99_latency", op="<",
                                  threshold=5.0, window=120.0))
        sink = plane.register_process("out", blocking=False, sink=True)
        for _ in range(20):
            sink.note(10.0, 0.0)  # 10s latencies: way over budget
        clock.run_until(40.0)
        assert engine.firing() == ["slo"]
        clock.run_until(400.0)  # no new slow tuples; window slides past
        assert engine.firing() == []

    def test_unwindowed_quantile_reads_cumulative_histogram(self, metrics, plane):
        engine, clock = make_engine(metrics, plane=plane)
        engine.add_rule(AlertRule(name="slo", metric="p99_latency", op="<",
                                  threshold=5.0))
        clock.run_until(40.0)
        assert engine.firing() == []  # empty histogram: vacuously healthy
        sink = plane.register_process("out", blocking=False, sink=True)
        sink.note(10.0, 0.0)
        clock.run_until(100.0)
        assert engine.firing() == ["slo"]


class TestPlaneMetrics:
    def test_watermark_lag_rule(self, metrics, plane):
        engine, clock = make_engine(metrics, plane=plane)
        engine.add_rule(AlertRule(name="lag", metric="watermark_lag",
                                  op="<", threshold=100.0))
        probe = plane.register_process("f", blocking=False, sink=False)
        plane.note_publish("s", 10.0, 500.0)
        probe.note(10.0, 9.0)
        clock.run_until(40.0)
        assert engine.firing() == ["lag"]
        assert engine.last_values()["lag"] == pytest.approx(491.0)

    def test_saturation_rule(self, metrics, plane):
        engine, clock = make_engine(metrics, plane=plane)
        engine.add_rule(AlertRule(name="sat", metric="saturation",
                                  op="<=", threshold=0.5))
        probe = plane.register_process("agg", blocking=True, sink=False)
        probe.note(1.0, 0.5)
        probe.commit_flush(10.0, [])
        probe.note(11.0, 10.5)  # buffered == last epoch: saturation 1.0
        clock.run_until(40.0)
        assert engine.firing() == ["sat"]


class TestHistoryAndViews:
    def test_tracer_records_transitions_as_events(self, metrics):
        tracer = Tracer(sampling=1.0)
        gauge = metrics.gauge("depth")
        engine, clock = make_engine(metrics, tracer=tracer)
        engine.add_rule(AlertRule(name="r", metric="depth", op="<",
                                  threshold=1.0, scope="flow"))
        gauge.set(5.0)
        clock.run_until(40.0)
        events = [span for span in tracer.control_events()
                  if span.name == "alert-fire"]
        assert len(events) == 1
        assert events[0].attrs["rule"] == "r"
        assert events[0].attrs["scope"] == "flow"

    def test_snapshot_taken_at_tick_not_read_time(self, metrics, plane):
        engine, clock = make_engine(metrics, plane=plane)
        probe = plane.register_process("f", blocking=False, sink=False)
        plane.note_publish("s", 10.0, 10.0)
        probe.note(10.0, 10.0)
        clock.run_until(40.0)
        snapshot = engine.snapshot
        probe.note(50.0, 50.0)  # later progress must not leak in
        assert engine.snapshot is snapshot
        assert snapshot["time"] == 30.0
        assert snapshot["services"]["f"]["watermark"] == 10.0

    def test_health_json_shape(self, metrics):
        gauge = metrics.gauge("depth")
        engine, clock = make_engine(metrics)
        engine.add_rule(AlertRule(name="r", metric="depth", op="<",
                                  threshold=1.0))
        gauge.set(5.0)
        clock.run_until(40.0)
        payload = engine.health_json()
        assert payload["rules"]["r"]["threshold"] == 1.0
        assert payload["history"] == [[30.0, "fire", "r", 5.0]]
        assert payload["snapshot"]["firing"] == ["r"]
