"""Unit tests for the rebalance control loop's pieces in isolation.

The policy is a pure function of load vectors plus two counters, so the
stability guarantees the module docstring makes — hysteresis prevents
oscillation, cooldown bounds action frequency, a persistent step-change
produces exactly one action — are pinned here with synthetic loads, no
simulator required.  The monitor and executor get focused coverage for
their arithmetic (sliding windows, boundary math) on the same terms.
"""

import math

import pytest

from repro.errors import StreamLoaderError
from repro.runtime.rebalance import (
    BOUNDARY_EPSILON,
    RebalanceConfig,
    RebalanceDecision,
    RebalancePolicy,
    ShardLoadMonitor,
)

HOT = ("st-hot",)
WARM = ("st-warm",)

#: hot_keys vector for a donor whose load is mostly one movable key.
KEYS = [(HOT, 60), (WARM, 20)]


def _policy(**overrides) -> RebalancePolicy:
    defaults = dict(imbalance_ratio=1.5, hysteresis=2, cooldown_epochs=4)
    defaults.update(overrides)
    return RebalancePolicy(RebalanceConfig(**defaults))


class TestPolicyHysteresis:
    def test_single_skewed_epoch_never_acts(self):
        policy = _policy(hysteresis=2)
        assert policy.observe([80, 10, 10, 10], KEYS) is None

    def test_persistent_skew_acts_after_hysteresis(self):
        policy = _policy(hysteresis=3)
        decisions = [policy.observe([80, 10, 10, 10], KEYS)
                     for _ in range(3)]
        assert decisions[:2] == [None, None]
        assert decisions[2] is not None
        assert decisions[2].kind == "migrate"

    def test_flickering_skew_never_acts(self):
        """Borderline skew alternating above/below the ratio resets the
        streak every balanced epoch: the loop cannot oscillate."""
        policy = _policy(hysteresis=2)
        skewed, balanced = [80, 10, 10, 10], [25, 25, 25, 25]
        for _ in range(20):
            assert policy.observe(skewed, KEYS) is None
            assert policy.observe(balanced, KEYS) is None

    def test_balanced_loads_reset_streak(self):
        policy = _policy(hysteresis=2)
        assert policy.observe([80, 10, 10, 10], KEYS) is None
        assert policy.observe([25, 25, 25, 25], KEYS) is None
        # Streak restarted: one more skewed epoch is not enough.
        assert policy.observe([80, 10, 10, 10], KEYS) is None


class TestPolicyCooldown:
    def test_cooldown_bounds_action_frequency(self):
        """Over E epochs of permanent skew, at most
        ceil(E / (hysteresis + cooldown)) actions fire."""
        policy = _policy(hysteresis=2, cooldown_epochs=4)
        epochs = 30
        decisions = [policy.observe([80, 10, 10, 10], KEYS)
                     for _ in range(epochs)]
        acted = [d for d in decisions if d is not None]
        assert len(acted) <= math.ceil(epochs / (2 + 4))
        # And the quiet gaps between actions are at least the cooldown.
        acted_at = [i for i, d in enumerate(decisions) if d is not None]
        for earlier, later in zip(acted_at, acted_at[1:]):
            assert later - earlier > 4

    def test_cooldown_ignores_even_extreme_skew(self):
        policy = _policy(hysteresis=1, cooldown_epochs=3)
        assert policy.observe([80, 10, 10, 10], KEYS) is not None
        for _ in range(3):
            assert policy.observe([1000, 0, 0, 0], KEYS) is None


class TestPolicyStepChange:
    def test_step_change_triggers_exactly_one_rebalance(self):
        """Skew appears, the action fixes it, loads go balanced: exactly
        one decision over the whole trace."""
        policy = _policy(hysteresis=2, cooldown_epochs=4)
        trace = [[25, 25, 25, 25]] * 5 + [[80, 10, 10, 10]] * 2 \
            + [[25, 25, 25, 25]] * 20
        decisions = [policy.observe(loads, KEYS) for loads in trace]
        acted = [d for d in decisions if d is not None]
        assert len(acted) == 1
        assert acted[0].kind == "migrate"
        assert acted[0].donor == 0
        assert acted[0].recipient in (1, 2, 3)

    def test_zero_traffic_is_balanced(self):
        policy = _policy(hysteresis=1)
        assert policy.observe([0, 0, 0, 0], KEYS) is None
        assert policy.observe([], KEYS) is None

    def test_single_shard_never_acts(self):
        policy = _policy(hysteresis=1)
        assert policy.observe([100], KEYS) is None


class TestPolicyDecisions:
    def test_movable_key_migrates_to_lightest_shard(self):
        policy = _policy(hysteresis=1)
        decision = policy.observe([80, 30, 10, 20], KEYS)
        assert decision == RebalanceDecision(
            kind="migrate", values=HOT, donor=0, recipient=2,
            reason=decision.reason,
        )

    def test_indivisible_hot_key_splits_when_allowed(self):
        """A key that *is* the donor's load cannot migrate (it would just
        move the hot spot); with splitting enabled it sprays instead."""
        policy = _policy(hysteresis=1, split_hot_keys=True)
        decision = policy.observe([80, 10, 10, 10], [(HOT, 78)],
                                  combine_safe=True)
        assert decision is not None
        assert decision.kind == "split"
        assert decision.values == HOT
        assert decision.replicas == (0, 1, 2, 3)

    def test_split_replicas_capped_by_config_and_count(self):
        policy = _policy(hysteresis=1, split_hot_keys=True, split_replicas=2)
        decision = policy.observe([80, 10, 10, 10], [(HOT, 78)],
                                  combine_safe=True)
        assert decision.replicas == (0, 1)

    def test_unsafe_operator_never_splits(self):
        """Without combine safety (joins) the indivisible key stays put."""
        policy = _policy(hysteresis=1, split_hot_keys=True)
        assert policy.observe([80, 10, 10, 10], [(HOT, 78)],
                              combine_safe=False) is None

    def test_split_requires_the_flag(self):
        policy = _policy(hysteresis=1, split_hot_keys=False)
        assert policy.observe([80, 10, 10, 10], [(HOT, 78)],
                              combine_safe=True) is None

    def test_already_split_keys_are_skipped(self):
        policy = _policy(hysteresis=1, split_hot_keys=True)
        assert policy.observe([80, 10, 10, 10], [(HOT, 78)],
                              combine_safe=True,
                              already_split={HOT}) is None

    def test_no_key_data_no_action(self):
        policy = _policy(hysteresis=1)
        assert policy.observe([80, 10, 10, 10], []) is None


class _Stats:
    def __init__(self):
        self.tuples_in = 0


class _Adapter:
    def __init__(self):
        self.stats = _Stats()
        self.key_loads = {}


class _Member:
    def __init__(self):
        self.operator = _Adapter()


class _Group:
    def __init__(self, count):
        self.members = [_Member() for _ in range(count)]
        self.merge = None


class TestLoadMonitor:
    def test_sample_records_deltas_not_totals(self):
        group = _Group(2)
        monitor = ShardLoadMonitor(group, window_epochs=4)
        group.members[0].operator.stats.tuples_in = 10
        assert monitor.sample() == [10, 0]
        group.members[0].operator.stats.tuples_in = 15
        group.members[1].operator.stats.tuples_in = 7
        assert monitor.sample() == [5, 7]

    def test_window_sums_and_evicts(self):
        group = _Group(1)
        monitor = ShardLoadMonitor(group, window_epochs=2)
        for total in (10, 30, 60):   # deltas 10, 20, 30
            group.members[0].operator.stats.tuples_in = total
            monitor.sample()
        # Window of 2: the first delta (10) has been evicted.
        assert monitor.epoch_loads() == [50]

    def test_imbalance_ratio(self):
        group = _Group(4)
        monitor = ShardLoadMonitor(group, window_epochs=1)
        for member, total in zip(group.members, (80, 10, 10, 10)):
            member.operator.stats.tuples_in = total
        monitor.sample()
        assert monitor.imbalance() == pytest.approx(80 * 4 / 110)

    def test_idle_group_reads_balanced(self):
        monitor = ShardLoadMonitor(_Group(3), window_epochs=2)
        monitor.sample()
        assert monitor.imbalance() == 1.0

    def test_hot_keys_sorted_with_deterministic_ties(self):
        group = _Group(1)
        group.members[0].operator.key_loads = {
            ("b",): 5, ("a",): 5, ("c",): 9,
        }
        monitor = ShardLoadMonitor(group, window_epochs=1)
        assert monitor.hot_keys(0) == [(("c",), 9), (("a",), 5), (("b",), 5)]

    def test_window_must_cover_an_epoch(self):
        with pytest.raises(StreamLoaderError, match="window"):
            ShardLoadMonitor(_Group(1), window_epochs=0)


class TestLagProvider:
    def test_zeros_without_provider(self):
        monitor = ShardLoadMonitor(_Group(3), window_epochs=2)
        assert monitor.shard_lags() == [0.0, 0.0, 0.0]

    def test_provider_values_passed_through(self):
        monitor = ShardLoadMonitor(_Group(2), window_epochs=2,
                                   lag_provider=lambda: [3, 7.5])
        assert monitor.shard_lags() == [3.0, 7.5]

    def test_length_mismatch_is_an_error(self):
        monitor = ShardLoadMonitor(_Group(2), window_epochs=2,
                                   lag_provider=lambda: [1.0])
        with pytest.raises(StreamLoaderError):
            monitor.shard_lags()

    def test_lag_breaks_donor_load_ties(self):
        # The rebalancer's donor pick: max by (load, lag, -index).  With
        # equal loads, the lagging shard must donate; without a provider
        # the lowest index wins (the pre-plane behaviour).
        loads = [50, 50, 10]
        lags = [0.0, 120.0, 0.0]
        donor = max(range(len(loads)), key=lambda i: (loads[i], lags[i], -i))
        assert donor == 1
        no_lags = [0.0, 0.0, 0.0]
        donor = max(range(len(loads)),
                    key=lambda i: (loads[i], no_lags[i], -i))
        assert donor == 0


class TestBoundaryMath:
    """next_boundary() picks the flush instant strictly after now."""

    def _executor(self, interval):
        from repro.network.netsim import NetworkSimulator
        from repro.network.topology import Topology
        from repro.runtime.rebalance import RebalanceExecutor

        netsim = NetworkSimulator(topology=Topology.star(leaf_count=1))
        return RebalanceExecutor(
            _Group(2), None, netsim, "svc", interval,
        )

    def test_mid_epoch_rounds_up(self):
        assert self._executor(60.0).next_boundary(130.0) == 180.0

    def test_exact_boundary_advances_to_the_next(self):
        assert self._executor(60.0).next_boundary(120.0) == 180.0

    def test_epsilon_offset_is_small_but_nonzero(self):
        assert 0 < BOUNDARY_EPSILON < 1e-3
