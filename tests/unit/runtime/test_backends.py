"""Unit tests for the execution-backend seam."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError, StreamLoaderError
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.runtime.backends import (
    AsyncBackend,
    ExecutionBackend,
    SimBackend,
    backend_from_name,
    live_backends,
)
from repro.scenario import build_stack


class TestBackendRegistry:
    def test_names_resolve(self):
        sim = backend_from_name("sim", topology=Topology.star(leaf_count=2))
        assert sim.name == "sim"
        asy = backend_from_name("async", topology=Topology.star(leaf_count=2))
        try:
            assert asy.name == "async"
        finally:
            asy.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(StreamLoaderError, match="unknown backend"):
            backend_from_name("threads")

    def test_transport_is_self_describing(self):
        topo = Topology.star(leaf_count=2)
        assert backend_from_name("sim", topology=topo).transport.backend_name == "sim"
        with AsyncBackend(topology=topo) as asy:
            assert asy.transport.backend_name == "async"


class TestSimBackend:
    def test_wraps_existing_netsim_unchanged(self):
        netsim = NetworkSimulator(topology=Topology.star(leaf_count=2))
        backend = SimBackend(netsim)
        assert backend.transport is netsim
        assert backend.clock is netsim.clock
        assert backend.topology is netsim.topology

    def test_run_until_drives_the_sim_clock(self):
        backend = SimBackend(topology=Topology.star(leaf_count=2))
        fired = []
        backend.clock.schedule(5.0, lambda: fired.append(backend.clock.now))
        backend.run_until(10.0)
        assert fired == [5.0]
        assert backend.clock.now == 10.0

    def test_host_process_is_a_noop(self):
        backend = SimBackend(topology=Topology.star(leaf_count=2))
        backend.host_process(object())  # nothing to do, nothing to raise
        backend.close()  # idempotent no-op
        backend.close()


class TestAsyncBackendLifecycle:
    def test_timers_fire_at_logical_instants(self):
        with AsyncBackend(topology=Topology.star(leaf_count=2)) as backend:
            fired = []
            backend.clock.schedule(5.0, lambda: fired.append(backend.clock.now))
            backend.clock.schedule(1.0, lambda: fired.append(backend.clock.now))
            backend.run_until(10.0)
            assert fired == [1.0, 5.0]
            assert backend.clock.now == 10.0

    def test_clock_run_until_delegates_to_backend(self):
        with AsyncBackend(topology=Topology.star(leaf_count=2)) as backend:
            fired = []
            backend.clock.schedule(1.0, lambda: fired.append(True))
            backend.clock.run_until(2.0)
            assert fired == [True]

    def test_sync_stepping_refused(self):
        with AsyncBackend(topology=Topology.star(leaf_count=2)) as backend:
            with pytest.raises(SimulationError, match="run_until"):
                backend.clock.run()
            with pytest.raises(SimulationError, match="run_until"):
                backend.clock.step()

    def test_running_backwards_refused(self):
        with AsyncBackend(topology=Topology.star(leaf_count=2)) as backend:
            backend.run_until(10.0)
            with pytest.raises(SimulationError, match="backwards"):
                backend.run_until(5.0)

    def test_close_is_idempotent_and_deregisters(self):
        backend = AsyncBackend(topology=Topology.star(leaf_count=2))
        assert backend in live_backends()
        backend.close()
        assert backend.closed
        assert backend not in live_backends()
        backend.close()  # second close is a no-op
        with pytest.raises(SimulationError, match="closed"):
            backend.run_until(1.0)

    def test_wall_clock_exposed(self):
        with AsyncBackend(topology=Topology.star(leaf_count=2)) as backend:
            first = backend.clock.wall_now
            assert first >= 0.0
            assert backend.clock.wall_now >= first

    def test_zero_delay_cascade_guard(self):
        with AsyncBackend(topology=Topology.star(leaf_count=2)) as backend:
            def reschedule():
                backend.clock.schedule(0.0, reschedule)

            backend.clock.schedule(1.0, reschedule)
            with pytest.raises(SimulationError, match="events"):
                backend.run_until(2.0, max_events=1000)


class TestBackendSurfacing:
    def test_monitor_report_names_the_backend(self):
        stack = build_stack(backend="async", attach_fleet=False)
        with stack:
            report = stack.executor.monitor.report()
        assert report["backend"] == "async"
        assert "[async]" in stack.executor.monitor.render_dashboard()

    def test_sim_dashboard_header_unchanged(self):
        stack = build_stack(attach_fleet=False)
        report = stack.executor.monitor.report()
        assert report["backend"] == "sim"
        header = stack.executor.monitor.render_dashboard().splitlines()[0]
        assert header.endswith("==")  # no backend tag on the oracle

    def test_spans_carry_wall_stamps_only_on_async(self):
        for backend, expect_wall in (("sim", False), ("async", True)):
            stack = build_stack(
                backend=backend, attach_fleet=False, observability=True
            )
            with stack:
                tracer = stack.obs.tracer
                ctx = tracer.start_trace("publish", stack.clock.now)
                spans = tracer.trace(ctx.trace_id)
                assert spans
                if expect_wall:
                    assert spans[0].wall is not None
                else:
                    assert spans[0].wall is None

    def test_executor_defaults_to_sim_backend(self):
        stack = build_stack(attach_fleet=False)
        assert isinstance(stack.executor.backend, SimBackend)
        assert isinstance(stack.backend, ExecutionBackend)
        assert stack.executor.backend.transport is stack.netsim
