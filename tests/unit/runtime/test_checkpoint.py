"""Unit tests for operator checkpoint/restore and the process hooks.

The recovery contract is at-most-once: a restored operator re-sees exactly
the tuples captured at snapshot time; whatever it absorbed afterwards is
lost.  These tests pin that bound at the operator level and the periodic
snapshot machinery at the process level.
"""

import pytest

from repro.errors import CheckpointError
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.runtime.process import OperatorProcess
from repro.streams.aggregate import AggregationOperator
from repro.streams.filter import FilterOperator
from repro.streams.join import JoinOperator
from repro.streams.trigger import TriggerOnOperator


@pytest.fixture
def sim() -> NetworkSimulator:
    return NetworkSimulator(topology=Topology.star(leaf_count=2))


class TestOperatorCheckpoint:
    def test_aggregate_restore_rewinds_to_snapshot(self, make_tuple):
        op = AggregationOperator(interval=100.0, attributes=["temperature"],
                                 function="SUM")
        for i in range(3):
            op.on_tuple(make_tuple(i, temperature=10.0))
        state = op.checkpoint()
        for i in range(3, 6):
            op.on_tuple(make_tuple(i, temperature=99.0))
        op.restore(state)
        out = op.on_timer(100.0)
        # The three post-snapshot tuples are gone: the documented bound.
        assert out[0]["sum_temperature"] == pytest.approx(30.0)

    def test_join_restore_repopulates_both_sides(self, make_tuple):
        op = JoinOperator(interval=100.0, predicate="true")
        op.on_tuple(make_tuple(0), port=0)
        op.on_tuple(make_tuple(1), port=1)
        state = op.checkpoint()
        op.on_tuple(make_tuple(2), port=0)
        op.on_tuple(make_tuple(3), port=1)
        op.restore(state)
        assert len(op.on_timer(100.0)) == 1  # 1 left x 1 right

    def test_trigger_restore_keeps_window_and_last_command(self, make_tuple):
        op = TriggerOnOperator(interval=300.0, window=3600.0,
                               condition="avg_temperature > 25",
                               targets=["rain-1"])
        commands = []
        op.control = commands.append
        for i in range(4):
            op.on_tuple(make_tuple(i, temperature=30.0, time=float(i)))
        op.on_timer(10.0)
        assert len(commands) == 1  # activated
        state = op.checkpoint()
        fresh = TriggerOnOperator(interval=300.0, window=3600.0,
                                  condition="avg_temperature > 25",
                                  targets=["rain-1"])
        fresh.control = commands.append
        fresh.restore(state)
        fresh.on_timer(310.0)
        # Condition still true but unchanged: the restored last_command
        # suppresses a duplicate activation.
        assert len(commands) == 1

    def test_checkpoint_round_trips_stats(self, make_tuple):
        op = AggregationOperator(interval=100.0, attributes=["temperature"],
                                 function="AVG")
        op.on_tuple(make_tuple(0))
        state = op.checkpoint()
        op.on_tuple(make_tuple(1))
        op.restore(state)
        assert op.stats.tuples_in == 1

    def test_non_blocking_operator_checkpoints_stats_only(self, make_tuple):
        op = FilterOperator("temperature > -100")
        op.on_tuple(make_tuple(0))
        state = op.checkpoint()
        assert state["stats"]["tuples_in"] == 1
        op.restore(state)

    def test_malformed_checkpoint_rejected(self):
        op = FilterOperator("temperature > 0")
        with pytest.raises(CheckpointError):
            op.restore({"bogus": True})
        with pytest.raises(CheckpointError):
            op.restore("not a dict")


class TestProcessCheckpointing:
    def make_process(self, sim, node="edge-0"):
        op = AggregationOperator(interval=500.0, attributes=["temperature"],
                                 function="SUM")
        return OperatorProcess("agg", op, node, sim)

    def test_periodic_snapshots_on_the_clock(self, sim, make_tuple):
        process = self.make_process(sim)
        process.enable_checkpoints(60.0)
        process.start()
        sim.clock.schedule(30.0, lambda: process.receive(make_tuple(0)))
        sim.clock.run_until(130.0)
        assert process.last_checkpoint is not None
        time, state = process.last_checkpoint
        assert time == 120.0
        assert len(state["cache"]) == 1

    def test_first_snapshot_taken_immediately(self, sim):
        process = self.make_process(sim)
        process.enable_checkpoints(600.0)
        process.start()
        sim.clock.run_until(1.0)
        assert process.last_checkpoint is not None
        assert process.last_checkpoint[0] == 0.0

    def test_no_snapshot_while_node_down(self, sim):
        process = self.make_process(sim)
        process.enable_checkpoints(60.0)
        process.start()
        sim.clock.run_until(1.0)
        first = process.last_checkpoint
        sim.kill_node("edge-0")
        sim.clock.run_until(300.0)
        assert process.last_checkpoint == first  # frozen at death

    def test_restore_returns_false_without_snapshot(self, sim):
        process = self.make_process(sim)
        assert process.restore_last_checkpoint() is False
        assert process.restores == 0

    def test_restore_applies_snapshot_and_counts(self, sim, make_tuple):
        process = self.make_process(sim)
        process.enable_checkpoints(60.0)
        process.start()
        sim.clock.schedule(10.0, lambda: process.receive(make_tuple(0)))
        sim.clock.run_until(70.0)
        sim.clock.schedule(80.0, lambda: process.receive(make_tuple(1)))
        sim.clock.run_until(90.0)
        snapshot_len = len(process.last_checkpoint[1]["cache"])
        assert process.restore_last_checkpoint() is True
        assert process.restores == 1
        assert len(process.operator.cache) == snapshot_len

    def test_stop_cancels_checkpoint_timer(self, sim):
        process = self.make_process(sim)
        process.enable_checkpoints(60.0)
        process.start()
        sim.clock.run_until(1.0)
        process.stop()
        first = process.last_checkpoint
        sim.clock.run_until(600.0)
        assert process.last_checkpoint == first
