"""Unit tests for on-the-fly modification (demo P3)."""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import AggregationSpec, FilterSpec
from repro.errors import LifecycleError, ValidationError
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.lifecycle import replace_operator_live
from repro.scenario import build_stack


@pytest.fixture
def stack():
    return build_stack(hot=True)


@pytest.fixture
def deployment(stack):
    flow = Dataflow("live-edit")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    hot = flow.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    sink = flow.add_sink("collector", node_id="out")
    flow.connect(src, hot)
    flow.connect(hot, sink)
    return stack.executor.deploy(flow)


class TestReplaceOperator:
    def test_swap_changes_behaviour(self, stack, deployment):
        stack.run_until(13 * 3600.0)
        before = len(deployment.collected("out"))
        assert before > 0
        # Tighten the filter to something nothing passes.
        replace_operator_live(deployment, "hot", FilterSpec("temperature > 99"))
        stack.run_until(15 * 3600.0)
        assert len(deployment.collected("out")) == before

    def test_process_keeps_node_and_routes(self, stack, deployment):
        node_before = deployment.process("hot").node_id
        routes_before = list(deployment.process("hot").routes)
        replace_operator_live(deployment, "hot", FilterSpec("temperature > 30"))
        assert deployment.process("hot").node_id == node_before
        assert deployment.process("hot").routes == routes_before

    def test_blocking_replacement_gets_timer(self, stack, deployment):
        replace_operator_live(
            deployment, "hot",
            AggregationSpec(interval=600.0, attributes=("temperature",),
                            function="AVG"),
        )
        stack.run_until(2 * 3600.0)
        collected = deployment.collected("out")
        assert collected
        assert "avg_temperature" in collected[0]

    def test_invalid_replacement_rejected_and_rolled_back(self, stack, deployment):
        with pytest.raises(ValidationError):
            replace_operator_live(deployment, "hot", FilterSpec("ghost > 1"))
        # Original spec still in place and stream still works.
        assert deployment.flow.operators["hot"].spec.condition == "temperature > 24"
        stack.run_until(14 * 3600.0)
        assert deployment.collected("out")

    def test_unknown_service_raises(self, deployment):
        with pytest.raises(LifecycleError):
            replace_operator_live(deployment, "ghost", FilterSpec("true"))

    def test_stopped_deployment_rejects_modification(self, deployment):
        deployment.teardown()
        with pytest.raises(LifecycleError):
            replace_operator_live(deployment, "hot", FilterSpec("true"))

    def test_monitor_logs_replacement(self, stack, deployment):
        replace_operator_live(deployment, "hot", FilterSpec("temperature > 30"))
        assert any(record.event == "operator-replaced"
                   for record in stack.executor.monitor.logs)
