"""Unit tests for operator processes on nodes."""

import pytest

from repro.errors import DeploymentError
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.runtime.process import OperatorProcess
from repro.streams.aggregate import AggregationOperator
from repro.streams.filter import FilterOperator
from repro.streams.sink import ListSink


@pytest.fixture
def sim() -> NetworkSimulator:
    return NetworkSimulator(topology=Topology.line(3))


class TestLifecycle:
    def test_registers_on_node(self, sim):
        process = OperatorProcess("p1", FilterOperator("temperature > 0"),
                                  "node-0", sim)
        assert "p1" in sim.topology.node("node-0").processes

    def test_stop_unregisters(self, sim):
        process = OperatorProcess("p1", FilterOperator("temperature > 0"),
                                  "node-0", sim)
        process.start()
        process.stop()
        assert "p1" not in sim.topology.node("node-0").processes

    def test_double_start_raises(self, sim):
        process = OperatorProcess("p1", FilterOperator("true"), "node-0", sim)
        process.start()
        with pytest.raises(DeploymentError):
            process.start()

    def test_blocking_operator_gets_timer(self, sim, make_tuple):
        agg = AggregationOperator(interval=60.0, attributes=["temperature"],
                                  function="AVG")
        process = OperatorProcess("p1", agg, "node-0", sim)
        sink = OperatorProcess("p2", ListSink(), "node-0", sim)
        process.add_route(sink)
        process.start()
        process.receive(make_tuple(0, temperature=10.0))
        sim.clock.run_until(120.0)
        assert len(sink.operator.received) == 1

    def test_stop_cancels_timer(self, sim, make_tuple):
        agg = AggregationOperator(interval=60.0, attributes=["temperature"],
                                  function="AVG")
        process = OperatorProcess("p1", agg, "node-0", sim)
        sink = OperatorProcess("p2", ListSink(), "node-0", sim)
        process.add_route(sink)
        process.start()
        process.receive(make_tuple(0))
        process.stop()
        sim.clock.run_until(600.0)
        assert sink.operator.received == []


class TestDataPath:
    def test_emissions_forwarded_over_network(self, sim, make_tuple):
        filter_ = OperatorProcess(
            "f", FilterOperator("temperature > 24"), "node-0", sim
        )
        sink = OperatorProcess("k", ListSink(), "node-2", sim)
        filter_.add_route(sink)
        filter_.start()
        sink.start()
        filter_.receive(make_tuple(0, temperature=30.0))
        filter_.receive(make_tuple(1, temperature=10.0))
        sim.clock.run()
        assert len(sink.operator.received) == 1
        assert sim.total_link_bytes() > 0

    def test_dead_node_processes_nothing(self, sim, make_tuple):
        process = OperatorProcess("f", FilterOperator("true"), "node-0", sim)
        sink = OperatorProcess("k", ListSink(), "node-0", sim)
        process.add_route(sink)
        sim.topology.node("node-0").fail()
        process.receive(make_tuple(0))
        sim.clock.run()
        assert process.operator.stats.tuples_in == 0

    def test_work_accounted(self, sim, make_tuple):
        process = OperatorProcess("f", FilterOperator("true"), "node-0", sim)
        for i in range(10):
            process.receive(make_tuple(i))
        assert sim.topology.node("node-0").work_done == pytest.approx(10.0)


class TestMigration:
    def test_move_transfers_registration(self, sim):
        process = OperatorProcess("f", FilterOperator("true"), "node-0", sim)
        process.move_to("node-1")
        assert process.node_id == "node-1"
        assert "f" not in sim.topology.node("node-0").processes
        assert "f" in sim.topology.node("node-1").processes

    def test_move_to_same_node_is_noop(self, sim):
        process = OperatorProcess("f", FilterOperator("true"), "node-0", sim)
        process.move_to("node-0")
        assert "f" in sim.topology.node("node-0").processes

    def test_forwarding_uses_new_location(self, sim, make_tuple):
        source = OperatorProcess("f", FilterOperator("true"), "node-0", sim)
        sink = OperatorProcess("k", ListSink(), "node-1", sim)
        source.add_route(sink)
        sink.move_to("node-2")
        source.receive(make_tuple(0))
        sim.clock.run()
        assert len(sink.operator.received) == 1
        # Traffic crossed both hops to node-2.
        assert sim.topology.link("node-1", "node-2").messages_transferred == 1


class TestLoadSampling:
    def test_demand_follows_rate(self, sim, make_tuple):
        process = OperatorProcess("f", FilterOperator("true"), "node-0", sim)
        process.sample_load(0.0)
        for i in range(100):
            process.receive(make_tuple(i))
        demand = process.sample_load(10.0)
        assert demand == pytest.approx(10.0)  # 10 tuples/s x cost 1.0
        assert sim.topology.node("node-0").load == pytest.approx(10.0)
