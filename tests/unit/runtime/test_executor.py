"""Unit tests for the executor: deploy, wire, control, rebalance."""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import AggregationSpec, FilterSpec, TriggerOnSpec
from repro.errors import DeploymentError, LifecycleError
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.lifecycle import DeploymentState
from repro.scenario import build_stack


@pytest.fixture
def stack():
    return build_stack(hot=True)


def simple_flow(name="simple") -> Dataflow:
    flow = Dataflow(name)
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    hot = flow.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    sink = flow.add_sink("collector", node_id="out")
    flow.connect(src, hot)
    flow.connect(hot, sink)
    return flow


class TestDeploy:
    def test_deploy_creates_processes(self, stack):
        deployment = stack.executor.deploy(simple_flow())
        assert deployment.state is DeploymentState.RUNNING
        assert set(deployment.processes) == {"hot", "out"}
        assert set(deployment.bindings) == {"src"}

    def test_data_flows_to_collector(self, stack):
        deployment = stack.executor.deploy(simple_flow())
        stack.run_until(14 * 3600.0)  # includes a hot afternoon
        collected = deployment.collected("out")
        assert collected
        assert all(t["temperature"] > 24 for t in collected)

    def test_duplicate_name_rejected(self, stack):
        stack.executor.deploy(simple_flow())
        with pytest.raises(DeploymentError, match="already running"):
            stack.executor.deploy(simple_flow())

    def test_redeploy_after_teardown_allowed(self, stack):
        deployment = stack.executor.deploy(simple_flow())
        deployment.teardown()
        stack.executor.deploy(simple_flow())

    def test_warehouse_sink_requires_warehouse(self, stack):
        from repro.runtime.executor import Executor

        bare = Executor(stack.netsim, stack.broker_network)
        flow = Dataflow("needs-wh")
        src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                              node_id="src")
        sink = flow.add_sink("warehouse", node_id="dw")
        flow.connect(src, sink)
        with pytest.raises(DeploymentError, match="warehouse"):
            bare.deploy(flow)

    def test_collected_unknown_sink_raises(self, stack):
        deployment = stack.executor.deploy(simple_flow())
        with pytest.raises(DeploymentError):
            deployment.collected("ghost")

    def test_multiple_deployments_coexist(self, stack):
        a = stack.executor.deploy(simple_flow("flow-a"))
        b = stack.executor.deploy(simple_flow("flow-b"))
        stack.run_until(13 * 3600.0)
        assert a.collected("out") and b.collected("out")


class TestPauseResume:
    def test_pause_stops_traffic(self, stack):
        deployment = stack.executor.deploy(simple_flow())
        stack.run_until(3600.0)
        deployment.pause()
        count = len(deployment.collected("out"))
        suppressed_before = stack.broker_network.data_messages_suppressed
        stack.run_until(7200.0)
        assert len(deployment.collected("out")) == count
        assert stack.broker_network.data_messages_suppressed > suppressed_before
        assert deployment.state is DeploymentState.PAUSED

    def test_resume_restores(self, stack):
        deployment = stack.executor.deploy(simple_flow())
        stack.run_until(11 * 3600.0)
        deployment.pause()
        stack.run_until(12 * 3600.0)
        deployment.resume()
        count = len(deployment.collected("out"))
        stack.run_until(15 * 3600.0)  # hot hours
        assert len(deployment.collected("out")) > count

    def test_illegal_transitions_raise(self, stack):
        deployment = stack.executor.deploy(simple_flow())
        with pytest.raises(LifecycleError):
            deployment.resume()
        deployment.pause()
        with pytest.raises(LifecycleError):
            deployment.pause()


class TestTeardown:
    def test_teardown_releases_everything(self, stack):
        deployment = stack.executor.deploy(simple_flow())
        stack.run_until(3600.0)
        deployment.teardown()
        assert deployment.state is DeploymentState.STOPPED
        for node in stack.topology.nodes:
            assert not any(
                pid.startswith("simple:") for pid in node.processes
            )
        count = len(deployment.collected("out"))
        stack.run_until(7200.0)
        assert len(deployment.collected("out")) == count

    def test_teardown_idempotent(self, stack):
        deployment = stack.executor.deploy(simple_flow())
        deployment.teardown()
        deployment.teardown()


class TestTriggerControl:
    def trigger_flow(self, stack):
        from repro.scenario import osaka_scenario_flow

        return osaka_scenario_flow(stack)

    def test_gated_sources_start_paused(self, stack):
        deployment = stack.executor.deploy(self.trigger_flow(stack))
        for name in ("rain", "tweets", "traffic"):
            assert all(not s.active
                       for s in deployment.bindings[name].subscriptions)

    def test_trigger_activates_when_hot(self, stack):
        deployment = stack.executor.deploy(self.trigger_flow(stack))
        stack.run_until(14 * 3600.0)
        assert any(c.activate for c in stack.executor.monitor.control_log)
        for name in ("rain", "tweets", "traffic"):
            assert all(s.active
                       for s in deployment.bindings[name].subscriptions)

    def test_trigger_silent_when_cool(self):
        cool = build_stack(hot=False)
        from repro.scenario import osaka_scenario_flow

        deployment = cool.executor.deploy(osaka_scenario_flow(cool))
        cool.run_until(14 * 3600.0)
        assert not cool.executor.monitor.control_log
        assert len(cool.warehouse) == 0


class TestRebalance:
    def test_overload_causes_migration(self):
        stack = build_stack(rebalance_interval=120.0)
        deployment = stack.executor.deploy(simple_flow("hotspot"))
        stack.run_until(600.0)  # let live rates establish
        # A background hog overloads the node hosting the filter; the SCN
        # must move the filter away at the next coordination round.
        hot_node = deployment.process("hot").node_id
        stack.topology.node(hot_node).register_process("hog", demand=5000.0)
        stack.run_until(1200.0)
        changes = stack.executor.monitor.assignment_log
        assert changes
        assert changes[0].process_id.startswith("hotspot:")
        assert changes[0].from_node == hot_node
        assert deployment.process("hot").node_id != hot_node or any(
            c.process_id == "hotspot:hot" for c in changes
        )

    def test_stream_continues_after_migration(self):
        stack = build_stack(rebalance_interval=120.0)
        deployment = stack.executor.deploy(simple_flow("hotspot"))
        stack.run_until(11 * 3600.0)
        hot_node = deployment.process("hot").node_id
        stack.topology.node(hot_node).register_process("hog", demand=5000.0)
        stack.run_until(12 * 3600.0)
        count = len(deployment.collected("out"))
        stack.run_until(15 * 3600.0)  # hot afternoon
        assert len(deployment.collected("out")) > count


class TestReplacementDemandAccounting:
    """Regression: re-placing shard processes must book their deploy-time
    demand, not the live rate estimate.

    A process displaced before the monitor's first rate sample reads
    ``rate.rate == 0.0``; booking that zero let every displaced sibling
    look weightless, so ``replace_service`` packed them all onto the same
    least-loaded node and double-booked its capacity for every later
    placement decision.  The fix floors the booking at the deploy-time
    ``placement_demand`` estimate.
    """

    FREQUENCY = 16.0   # Hz -> conceptual demand 16, 4 cost-units per shard

    def _deploy(self):
        from repro.dsn.scn import ScnController
        from repro.network.netsim import NetworkSimulator
        from repro.network.topology import Topology
        from repro.pubsub.broker import BrokerNetwork
        from repro.pubsub.registry import SensorMetadata
        from repro.runtime.executor import Executor
        from repro.schema.schema import StreamSchema
        from repro.stt.spatial import Point

        netsim = NetworkSimulator(topology=Topology.star(leaf_count=3))
        netsim.topology.node("hub").capacity = 100.0
        for leaf in ("edge-0", "edge-1", "edge-2"):
            netsim.topology.node(leaf).capacity = 10.0
        network = BrokerNetwork(netsim=netsim)
        executor = Executor(netsim, network,
                            scn=ScnController(netsim.topology))
        network.publish(SensorMetadata(
            sensor_id="fast-temp",
            sensor_type="temperature",
            schema=StreamSchema.build(
                {"temperature": "float", "station": "str"},
                themes=("weather/temperature",),
            ),
            frequency=self.FREQUENCY,
            location=Point(34.69, 135.50),
            node_id="hub",
        ))

        flow = Dataflow("demand-accounting")
        src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                              node_id="src")
        agg = flow.add_operator(
            AggregationSpec(interval=600.0, attributes=("temperature",),
                            function="AVG", group_by="station"),
            node_id="agg",
        )
        out = flow.add_sink("collector", node_id="out")
        flow.connect(src, agg)
        flow.connect(agg, out)
        deployment = executor.deploy(flow, shards={"agg": 4})
        return netsim, executor, deployment

    def test_displaced_shards_spread_instead_of_packing(self):
        netsim, executor, deployment = self._deploy()
        group = deployment.shard_groups["agg"]
        first, second = group.members[0], group.members[1]
        # Co-locate two shards on one small leaf (and clear everything
        # else off it) so one kill displaces both before any rate sample.
        for process in deployment.processes.values():
            if process not in (first, second) and process.node_id == "edge-0":
                process.move_to("hub")
        first.move_to("edge-0")
        second.move_to("edge-0")
        assert first.rate.rate == 0.0   # pre-sampling: the bug's trigger

        # A background hog prices the big hub out of contention: the two
        # displaced shards must fight over the 10-unit leaves.
        netsim.topology.node("hub").register_process("hog", demand=95.0)
        netsim.kill_node("edge-0")
        executor._replace_processes(deployment, "edge-0")

        assert first.node_id in ("edge-1", "edge-2")
        assert second.node_id in ("edge-1", "edge-2")
        # The first replacement's booking must be visible to the second:
        # two 4-unit shards cannot share one 10-unit leaf with the bug's
        # zero-demand booking claiming otherwise.
        assert first.node_id != second.node_id
        for leaf in ("edge-1", "edge-2"):
            node = netsim.topology.node(leaf)
            assert node.load <= node.capacity, (
                f"{leaf} over-booked: {node.load} > {node.capacity}"
            )

    def test_move_to_books_placement_demand_before_first_sample(self):
        netsim, _, deployment = self._deploy()
        member = deployment.shard_groups["agg"].members[0]
        assert member.placement_demand == self.FREQUENCY / 4
        node = netsim.topology.node("edge-1")
        before = node.load
        member.move_to("edge-1")
        assert member.process_id in node.processes
        assert node.load - before == member.placement_demand
