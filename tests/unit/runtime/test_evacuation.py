"""Unit tests for dead-node evacuation (failure recovery)."""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack


@pytest.fixture
def deployed():
    stack = build_stack(rebalance_interval=120.0)
    flow = Dataflow("evac")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    keep = flow.add_operator(FilterSpec("temperature > -100"), node_id="keep")
    out = flow.add_sink("collector", node_id="out")
    flow.connect(src, keep)
    flow.connect(keep, out)
    deployment = stack.executor.deploy(flow)
    stack.run_until(300.0)
    return stack, deployment


class TestEvacuation:
    def test_process_moves_off_dead_node(self, deployed):
        stack, deployment = deployed
        victim = deployment.process("keep").node_id
        stack.topology.node(victim).fail()
        stack.run_until(600.0)  # at least one coordination round
        assert deployment.process("keep").node_id != victim
        changes = [c for c in stack.executor.monitor.assignment_log
                   if c.process_id == "evac:keep"]
        assert changes and "down" in changes[0].reason

    def test_stream_recovers_after_evacuation(self, deployed):
        stack, deployment = deployed
        victim = deployment.process("keep").node_id
        stack.topology.node(victim).fail()
        stack.run_until(900.0)
        count = len(deployment.collected("out"))
        stack.run_until(3600.0)
        assert len(deployment.collected("out")) > count

    def test_subscriptions_follow_evacuated_process(self, deployed):
        stack, deployment = deployed
        victim = deployment.process("keep").node_id
        stack.topology.node(victim).fail()
        stack.run_until(600.0)
        new_node = deployment.process("keep").node_id
        for subscription in deployment.bindings["src"].subscriptions:
            assert subscription.node_id == new_node

    def test_no_evacuation_when_nowhere_to_go(self, deployed):
        stack, deployment = deployed
        for node in stack.topology.nodes:
            node.fail()
        stack.run_until(600.0)  # must not raise; processes stay put
        assert deployment.process("keep").node_id in stack.topology.node_ids

    def test_placement_map_records_reason(self, deployed):
        stack, deployment = deployed
        victim = deployment.process("keep").node_id
        stack.topology.node(victim).fail()
        stack.run_until(600.0)
        assert "down" in deployment.placements["keep"].reason
