"""Unit tests for shard groups and the shard-aware forwarding layer."""

import pytest

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.runtime.process import OperatorProcess
from repro.runtime.sharding import ShardGroup
from repro.streams.filter import FilterOperator
from repro.streams.shard import partition_index
from repro.streams.sink import ListSink


@pytest.fixture
def sim() -> NetworkSimulator:
    return NetworkSimulator(topology=Topology.star(leaf_count=2))


def make_group(sim, count=2, keys_by_port=(("station",),), with_merge=True):
    members = [
        OperatorProcess(f"member-{i}", ListSink(), "hub", sim)
        for i in range(count)
    ]
    merge = (
        OperatorProcess("merge", ListSink(), "hub", sim) if with_merge else None
    )
    group = ShardGroup(
        service="svc", members=members, keys_by_port=keys_by_port, merge=merge
    )
    for process in group.processes():
        process.start()
    return group


class TestKeysForPort:
    def test_port_selects_its_entry(self, sim):
        group = make_group(sim, keys_by_port=(("left_key",), ("right_key",)))
        assert group.keys_for_port(0) == ("left_key",)
        assert group.keys_for_port(1) == ("right_key",)

    def test_port_beyond_entries_clamps_to_last(self, sim):
        group = make_group(sim, keys_by_port=(("station",),))
        assert group.keys_for_port(3) == ("station",)


class TestMemberFor:
    def test_matches_partitioner_contract(self, sim, make_tuple):
        group = make_group(sim, count=2)
        for seq in range(16):
            tuple_ = make_tuple(seq, station=f"st-{seq % 6}")
            expected = partition_index((tuple_.get("station"),), 2)
            assert group.member_for(tuple_) is group.members[expected]

    def test_port_changes_the_key(self, sim, make_tuple):
        group = make_group(sim, keys_by_port=(("station",), ("temperature",)))
        tuple_ = make_tuple(0, station="st-1", temperature=42.5)
        by_station = partition_index(("st-1",), 2)
        by_temp = partition_index((42.5,), 2)
        assert group.member_for(tuple_, port=0) is group.members[by_station]
        assert group.member_for(tuple_, port=1) is group.members[by_temp]


class TestSplit:
    def test_buckets_preserve_arrival_order(self, sim, make_tuple):
        group = make_group(sim, count=2)
        tuples = [make_tuple(seq, station=f"st-{seq % 5}") for seq in range(10)]
        pieces = group.split(tuples)
        for member, batch in pieces:
            seqs = [t.seq for t in batch.tuples]
            assert seqs == sorted(seqs)
            for tuple_ in batch.tuples:
                assert group.member_for(tuple_) is member
        assert sorted(t.seq for _, b in pieces for t in b.tuples) == list(
            range(10)
        )

    def test_members_visited_in_shard_order(self, sim, make_tuple):
        group = make_group(sim, count=4)
        tuples = [make_tuple(seq, station=f"st-{seq}") for seq in range(32)]
        pieces = group.split(tuples)
        order = [group.members.index(member) for member, _ in pieces]
        assert order == sorted(order)

    def test_empty_buckets_omitted(self, sim, make_tuple):
        group = make_group(sim, count=4)
        tuples = [make_tuple(0, station="only-one-key")]
        pieces = group.split(tuples)
        assert len(pieces) == 1


class TestProcesses:
    def test_includes_members_and_merge(self, sim):
        group = make_group(sim, count=3)
        processes = group.processes()
        assert processes[:3] == group.members
        assert processes[3] is group.merge

    def test_merge_optional(self, sim):
        group = make_group(sim, count=2, with_merge=False)
        assert group.processes() == group.members


class TestShardedForwarding:
    """Routes whose target is a ShardGroup resolve members per tuple."""

    def make_upstream(self, sim, group):
        upstream = OperatorProcess(
            "upstream", FilterOperator("temperature > 0"), "hub", sim
        )
        upstream.add_route(group)
        upstream.start()
        return upstream

    def test_forward_resolves_owning_member(self, sim, make_tuple):
        group = make_group(sim, count=2)
        upstream = self.make_upstream(sim, group)
        tuples = [make_tuple(seq, station=f"st-{seq % 6}") for seq in range(12)]
        for tuple_ in tuples:
            upstream.receive(tuple_)
        sim.clock.run()
        for index, member in enumerate(group.members):
            expected = [
                t.seq for t in tuples
                if partition_index((t.get("station"),), 2) == index
            ]
            assert [t.seq for t in member.operator.received] == expected

    def test_forward_batch_splits_per_member(self, sim, make_tuple):
        group = make_group(sim, count=2)
        upstream = self.make_upstream(sim, group)
        from repro.streams.tuple import TupleBatch
        tuples = [make_tuple(seq, station=f"st-{seq % 3}") for seq in range(9)]
        upstream.receive_batch(TupleBatch.of(tuples))
        sim.clock.run()
        received = sorted(
            t.seq for member in group.members
            for t in member.operator.received
        )
        assert received == list(range(9))
