"""Unit tests for metric primitives."""

import pytest

from repro.runtime.stats import RateEstimator, TimeSeries


class TestTimeSeries:
    def test_record_and_reductions(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(10.0, 3.0)
        series.record(20.0, 2.0)
        assert series.last == 2.0
        assert series.mean() == 2.0
        assert series.maximum() == 3.0
        assert len(series) == 3

    def test_empty_reductions(self):
        series = TimeSeries("x")
        assert series.last is None
        assert series.mean() == 0.0
        assert series.maximum() == 0.0

    def test_backwards_time_raises(self):
        series = TimeSeries("x")
        series.record(10.0, 1.0)
        with pytest.raises(ValueError):
            series.record(5.0, 2.0)

    def test_equal_time_allowed(self):
        # Two samplers can legitimately fire on the same virtual instant
        # (e.g. the monitor's sampler and the liveness checker); both
        # points are kept, in arrival order, and `last` is the newest.
        series = TimeSeries("x")
        series.record(10.0, 1.0)
        series.record(10.0, 2.0)
        assert len(series) == 2
        assert series.points == [(10.0, 1.0), (10.0, 2.0)]
        assert series.last == 2.0
        series.record(10.0, 3.0)  # still the same instant: still tolerated
        assert series.last == 3.0

    def test_record_after_equal_timestamps_continues(self):
        series = TimeSeries("x")
        series.record(10.0, 1.0)
        series.record(10.0, 2.0)
        series.record(11.0, 4.0)
        assert series.since(10.0) == [(10.0, 1.0), (10.0, 2.0), (11.0, 4.0)]
        with pytest.raises(ValueError):
            series.record(10.5, 5.0)

    def test_since(self):
        series = TimeSeries("x")
        for t in range(5):
            series.record(float(t), float(t))
        assert series.since(3.0) == [(3.0, 3.0), (4.0, 4.0)]

    def test_values_times(self):
        series = TimeSeries("x")
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.values() == [10.0, 20.0]
        assert series.times() == [1.0, 2.0]

    def test_since_bisects_matching_linear_scan(self):
        series = TimeSeries("x")
        for t in range(100):
            series.record(float(t), float(t))
        for cutoff in (-1.0, 0.0, 49.5, 50.0, 99.0, 120.0):
            linear = [p for p in series.points if p[0] >= cutoff]
            assert series.since(cutoff) == linear

    def test_since_with_duplicate_timestamps_returns_all(self):
        series = TimeSeries("x")
        series.record(1.0, 1.0)
        series.record(2.0, 2.0)
        series.record(2.0, 3.0)
        series.record(3.0, 4.0)
        assert series.since(2.0) == [(2.0, 2.0), (2.0, 3.0), (3.0, 4.0)]

    def test_max_points_caps_retention(self):
        series = TimeSeries("x", max_points=3)
        for t in range(10):
            series.record(float(t), float(t) * 2)
        assert len(series) == 3
        assert series.points == [(7.0, 14.0), (8.0, 16.0), (9.0, 18.0)]
        assert series.last == 18.0
        # since() still works on the trimmed window.
        assert series.since(8.0) == [(8.0, 16.0), (9.0, 18.0)]

    def test_max_points_unset_is_unbounded(self):
        series = TimeSeries("x")
        for t in range(1000):
            series.record(float(t), 0.0)
        assert len(series) == 1000

    def test_max_points_validated(self):
        with pytest.raises(ValueError):
            TimeSeries("x", max_points=0)
        with pytest.raises(ValueError):
            TimeSeries("x", max_points=-5)


class TestWindow:
    def test_trailing_window_anchored_at_newest_point(self):
        series = TimeSeries("x")
        for t in (0.0, 10.0, 20.0, 30.0):
            series.record(t, t)
        assert series.window(15.0) == [(20.0, 20.0), (30.0, 30.0)]

    def test_window_covering_everything(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        assert series.window(100.0) == [(0.0, 1.0), (10.0, 2.0)]

    def test_zero_window_keeps_the_newest_instant(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        series.record(10.0, 3.0)  # same-instant samples both retained
        assert series.window(0.0) == [(10.0, 2.0), (10.0, 3.0)]

    def test_empty_series_yields_empty_window(self):
        assert TimeSeries("x").window(60.0) == []

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("x").window(-1.0)


class TestRateEstimator:
    def test_first_observation_is_zero(self):
        rate = RateEstimator()
        assert rate.observe(0.0, 100.0) == 0.0

    def test_rate_over_window(self):
        rate = RateEstimator()
        rate.observe(0.0, 0.0)
        assert rate.observe(10.0, 50.0) == 5.0
        assert rate.observe(20.0, 150.0) == 10.0

    def test_no_time_passed_keeps_rate(self):
        rate = RateEstimator()
        rate.observe(0.0, 0.0)
        rate.observe(10.0, 50.0)
        assert rate.observe(10.0, 60.0) == 5.0  # unchanged

    def test_counter_reset_clamped_to_zero(self):
        rate = RateEstimator()
        rate.observe(0.0, 100.0)
        assert rate.observe(10.0, 0.0) == 0.0  # never negative

    def test_reset(self):
        rate = RateEstimator()
        rate.observe(0.0, 0.0)
        rate.observe(10.0, 100.0)
        rate.reset()
        assert rate.rate == 0.0
        assert rate.observe(20.0, 500.0) == 0.0  # first after reset
