"""Unit tests for the monitor."""

import pytest

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.runtime.monitor import Monitor
from repro.runtime.process import OperatorProcess
from repro.streams.base import ControlCommand
from repro.streams.filter import FilterOperator


@pytest.fixture
def sim() -> NetworkSimulator:
    return NetworkSimulator(topology=Topology.line(2))


@pytest.fixture
def monitor(sim) -> Monitor:
    return Monitor(sim, sample_interval=60.0)


def make_process(sim, name="f", node="node-0"):
    return OperatorProcess(name, FilterOperator("temperature > -100"), node, sim)


class TestSampling:
    def test_operation_rates_collected(self, sim, monitor, make_tuple):
        process = make_process(sim)
        monitor.watch("flow", [process])
        monitor.start()
        for i in range(120):
            sim.clock.schedule(float(i), lambda i=i: process.receive(make_tuple(i)))
        sim.clock.run_until(180.0)
        series = monitor.operation_rates["flow/f"]
        assert len(series) == 3
        assert series.points[1][1] == pytest.approx(1.0, rel=0.1)

    def test_node_utilization_sampled(self, sim, monitor):
        monitor.start()
        sim.topology.node("node-0").register_process("bg", demand=500.0)
        sim.clock.run_until(60.0)
        assert monitor.node_utilization["node-0"].last == pytest.approx(0.5)

    def test_stop_halts_sampling(self, sim, monitor):
        monitor.start()
        sim.clock.run_until(60.0)
        monitor.stop()
        sim.clock.run_until(600.0)
        assert len(monitor.node_utilization["node-0"]) == 1


class TestEvents:
    def test_assignment_log(self, sim, monitor):
        monitor.record_assignment("flow:f", "node-0", "node-1", "overload")
        assert len(monitor.assignment_log) == 1
        change = monitor.assignment_log[0]
        assert change.from_node == "node-0" and change.to_node == "node-1"
        assert any("reassigned" in str(record) for record in monitor.logs)

    def test_control_log(self, sim, monitor):
        command = ControlCommand(activate=True, sensor_ids=("rain-1",),
                                 issued_at=0.0, reason="hot")
        monitor.record_control("flow", command)
        assert monitor.control_log == [command]
        assert any("activate" in record.event for record in monitor.logs)

    def test_suffering_nodes(self, sim, monitor):
        sim.topology.node("node-1").register_process("hog", demand=2000.0)
        assert monitor.suffering_nodes() == ["node-1"]
        assert monitor.suffering_nodes(threshold=5.0) == []


class TestReport:
    def test_report_structure(self, sim, monitor):
        process = make_process(sim)
        monitor.watch("flow", [process])
        monitor.start()
        sim.clock.run_until(60.0)
        report = monitor.report()
        assert "flow/f" in report["operation_rates"]
        assert "node-0" in report["node_utilization"]
        assert report["assignments"]["flow/f"] == "node-0"
        assert "network" in report

    def test_dashboard_renders(self, sim, monitor, make_tuple):
        process = make_process(sim)
        monitor.watch("flow", [process])
        monitor.start()
        process.receive(make_tuple(0))
        sim.clock.run_until(60.0)
        monitor.record_assignment("flow/f", "node-0", "node-1", "test")
        text = monitor.render_dashboard()
        assert "flow/f" in text
        assert "node-0" in text
        assert "reassignments" in text

    def test_unwatch_removes_assignments(self, sim, monitor):
        process = make_process(sim)
        monitor.watch("flow", [process])
        monitor.unwatch("flow")
        assert monitor.current_assignments() == {}
