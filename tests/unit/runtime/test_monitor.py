"""Unit tests for the monitor."""

import pathlib

import pytest

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.obs import AlertEngine, AlertRule, Observability
from repro.runtime.monitor import Monitor, NodeHealth
from repro.runtime.process import OperatorProcess
from repro.streams.base import ControlCommand
from repro.streams.filter import FilterOperator

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


@pytest.fixture
def sim() -> NetworkSimulator:
    return NetworkSimulator(topology=Topology.line(2))


@pytest.fixture
def monitor(sim) -> Monitor:
    return Monitor(sim, sample_interval=60.0)


def make_process(sim, name="f", node="node-0"):
    return OperatorProcess(name, FilterOperator("temperature > -100"), node, sim)


class TestSampling:
    def test_operation_rates_collected(self, sim, monitor, make_tuple):
        process = make_process(sim)
        monitor.watch("flow", [process])
        monitor.start()
        for i in range(120):
            sim.clock.schedule(float(i), lambda i=i: process.receive(make_tuple(i)))
        sim.clock.run_until(180.0)
        series = monitor.operation_rates["flow/f"]
        assert len(series) == 3
        assert series.points[1][1] == pytest.approx(1.0, rel=0.1)

    def test_node_utilization_sampled(self, sim, monitor):
        monitor.start()
        sim.topology.node("node-0").register_process("bg", demand=500.0)
        sim.clock.run_until(60.0)
        assert monitor.node_utilization["node-0"].last == pytest.approx(0.5)

    def test_stop_halts_sampling(self, sim, monitor):
        monitor.start()
        sim.clock.run_until(60.0)
        monitor.stop()
        sim.clock.run_until(600.0)
        assert len(monitor.node_utilization["node-0"]) == 1


class TestEvents:
    def test_assignment_log(self, sim, monitor):
        monitor.record_assignment("flow:f", "node-0", "node-1", "overload")
        assert len(monitor.assignment_log) == 1
        change = monitor.assignment_log[0]
        assert change.from_node == "node-0" and change.to_node == "node-1"
        assert any("reassigned" in str(record) for record in monitor.logs)

    def test_control_log(self, sim, monitor):
        command = ControlCommand(activate=True, sensor_ids=("rain-1",),
                                 issued_at=0.0, reason="hot")
        monitor.record_control("flow", command)
        assert monitor.control_log == [command]
        assert any("activate" in record.event for record in monitor.logs)

    def test_suffering_nodes(self, sim, monitor):
        sim.topology.node("node-1").register_process("hog", demand=2000.0)
        assert monitor.suffering_nodes() == ["node-1"]
        assert monitor.suffering_nodes(threshold=5.0) == []


class TestReport:
    def test_report_structure(self, sim, monitor):
        process = make_process(sim)
        monitor.watch("flow", [process])
        monitor.start()
        sim.clock.run_until(60.0)
        report = monitor.report()
        assert "flow/f" in report["operation_rates"]
        assert "node-0" in report["node_utilization"]
        assert report["assignments"]["flow/f"] == "node-0"
        assert "network" in report

    def test_dashboard_renders(self, sim, monitor, make_tuple):
        process = make_process(sim)
        monitor.watch("flow", [process])
        monitor.start()
        process.receive(make_tuple(0))
        sim.clock.run_until(60.0)
        monitor.record_assignment("flow/f", "node-0", "node-1", "test")
        text = monitor.render_dashboard()
        assert "flow/f" in text
        assert "node-0" in text
        assert "reassignments" in text

    def test_unwatch_removes_assignments(self, sim, monitor):
        process = make_process(sim)
        monitor.watch("flow", [process])
        monitor.unwatch("flow")
        assert monitor.current_assignments() == {}


@pytest.fixture
def detector(sim) -> Monitor:
    """A monitor with a fast failure detector for heartbeat tests."""
    return Monitor(sim, sample_interval=600.0, heartbeat_interval=10.0,
                   suspect_after=2.0, dead_after=4.0)


def watch_started(sim, detector, node="node-0"):
    process = make_process(sim, node=node)
    process.start()
    detector.watch("flow", [process])
    detector.start()
    return process


class TestFailureDetection:
    def test_thresholds_validated(self, sim):
        with pytest.raises(ValueError):
            Monitor(sim, suspect_after=4.0, dead_after=2.0)
        with pytest.raises(ValueError):
            Monitor(sim, suspect_after=0.0)

    def test_heartbeats_keep_node_alive(self, sim, detector):
        watch_started(sim, detector)
        sim.clock.run_until(200.0)
        assert detector.node_health["node-0"] is NodeHealth.ALIVE

    def test_silent_node_goes_suspect_then_dead(self, sim, detector):
        watch_started(sim, detector)
        deaths = []
        detector.on_node_dead.append(deaths.append)
        sim.clock.run_until(35.0)
        sim.kill_node("node-0")  # last heartbeat was at t=30
        sim.clock.run_until(55.0)  # 2+ intervals of silence
        assert detector.node_health["node-0"] is NodeHealth.SUSPECT
        assert deaths == []
        sim.clock.run_until(200.0)  # 4+ intervals of silence
        assert detector.node_health["node-0"] is NodeHealth.DEAD
        assert any(r.event == "node-suspect" for r in detector.logs)
        assert any(r.event == "node-dead" for r in detector.logs)

    def test_death_callback_fires_exactly_once(self, sim, detector):
        watch_started(sim, detector)
        deaths = []
        detector.on_node_dead.append(deaths.append)
        sim.clock.run_until(35.0)
        sim.kill_node("node-0")
        sim.clock.run_until(500.0)
        assert deaths == ["node-0"]

    def test_revived_node_recovers_to_alive(self, sim, detector):
        watch_started(sim, detector)
        sim.clock.run_until(35.0)
        sim.kill_node("node-0")
        sim.clock.run_until(200.0)
        assert detector.node_health["node-0"] is NodeHealth.DEAD
        sim.revive_node("node-0")
        sim.clock.run_until(250.0)  # next heartbeat clears the verdict
        assert detector.node_health["node-0"] is NodeHealth.ALIVE
        assert any(r.event == "node-alive" for r in detector.logs)

    def test_suspect_recovers_to_alive_without_death_verdict(self, sim, detector):
        """Regression: heartbeats resuming between ``suspect_after`` and
        ``dead_after`` must clear the SUSPECT verdict back to ALIVE and
        never invoke ``on_node_dead``."""
        watch_started(sim, detector)
        deaths = []
        detector.on_node_dead.append(deaths.append)
        sim.clock.run_until(35.0)
        sim.kill_node("node-0")  # last heartbeat at t=30
        sim.clock.run_until(55.0)  # > suspect_after (20s), < dead_after (40s)
        assert detector.node_health["node-0"] is NodeHealth.SUSPECT
        sim.revive_node("node-0")  # heartbeats resume at t=60
        sim.clock.run_until(100.0)
        assert detector.node_health["node-0"] is NodeHealth.ALIVE
        assert deaths == []
        assert not any(r.event == "node-dead" for r in detector.logs)
        events = [r.event for r in detector.logs
                  if r.event in ("node-suspect", "node-alive")]
        assert events == ["node-suspect", "node-alive"]

    def test_unwatched_nodes_not_judged(self, sim, detector):
        watch_started(sim, detector, node="node-0")
        sim.kill_node("node-1")  # hosts nothing we watch
        sim.clock.run_until(200.0)
        assert "node-1" not in detector.node_health

    def test_stop_halts_detection(self, sim, detector):
        watch_started(sim, detector)
        sim.clock.run_until(35.0)
        detector.stop()
        sim.kill_node("node-0")
        sim.clock.run_until(500.0)
        assert detector.node_health["node-0"] is NodeHealth.ALIVE

    def test_report_and_dashboard_surface_health(self, sim, detector):
        watch_started(sim, detector)
        sim.clock.run_until(35.0)
        sim.kill_node("node-0")
        sim.clock.run_until(200.0)
        report = detector.report()
        assert report["node_health"]["node-0"] == "dead"
        assert "DEAD" in detector.render_dashboard()


class TestDashboardGolden:
    """Byte-for-byte snapshot of the full monitoring screen.

    The rendered state exercises every section at once: operation and
    utilization rows, one SUSPECT node, one key-migration event, the
    watermark table, and one firing alert.  Everything runs on the
    virtual clock, so the text is deterministic.  Accept an intentional
    change with ``pytest ... --update-goldens``.
    """

    def build_dashboard_text(self, sim) -> str:
        obs = Observability(sampling=0.0)
        plane = obs.ensure_latency()
        monitor = Monitor(sim, sample_interval=60.0, heartbeat_interval=10.0,
                          suspect_after=2.0, dead_after=20.0, obs=obs)
        process = make_process(sim)
        process.start()
        monitor.watch("flow", [process])
        monitor.start()

        engine = AlertEngine(obs.metrics, plane=plane, tracer=obs.tracer)
        engine.start(sim.clock)
        monitor.alerts = engine
        engine.add_rule(AlertRule(name="slo:flow:watermark_lag",
                                  metric="watermark_lag", op="<",
                                  threshold=10.0, scope="flow"))

        probe = plane.register_process("flow:f", blocking=True, sink=False)
        plane.note_publish("sensor-1", 5.0, 5.0)
        probe.note(5.0, 5.0)  # buffered, never flushed: renders "cold"
        sink = plane.register_process("flow:out", blocking=False, sink=True)
        sink.note(6.0, 5.5)

        sim.clock.schedule_at(15.0, lambda: sim.kill_node("node-0"))
        # The sources advance while the sink's watermark stays at 5.5, so
        # the lag rule breaches before the t=90 tick.
        sim.clock.schedule_at(
            50.0, lambda: plane.note_publish("sensor-1", 50.0, 50.0)
        )
        sim.clock.run_until(95.0)  # SUSPECT at 40, alert fires at 90
        monitor.record_migration("flow:f", "station-1", "migrate", 0, (1,),
                                 "hot key")
        return monitor.render_dashboard()

    def test_dashboard_matches_golden(self, sim, update_goldens):
        text = self.build_dashboard_text(sim) + "\n"
        path = GOLDEN_DIR / "dashboard.txt"
        if update_goldens:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(text)
        assert text == path.read_text()

    def test_dashboard_has_every_section(self, sim):
        text = self.build_dashboard_text(sim)
        assert "SUSPECT" in text
        assert "-- key migrations --" in text
        assert "station-1 shard 0 -> [1] (migrate)" in text
        assert "-- watermarks (lag behind sources) --" in text
        assert "cold" in text  # the buffered blocking probe never committed
        assert "slo:flow:watermark_lag" in text and "FIRING" in text

class TestReportPlaneSections:
    def test_report_watermarks_and_alerts_keys(self, sim):
        obs = Observability(sampling=0.0)
        plane = obs.ensure_latency()
        monitor = Monitor(sim, obs=obs)
        probe = plane.register_process("flow:f", blocking=False, sink=False)
        plane.note_publish("s", 10.0, 9.0)
        probe.note(10.0, 8.0)
        engine = AlertEngine(obs.metrics, plane=plane)
        engine.start(sim.clock)
        monitor.alerts = engine
        report = monitor.report()
        assert report["watermarks"]["flow:f"] == {
            "watermark": 8.0, "lag": 1.0,
        }
        assert report["alerts"] == {"firing": [], "transitions": 0}

    def test_report_omits_sections_without_plane(self, sim, monitor):
        report = monitor.report()
        assert "watermarks" not in report
        assert "alerts" not in report

    def test_sample_refreshes_plane_gauges(self, sim):
        obs = Observability(sampling=0.0)
        plane = obs.ensure_latency()
        monitor = Monitor(sim, sample_interval=60.0, obs=obs)
        probe = plane.register_process("flow:agg", blocking=True, sink=False)
        probe.note(5.0, 4.0)
        monitor.start()
        sim.clock.run_until(60.0)
        assert obs.metrics.get("queue_depth", process="flow:agg").value == 1


class TestDeadLetterIntake:
    def test_record_keeps_audit_trail(self, sim, monitor):
        monitor.record_dead_letter(7, "node-1", "rain-1", "no route")
        assert len(monitor.dead_letter_log) == 1
        record = monitor.dead_letter_log[0]
        assert record.subscription_id == 7 and record.node_id == "node-1"
        assert any(r.event == "dead-letter" for r in monitor.logs)
        assert monitor.report()["dead_letters"] == 1
