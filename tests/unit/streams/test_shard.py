"""Unit tests for the shard adapter, merge operator, and partitioner."""

import pytest

from repro.errors import CheckpointError, StreamLoaderError
from repro.streams.aggregate import AggregationOperator
from repro.streams.filter import FilterOperator
from repro.streams.join import JoinOperator
from repro.streams.shard import (
    ENTRIES_KEY,
    EPOCH_KEY,
    SHARD_KEY,
    ShardMergeOperator,
    ShardedOperatorAdapter,
    partition_index,
)


def make_agg(**kwargs):
    return AggregationOperator(interval=10.0, attributes=["temperature"],
                               function="SUM", group_by="station", **kwargs)


def adapter(index=0, count=2):
    return ShardedOperatorAdapter(make_agg(), shard_index=index,
                                  shard_count=count)


class TestPartitionIndex:
    def test_deterministic_across_calls(self):
        values = ("st-3", 42)
        assert partition_index(values, 4) == partition_index(values, 4)

    def test_within_range(self):
        for key in range(100):
            assert 0 <= partition_index((f"k{key}",), 7) < 7

    def test_single_shard_always_zero(self):
        assert partition_index(("anything",), 1) == 0

    def test_distinct_keys_spread(self):
        indexes = {partition_index((f"st-{i}",), 4) for i in range(64)}
        assert indexes == {0, 1, 2, 3}


class TestShardedOperatorAdapter:
    def test_rejects_non_blocking_inner(self):
        with pytest.raises(StreamLoaderError, match="blocking"):
            ShardedOperatorAdapter(FilterOperator("temperature > 0"),
                                   shard_index=0, shard_count=2)

    def test_mirrors_inner_shape(self):
        wrapped = adapter()
        assert wrapped.interval == 10.0
        assert wrapped.is_blocking
        assert wrapped.checkpointable
        assert wrapped.input_ports == 1

    def test_flush_emits_one_envelope(self, make_tuple):
        wrapped = adapter()
        wrapped.on_tuple(make_tuple(0, station="a"))
        wrapped.on_tuple(make_tuple(1, station="b"))
        out = wrapped.on_timer(10.0)
        assert len(out) == 1
        envelope = out[0]
        assert envelope.payload[SHARD_KEY] == 0
        assert envelope.payload[EPOCH_KEY] == 10.0
        entries = envelope.payload[ENTRIES_KEY]
        assert [key for key, _ in entries] == sorted(key for key, _ in entries)

    def test_empty_flush_still_emits_punctuation(self):
        wrapped = adapter()
        out = wrapped.on_timer(10.0)
        assert len(out) == 1
        assert out[0].payload[ENTRIES_KEY] == ()

    def test_envelope_seq_increments(self):
        wrapped = adapter()
        first = wrapped.on_timer(10.0)[0]
        second = wrapped.on_timer(20.0)[0]
        assert (first.seq, second.seq) == (0, 1)

    def test_checkpoint_round_trip(self, make_tuple):
        wrapped = adapter()
        wrapped.on_tuple(make_tuple(0, station="a"))
        wrapped.on_timer(10.0)
        wrapped.on_tuple(make_tuple(1, station="b"))
        snapshot = wrapped.checkpoint()
        fresh = adapter()
        fresh.restore(snapshot)
        assert fresh.checkpoint() == snapshot

    def test_restore_rejects_foreign_state(self):
        with pytest.raises(CheckpointError):
            adapter().restore({"stats": {}})

    def test_join_envelope_orders_by_pair_identity(self, make_tuple):
        join = JoinOperator(interval=10.0,
                            predicate="left.station == right.station")
        wrapped = ShardedOperatorAdapter(join, shard_index=1, shard_count=2)
        wrapped.on_tuple(make_tuple(0, station="a", source="l"), port=0)
        wrapped.on_tuple(make_tuple(1, station="a", source="r"), port=1)
        envelope = wrapped.on_timer(10.0)[0]
        entries = envelope.payload[ENTRIES_KEY]
        assert len(entries) == 1
        (order_key, _), = entries
        left_key, right_key = order_key
        assert left_key[1] == "l" and right_key[1] == "r"
        # The pair log is a flush-scoped hook, reset afterwards.
        assert join._pair_log is None


class TestShardMergeOperator:
    def make_envelope(self, shard, epoch, entries, make_tuple, seq=0):
        inner = adapter(index=shard, count=2)
        for i, (station, value) in enumerate(entries):
            inner.on_tuple(make_tuple(i + seq * 10, station=station,
                                      temperature=value))
        envelopes = inner.on_timer(epoch)
        return envelopes[0]

    def test_rejects_unknown_mode(self):
        with pytest.raises(StreamLoaderError, match="mode"):
            ShardMergeOperator(2, "median")

    def test_checkpointable_despite_non_blocking(self):
        merge = ShardMergeOperator(2, "aggregate")
        assert not merge.is_blocking
        assert merge.checkpointable

    def test_waits_for_every_shard(self, make_tuple):
        merge = ShardMergeOperator(2, "aggregate")
        first = self.make_envelope(0, 10.0, [("a", 1.0)], make_tuple)
        assert merge.on_tuple(first) == []
        second = self.make_envelope(1, 10.0, [("b", 2.0)], make_tuple)
        out = merge.on_tuple(second)
        assert [t.payload["station"] for t in out] == ["a", "b"]

    def test_epoch_entries_sorted_across_shards(self, make_tuple):
        merge = ShardMergeOperator(2, "aggregate")
        merge.on_tuple(self.make_envelope(0, 10.0, [("c", 1.0)], make_tuple))
        out = merge.on_tuple(
            self.make_envelope(1, 10.0, [("a", 2.0), ("b", 3.0)], make_tuple)
        )
        assert [t.payload["station"] for t in out] == ["a", "b", "c"]
        # Aggregate mode renumbers like the unsharded flush counter.
        assert [t.seq for t in out] == [1000, 1001, 1002]

    def test_duplicate_epoch_after_restart_is_dropped(self, make_tuple):
        merge = ShardMergeOperator(2, "aggregate")
        first = self.make_envelope(0, 10.0, [("a", 1.0)], make_tuple)
        second = self.make_envelope(1, 10.0, [("b", 2.0)], make_tuple)
        merge.on_tuple(first)
        assert merge.on_tuple(second) != []
        # A replayed envelope for a closed epoch contributes nothing.
        assert merge.on_tuple(first) == []
        assert 10.0 not in merge._pending

    def test_epochs_close_in_time_order(self, make_tuple):
        merge = ShardMergeOperator(2, "aggregate")
        merge.on_tuple(self.make_envelope(0, 10.0, [("a", 1.0)], make_tuple))
        merge.on_tuple(self.make_envelope(0, 20.0, [("a", 2.0)], make_tuple, seq=1))
        # Shard 1's empty punctuation for epoch 10 closes exactly epoch 10;
        # epoch 20 stays pending until shard 1 reports having passed it.
        closed = merge.on_tuple(self.make_envelope(1, 10.0, [], make_tuple))
        assert [t.stamp.time for t in closed] == [10.0]
        out = merge.on_tuple(
            self.make_envelope(1, 20.0, [("b", 1.0)], make_tuple, seq=1)
        )
        assert [t.stamp.time for t in out] == [20.0, 20.0]

    def test_checkpoint_round_trip_preserves_pending(self, make_tuple):
        merge = ShardMergeOperator(2, "aggregate")
        merge.on_tuple(self.make_envelope(0, 10.0, [("a", 1.0)], make_tuple))
        snapshot = merge.checkpoint()
        fresh = ShardMergeOperator(2, "aggregate")
        fresh.restore(snapshot)
        assert fresh.checkpoint() == snapshot
        out = fresh.on_tuple(self.make_envelope(1, 10.0, [("b", 2.0)],
                                                make_tuple))
        assert [t.payload["station"] for t in out] == ["a", "b"]
