"""Unit tests for the columnar tier: batches, kernels, lazy boundary."""

import pytest

from repro.expr.eval import compile_expression
from repro.expr.vectorize import predicate_kernel, values_kernel
from repro.streams.columnar import (
    MIN_COLUMNAR_ROWS,
    ColumnarBatch,
    LazyRows,
)
from repro.streams.filter import FilterOperator
from repro.streams.fused import FusedOperator
from repro.streams.transform import TransformOperator
from repro.streams.tuple import SensorTuple, TupleBatch
from repro.stt.event import SttStamp
from repro.stt.spatial import Point


def _tuples(n=6):
    return [
        SensorTuple(
            payload={"station": f"s{i % 2}", "temperature": 10.0 + i},
            stamp=SttStamp(time=float(i), location=Point(1.0, 2.0)),
            source="src",
            seq=i,
        )
        for i in range(n)
    ]


class TestColumnarBatch:
    def test_from_tuples_transposes_in_field_order(self):
        col = ColumnarBatch.from_tuples(_tuples(3))
        assert col.fields == ("station", "temperature")
        assert col.columns["temperature"] == [10.0, 11.0, 12.0]
        assert col.count == len(col) == 3

    def test_empty_and_heterogeneous_are_not_columnar(self, make_tuple):
        assert ColumnarBatch.from_tuples([]) is None
        mixed = [make_tuple(0), make_tuple(1).with_updates(extra=1)]
        assert ColumnarBatch.from_tuples(mixed) is None

    def test_same_keys_different_order_is_not_columnar(self):
        ts = _tuples(1) + [
            SensorTuple(
                payload={"temperature": 20.0, "station": "s9"},
                stamp=SttStamp(time=9.0, location=Point(1.0, 2.0)),
                source="src",
                seq=9,
            )
        ]
        # Key *order* is part of the parity contract (materialized dicts
        # rebuild in column order), so a reordered payload disqualifies.
        assert ColumnarBatch.from_tuples(ts) is None

    def test_clean_to_tuples_returns_original_objects(self):
        ts = _tuples(4)
        col = ColumnarBatch.from_tuples(ts)
        out = col.to_tuples()
        assert out == ts
        assert all(a is b for a, b in zip(out, ts))
        assert col.to_tuples([1, 3]) == [ts[1], ts[3]]

    def test_fork_isolates_column_installs(self):
        ts = _tuples(3)
        col = ColumnarBatch.from_tuples(ts)
        fork = col.fork()
        fork.set_column("double", [t.payload["temperature"] * 2 for t in ts])
        assert "double" not in col.columns
        assert not col.dirty
        assert fork.dirty
        assert fork.fields == ("station", "temperature", "double")

    def test_dirty_to_tuples_rebuilds_payloads_and_keeps_provenance(self):
        ts = _tuples(4)
        fork = ColumnarBatch.from_tuples(ts).fork()
        fork.set_column("double", [20.0, 22.0, 24.0, 26.0])
        out = fork.to_tuples([0, 2])
        assert [list(t.payload.items()) for t in out] == [
            [("station", "s0"), ("temperature", 10.0), ("double", 20.0)],
            [("station", "s0"), ("temperature", 12.0), ("double", 24.0)],
        ]
        assert type(out[0].payload) is type(ts[0].payload)
        assert out[0].stamp is ts[0].stamp
        assert out[1].seq == 2
        assert out[0].source == "src"
        assert out[0].trace is None

    def test_rename_and_project_follow_row_dict_semantics(self):
        fork = ColumnarBatch.from_tuples(_tuples(2)).fork()
        fork.rename_columns({"temperature": "celsius"})
        assert fork.fields == ("station", "celsius")
        fork.project_columns(["celsius"])
        out = fork.to_tuples()
        assert [dict(t.payload) for t in out] == [
            {"celsius": 10.0},
            {"celsius": 11.0},
        ]

    def test_project_everything_away_keeps_rows_with_empty_payloads(self):
        fork = ColumnarBatch.from_tuples(_tuples(3)).fork()
        fork.project_columns([])
        out = fork.to_tuples([0, 2])
        assert [dict(t.payload) for t in out] == [{}, {}]
        assert [t.seq for t in out] == [0, 2]

    def test_stamp_column_is_cached(self):
        col = ColumnarBatch.from_tuples(_tuples(3))
        stamps = col.stamp_column()
        assert stamps is col.stamp_column()
        assert [s.time for s in stamps] == [0.0, 1.0, 2.0]
        assert col.seq_column() == [0, 1, 2]

    def test_materializer_handles_exotic_field_names(self):
        ts = [
            SensorTuple(
                payload={"it's": 1, 'a "quoted" key': 2.0},
                stamp=SttStamp(time=0.0, location=Point(0.0, 0.0)),
                source="s",
                seq=0,
            )
        ]
        fork = ColumnarBatch.from_tuples(ts).fork()
        fork.set_column("plain", [3])
        out = fork.to_tuples()
        assert dict(out[0].payload) == {"it's": 1, 'a "quoted" key': 2.0, "plain": 3}


class TestLazyRows:
    def test_len_and_bool_do_not_materialize(self):
        col = ColumnarBatch.from_tuples(_tuples(5))
        lazy = LazyRows(col, [0, 2, 4])
        assert len(lazy) == 3
        assert bool(lazy)
        assert lazy._rows is None

    def test_access_materializes_exactly_once(self):
        ts = _tuples(5)
        lazy = LazyRows(ColumnarBatch.from_tuples(ts), [0, 2, 4])
        first = lazy[0]
        rows = lazy._rows
        assert rows is not None
        assert list(lazy) is not None
        assert lazy._rows is rows  # second access reuses the same rows
        assert first is ts[0]

    def test_compares_equal_to_lists(self):
        ts = _tuples(4)
        lazy = LazyRows(ColumnarBatch.from_tuples(ts), range(4))
        assert lazy == ts
        assert lazy == tuple(ts)
        assert not (lazy == ts[:2])


class TestVectorizedKernels:
    def _columns(self):
        return {
            "temperature": [10.0, 20.0, 30.0],
            "station": ["a", "b", "c"],
        }

    def test_predicate_kernel_keeps_true_rows(self):
        kernel = predicate_kernel(compile_expression("temperature > 15"))
        assert kernel.vectorized is True
        kept, errors = kernel(self._columns(), range(3))
        assert kept == [1, 2]
        assert errors == 0

    def test_predicate_kernel_counts_non_boolean_as_error(self):
        kernel = predicate_kernel(compile_expression("temperature"))
        kept, errors = kernel(self._columns(), range(3))
        assert kept == []
        assert errors == 3

    def test_values_kernel_quarantines_failing_rows(self):
        kernel = values_kernel(
            compile_expression("temperature / (temperature - 20)")
        )
        values, errors = kernel(self._columns(), range(3))
        assert errors == [1]
        assert values[1] is None
        assert values[0] == pytest.approx(-1.0)

    def test_missing_column_errors_only_when_reached(self):
        # The presence check fires at the reference, so a short-circuited
        # branch never raises — identical laziness to the scalar path.
        columns = self._columns()
        eager = predicate_kernel(compile_expression("nope > 0"))
        kept, errors = eager(columns, range(3))
        assert (kept, errors) == ([], 3)
        lazy = predicate_kernel(
            compile_expression("temperature > 0 or nope > 0")
        )
        kept, errors = lazy(columns, range(3))
        assert (kept, errors) == ([0, 1, 2], 0)

    def test_qualified_reference_falls_back_to_row_kernel(self):
        kernel = predicate_kernel(compile_expression("left.temperature > 15"))
        assert kernel.vectorized is False
        # Qualified payloads never exist on the single-input column path,
        # so every row errors — exactly like the scalar closure would.
        kept, errors = kernel(self._columns(), range(3))
        assert (kept, errors) == ([], 3)

    def test_fallback_values_kernel_matches_scalar_results(self):
        expression = compile_expression("temperature * 2")
        from repro.expr.vectorize import _fallback_values

        kernel = _fallback_values(expression)
        assert kernel.vectorized is False
        values, errors = kernel(self._columns(), [0, 2])
        assert values == [20.0, 60.0]
        assert errors == []


class TestFusedColumnarGate:
    def _chain(self):
        return FusedOperator(
            [
                FilterOperator("temperature > 10", name="keep"),
                TransformOperator(
                    assignments={"double": "temperature * 2"}, name="dbl"
                ),
            ]
        )

    def test_large_uniform_batches_take_the_columnar_path(self):
        fused = self._chain()
        batch = TupleBatch.of(_tuples(MIN_COLUMNAR_ROWS))
        out = fused.on_batch(batch, 0)
        assert isinstance(out, LazyRows)
        assert [t.payload["double"] for t in out] == [22.0, 24.0, 26.0]

    def test_small_batches_stay_on_the_row_path(self):
        fused = self._chain()
        out = fused.on_batch(TupleBatch.of(_tuples(MIN_COLUMNAR_ROWS - 1)), 0)
        assert isinstance(out, list)

    def test_heterogeneous_batches_fall_back_to_rows(self):
        ts = _tuples(6)
        ts[3] = ts[3].with_updates(extra=1)
        fused = self._chain()
        out = fused.on_batch(TupleBatch.of(ts), 0)
        assert isinstance(out, list)
        assert len(out) == 5

    def test_no_columnar_switch_forces_the_row_path(self):
        fused = self._chain()
        fused.columnar = False
        out = fused.on_batch(TupleBatch.of(_tuples(6)), 0)
        assert isinstance(out, list)
        assert len(out) == 5

    def test_columnar_and_row_paths_agree_bytewise(self):
        batch = TupleBatch.of(_tuples(8))
        fused_col, fused_row = self._chain(), self._chain()
        fused_row.columnar = False
        col_out = list(fused_col.on_batch(batch, 0))
        row_out = fused_row.on_batch(batch, 0)
        assert [list(t.payload.items()) for t in col_out] == [
            list(t.payload.items()) for t in row_out
        ]
        assert [m.stats.snapshot() for m in fused_col.members] == [
            m.stats.snapshot() for m in fused_row.members
        ]


class TestEnvelopeCache:
    def test_columnar_is_cached_on_the_batch(self):
        batch = TupleBatch.of(_tuples(4))
        col = batch.columnar()
        assert batch.columnar() is col

    def test_negative_result_is_cached_too(self, make_tuple):
        batch = TupleBatch.of(
            [make_tuple(0), make_tuple(1).with_updates(extra=1)]
        )
        assert batch.columnar() is None
        assert batch._cols is not None  # the sentinel, not a retry
        assert batch.columnar() is None
