"""Unit tests: on_batch dispatch and the operators' batch fast paths.

Every fast path must agree exactly with N calls of the per-tuple path —
including error quarantine, cull counters, and window cache state.
"""

import pytest

from repro.streams.aggregate import AggregationOperator
from repro.streams.cull import CullTimeOperator
from repro.streams.filter import FilterOperator
from repro.streams.join import JoinOperator
from repro.streams.sink import CallbackSink, CountingSink, ListSink
from repro.streams.transform import TransformOperator, ValidateOperator
from repro.streams.trigger import TriggerOnOperator
from repro.streams.virtual import VirtualPropertyOperator


def batch_of(make_tuple, temps, start=0):
    return [make_tuple(seq=start + i, temperature=t, time=float(start + i))
            for i, t in enumerate(temps)]


class TestOnBatchContract:
    def test_counts_in_and_out(self, make_tuple):
        op = FilterOperator("temperature > 24")
        out = op.on_batch(batch_of(make_tuple, [26.0, 20.0, 30.0]))
        assert [t["temperature"] for t in out] == [26.0, 30.0]
        assert op.stats.tuples_in == 3
        assert op.stats.tuples_out == 2

    def test_matches_per_tuple_path(self, make_tuple):
        temps = [20.0, 25.5, 24.0, 31.0, -3.0]
        batched = FilterOperator("temperature > 24")
        single = FilterOperator("temperature > 24")
        out_batched = batched.on_batch(batch_of(make_tuple, temps))
        out_single = []
        for tuple_ in batch_of(make_tuple, temps):
            out_single.extend(single.on_tuple(tuple_))
        assert out_batched == out_single
        assert batched.stats.snapshot() == single.stats.snapshot()

    def test_bad_port_raises(self, make_tuple):
        from repro.errors import StreamLoaderError

        with pytest.raises(StreamLoaderError):
            FilterOperator("temperature > 0").on_batch(
                batch_of(make_tuple, [1.0]), port=1
            )


class TestErrorQuarantine:
    def test_filter_quarantines_bad_tuples(self, make_tuple):
        op = FilterOperator("missing_attr > 0")
        out = op.on_batch(batch_of(make_tuple, [1.0, 2.0]))
        assert out == []
        assert op.stats.errors == 2

    def test_partial_batch_survives(self, make_tuple):
        op = VirtualPropertyOperator("fahrenheit",
                                     "temperature * 1.8 + 32")
        bad = make_tuple(9, temperature=10.0)
        bad = bad.with_payload({"station": "s"})  # no temperature
        good = make_tuple(1, temperature=10.0)
        out = op.on_batch([bad, good])
        assert len(out) == 1
        assert out[0]["fahrenheit"] == 50.0
        assert op.stats.errors == 1

    def test_validate_counts_rule_failures(self, make_tuple):
        op = ValidateOperator(rules=("temperature > 0",))
        out = op.on_batch(batch_of(make_tuple, [5.0, -1.0, 7.0]))
        assert [t["temperature"] for t in out] == [5.0, 7.0]
        assert op.stats.errors == 1


class TestStatefulFastPaths:
    def test_cull_counter_spans_batches(self, make_tuple):
        op = CullTimeOperator(rate=3, start=0.0, end=1e9)
        first = op.on_batch(batch_of(make_tuple, [1.0, 2.0], start=0))
        second = op.on_batch(batch_of(make_tuple, [3.0, 4.0], start=2))
        # One out of every three across the batch boundary: seq 2 only.
        assert [t.seq for t in first + second] == [2]

    def test_transform_batch(self, make_tuple):
        op = TransformOperator(assignments={"temperature":
                                            "temperature + 1"})
        out = op.on_batch(batch_of(make_tuple, [1.0, 2.0]))
        assert [t["temperature"] for t in out] == [2.0, 3.0]

    def test_aggregate_accumulates_whole_batch(self, make_tuple):
        op = AggregationOperator(interval=3600.0,
                                 attributes=["temperature"],
                                 function="AVG")
        assert op.on_batch(batch_of(make_tuple, [10.0, 20.0, 30.0])) == []
        out = op.on_timer(3600.0)
        assert len(out) == 1
        assert out[0]["avg_temperature"] == pytest.approx(20.0)

    def test_join_routes_batch_to_port_cache(self, make_tuple):
        op = JoinOperator(interval=60.0,
                          predicate="left.station == right.station")
        op.on_batch(batch_of(make_tuple, [1.0, 2.0]), port=0)
        op.on_batch(batch_of(make_tuple, [3.0]), port=1)
        assert len(op.left_cache) == 2
        assert len(op.right_cache) == 1

    def test_trigger_window_fills_from_batch(self, make_tuple):
        op = TriggerOnOperator(interval=300.0,
                               condition="avg_temperature > 25",
                               targets=("s1",), window=3600.0)
        op.on_batch(batch_of(make_tuple, [30.0, 31.0, 32.0]))
        assert len(op.cache) == 3
        op.on_timer(300.0)
        # The window statistics saw the batched tuples: the gate opened.
        assert op._last_command is True


class TestSinks:
    def test_list_sink_extends(self, make_tuple):
        sink = ListSink()
        batch = batch_of(make_tuple, [1.0, 2.0, 3.0])
        sink.on_batch(batch)
        assert sink.received == batch

    def test_counting_sink(self, make_tuple):
        sink = CountingSink()
        sink.on_batch(batch_of(make_tuple, [1.0, 2.0]))
        assert sink.count == 2

    def test_callback_sink_stays_per_tuple(self, make_tuple):
        seen = []
        sink = CallbackSink(seen.append)
        batch = batch_of(make_tuple, [1.0, 2.0])
        sink.on_batch(batch)
        assert seen == batch
