"""Unit tests for sinks."""

from repro.streams.sink import CallbackSink, CountingSink, ListSink


class TestListSink:
    def test_collects_in_order(self, make_tuple):
        sink = ListSink()
        for i in range(3):
            assert sink.on_tuple(make_tuple(i)) == []
        assert [t.seq for t in sink.received] == [0, 1, 2]

    def test_reset_clears(self, make_tuple):
        sink = ListSink()
        sink.on_tuple(make_tuple(0))
        sink.reset()
        assert sink.received == []


class TestCallbackSink:
    def test_invokes_callback(self, make_tuple):
        seen = []
        sink = CallbackSink(seen.append)
        sink.on_tuple(make_tuple(0))
        assert len(seen) == 1

    def test_counts_stats(self, make_tuple):
        sink = CallbackSink(lambda t: None)
        sink.on_tuple(make_tuple(0))
        assert sink.stats.tuples_in == 1
        assert sink.stats.tuples_out == 0


class TestCountingSink:
    def test_counts_without_retaining(self, make_tuple):
        sink = CountingSink()
        for i in range(100):
            sink.on_tuple(make_tuple(i))
        assert sink.count == 100

    def test_reset(self, make_tuple):
        sink = CountingSink()
        sink.on_tuple(make_tuple(0))
        sink.reset()
        assert sink.count == 0
