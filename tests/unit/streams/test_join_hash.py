"""Hash-join flush vs the nested-loop reference (:mod:`repro.streams.join`).

The hash path must be observationally identical to the nested loop —
same output tuples, same left-major order, same seq numbers — whenever it
engages, and must fall back to the nested loop whenever its hash==eq
assumptions don't hold (missing key attributes, non-scalar key values,
non-equi predicates).
"""

import math

import pytest

from repro.streams.join import JoinOperator
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point


def make_tuple(i, **payload):
    return SensorTuple(
        payload=payload,
        stamp=SttStamp(time=float(i), location=Point(34.5, 135.3)),
        source=f"s{i}",
        seq=i,
    )


def run_flush(predicate, left, right, hash_join=True):
    op = JoinOperator(interval=60.0, predicate=predicate, hash_join=hash_join)
    for t in left:
        op.on_tuple(t, port=0)
    for t in right:
        op.on_tuple(t, port=1)
    return op.on_timer(60.0), op


def assert_same_output(predicate, left, right):
    """Hash and nested-loop flushes agree on tuples, order, and errors."""
    hashed, hash_op = run_flush(predicate, left, right, hash_join=True)
    nested, nested_op = run_flush(predicate, left, right, hash_join=False)
    assert [(t.payload, t.seq, t.source) for t in hashed] == [
        (t.payload, t.seq, t.source) for t in nested
    ]
    assert [t.stamp for t in hashed] == [t.stamp for t in nested]
    assert hash_op.stats.errors == nested_op.stats.errors
    return hashed


class TestEquiKeyExtraction:
    def extract(self, predicate):
        return JoinOperator(interval=60.0, predicate=predicate).equi_keys

    def test_simple_equality(self):
        assert self.extract("left.station == right.station") == [
            ("station", "station")
        ]

    def test_reversed_orientation_normalized(self):
        assert self.extract("right.b == left.a") == [("a", "b")]

    def test_and_chain_collects_all(self):
        keys = self.extract(
            "left.a == right.a and left.v < right.v and left.b == right.b"
        )
        assert keys == [("a", "a"), ("b", "b")]

    def test_non_equi_predicates_have_no_keys(self):
        assert self.extract("left.v < right.v") == []
        assert self.extract("left.a == right.a or left.b == right.b") == []
        assert self.extract("left.a == 'fixed'") == []
        assert self.extract("left.a != right.a") == []

    def test_no_keys_means_nested_loop(self):
        op = JoinOperator(interval=60.0, predicate="left.v < right.v")
        assert op.equi_keys == []


class TestFlushParity:
    def test_single_key_parity(self):
        left = [make_tuple(i, station=f"st-{i % 5}", v=float(i)) for i in range(30)]
        right = [make_tuple(i, station=f"st-{i % 7}", w=float(i)) for i in range(30)]
        out = assert_same_output("left.station == right.station", left, right)
        assert out  # non-degenerate: something actually joined

    def test_composite_key_with_residual_predicate(self):
        left = [make_tuple(i, a=i % 3, b=i % 2, v=float(i)) for i in range(20)]
        right = [make_tuple(i, a=i % 3, b=i % 2, w=float(i)) for i in range(20)]
        assert_same_output(
            "left.a == right.a and left.b == right.b and left.v < right.w",
            left, right,
        )

    def test_mixed_scalar_key_types(self):
        # 1 == 1.0 == True under the evaluator; the hash must agree.
        values = [1, 1.0, True, 0, False, None, "x"]
        left = [make_tuple(i, k=v) for i, v in enumerate(values)]
        right = [make_tuple(i, k=v) for i, v in enumerate(reversed(values))]
        out = assert_same_output("left.k == right.k", left, right)
        assert out

    def test_nan_keys_never_match(self):
        left = [make_tuple(0, k=math.nan), make_tuple(1, k=1.0)]
        right = [make_tuple(0, k=math.nan), make_tuple(1, k=1.0)]
        out = assert_same_output("left.k == right.k", left, right)
        assert len(out) == 1  # only the 1.0 pair

    def test_empty_sides_emit_nothing(self):
        left = [make_tuple(0, k=1)]
        assert run_flush("left.k == right.k", left, [])[0] == []
        assert run_flush("left.k == right.k", [], left)[0] == []


class TestFallback:
    def test_missing_key_attribute_falls_back(self):
        # The evaluator raises per pair on a missing attribute; the hash
        # path cannot reproduce that, so the whole flush falls back and
        # the error counts match the nested loop exactly.
        left = [make_tuple(0, k=1), make_tuple(1, other=2)]
        right = [make_tuple(0, k=1)]
        hashed, op = run_flush("left.k == right.k", left, right)
        assert op.stats.errors == 1  # the pair missing `k`
        assert len(hashed) == 1
        assert_same_output("left.k == right.k", left, right)

    def test_non_scalar_key_value_falls_back(self):
        left = [make_tuple(0, k=(1, 2)), make_tuple(1, k=1)]
        right = [make_tuple(0, k=1)]
        assert_same_output("left.k == right.k", left, right)

    def test_hash_join_disabled_uses_nested_loop(self):
        left = [make_tuple(i, k=i % 2) for i in range(4)]
        right = [make_tuple(i, k=i % 2) for i in range(4)]
        out, op = run_flush("left.k == right.k", left, right, hash_join=False)
        assert op.hash_join is False
        assert len(out) == 8
