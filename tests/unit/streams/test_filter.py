"""Unit tests for the Filter operator — σ(s, cond)."""

import pytest

from repro.streams.filter import FilterOperator


class TestFilter:
    def test_passes_matching(self, make_tuple):
        op = FilterOperator("temperature > 24")
        out = op.on_tuple(make_tuple(0, temperature=26.0))
        assert len(out) == 1
        assert out[0]["temperature"] == 26.0

    def test_drops_non_matching(self, make_tuple):
        op = FilterOperator("temperature > 24")
        assert op.on_tuple(make_tuple(0, temperature=20.0)) == []

    def test_boundary_not_included(self, make_tuple):
        op = FilterOperator("temperature > 24")
        assert op.on_tuple(make_tuple(0, temperature=24.0)) == []

    def test_tuple_passes_unmodified(self, make_tuple):
        op = FilterOperator("humidity >= 0")
        tuple_ = make_tuple(0)
        assert op.on_tuple(tuple_)[0] is tuple_

    def test_compound_condition(self, make_tuple):
        op = FilterOperator("temperature > 24 and humidity < 0.7")
        assert op.on_tuple(make_tuple(0, temperature=26.0, humidity=0.6))
        assert not op.on_tuple(make_tuple(0, temperature=26.0, humidity=0.9))

    def test_is_non_blocking(self):
        op = FilterOperator("temperature > 24")
        assert not op.is_blocking
        assert op.interval is None
        assert op.on_timer(100.0) == []

    def test_stats_counted(self, make_tuple):
        op = FilterOperator("temperature > 24")
        op.on_tuple(make_tuple(0, temperature=26.0))
        op.on_tuple(make_tuple(1, temperature=20.0))
        assert op.stats.tuples_in == 2
        assert op.stats.tuples_out == 1

    def test_error_quarantine(self, make_tuple):
        # Condition references an attribute missing from the tuple.
        op = FilterOperator("missing_attr > 1")
        out = op.on_tuple(make_tuple(0))
        assert out == []
        assert op.stats.errors == 1
        # The operator keeps working for subsequent tuples.
        op2 = FilterOperator("temperature > 0")
        assert op2.on_tuple(make_tuple(1))

    def test_describe_shows_sigma(self):
        assert "σ" in FilterOperator("temperature > 24").describe()

    def test_reset_clears_stats(self, make_tuple):
        op = FilterOperator("temperature > 24")
        op.on_tuple(make_tuple(0, temperature=30.0))
        op.reset()
        assert op.stats.tuples_in == 0

    def test_invalid_port_raises(self, make_tuple):
        from repro.errors import StreamLoaderError

        op = FilterOperator("temperature > 24")
        with pytest.raises(StreamLoaderError, match="invalid port"):
            op.on_tuple(make_tuple(0), port=1)
