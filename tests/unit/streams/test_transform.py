"""Unit tests for Transform and Validate operators."""

import pytest

from repro.errors import DataflowError
from repro.streams.transform import TransformOperator, ValidateOperator


class TestAssignments:
    def test_unit_conversion(self, make_tuple):
        op = TransformOperator(
            {"temperature": "convert(temperature, 'celsius', 'fahrenheit')"}
        )
        out = op.on_tuple(make_tuple(0, temperature=100.0))
        assert out[0]["temperature"] == pytest.approx(212.0)

    def test_new_attribute_via_assignment(self, make_tuple):
        op = TransformOperator({"double_temp": "temperature * 2"})
        out = op.on_tuple(make_tuple(0, temperature=21.0))
        assert out[0]["double_temp"] == 42.0
        assert out[0]["temperature"] == 21.0

    def test_assignments_see_original_values_only(self, make_tuple):
        # Both assignments read the input; order must not matter.
        op = TransformOperator(
            {"temperature": "temperature + 1", "copy": "temperature"}
        )
        out = op.on_tuple(make_tuple(0, temperature=10.0))
        assert out[0]["temperature"] == 11.0
        assert out[0]["copy"] == 10.0

    def test_error_quarantined(self, make_tuple):
        op = TransformOperator({"x": "1 / temperature"})
        out = op.on_tuple(make_tuple(0, temperature=0.0))
        assert out == []
        assert op.stats.errors == 1


class TestRenameProject:
    def test_rename(self, make_tuple):
        op = TransformOperator(rename={"temperature": "temp_c"})
        out = op.on_tuple(make_tuple(0))
        assert "temp_c" in out[0] and "temperature" not in out[0]

    def test_project(self, make_tuple):
        op = TransformOperator(project=["station"])
        out = op.on_tuple(make_tuple(0))
        assert set(out[0].payload) == {"station"}

    def test_assign_rename_project_pipeline(self, make_tuple):
        op = TransformOperator(
            assignments={"f": "convert(temperature, 'c', 'f')"},
            rename={"f": "temp_f"},
            project=["temp_f", "station"],
        )
        out = op.on_tuple(make_tuple(0, temperature=0.0))
        assert out[0]["temp_f"] == pytest.approx(32.0)
        assert set(out[0].payload) == {"temp_f", "station"}

    def test_empty_transform_raises(self):
        with pytest.raises(DataflowError):
            TransformOperator()


class TestValidate:
    def test_passing_rules(self, make_tuple):
        op = ValidateOperator(["temperature > -50", "humidity >= 0"])
        assert len(op.on_tuple(make_tuple(0))) == 1
        assert op.stats.errors == 0

    def test_violation_quarantined(self, make_tuple):
        op = ValidateOperator(["humidity <= 1.0"])
        out = op.on_tuple(make_tuple(0, humidity=1.5))
        assert out == []
        assert op.stats.errors == 1

    def test_pattern_rule(self, make_tuple):
        op = ValidateOperator(["matches(station, 'station-[0-9]+')"])
        assert op.on_tuple(make_tuple(0, station="station-12"))
        assert not op.on_tuple(make_tuple(1, station="bad name"))

    def test_all_rules_must_hold(self, make_tuple):
        op = ValidateOperator(["temperature > 0", "humidity > 0.9"])
        assert not op.on_tuple(make_tuple(0, temperature=5.0, humidity=0.5))

    def test_no_rules_raises(self):
        with pytest.raises(DataflowError):
            ValidateOperator([])

    def test_stream_continues_after_violations(self, make_tuple):
        op = ValidateOperator(["humidity <= 1.0"])
        op.on_tuple(make_tuple(0, humidity=2.0))
        assert op.on_tuple(make_tuple(1, humidity=0.5))
