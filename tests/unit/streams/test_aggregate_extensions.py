"""Unit tests for grouped and sliding aggregation."""

import pytest

from repro.errors import DataflowError
from repro.streams.aggregate import AggregationOperator


class TestGroupBy:
    def test_one_output_per_group(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="AVG", group_by="station")
        op.on_tuple(make_tuple(0, temperature=10.0, station="umeda"))
        op.on_tuple(make_tuple(1, temperature=20.0, station="umeda"))
        op.on_tuple(make_tuple(2, temperature=30.0, station="namba"))
        out = op.on_timer(60.0)
        assert len(out) == 2
        by_station = {t["station"]: t["avg_temperature"] for t in out}
        assert by_station == {"namba": 30.0, "umeda": 15.0}

    def test_groups_sorted_deterministically(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="COUNT", group_by="station")
        for station in ("zebra", "alpha", "middle"):
            op.on_tuple(make_tuple(0, station=station))
        out = op.on_timer(60.0)
        assert [t["station"] for t in out] == ["alpha", "middle", "zebra"]

    def test_group_key_in_payload(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="MAX", group_by="station")
        op.on_tuple(make_tuple(0, station="x"))
        out = op.on_timer(60.0)
        assert set(out[0].payload) == {"station", "max_temperature"}

    def test_group_by_aggregated_attribute_raises(self):
        with pytest.raises(DataflowError, match="cannot also be aggregated"):
            AggregationOperator(interval=60.0, attributes=["temperature"],
                                function="AVG", group_by="temperature")

    def test_missing_group_key_becomes_none_group(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="COUNT", group_by="ghost")
        op.on_tuple(make_tuple(0))
        out = op.on_timer(60.0)
        assert len(out) == 1
        assert out[0]["ghost"] is None


class TestSlidingWindow:
    def test_window_shorter_than_interval_raises(self):
        with pytest.raises(DataflowError, match="cover at least one"):
            AggregationOperator(interval=600.0, attributes=["x"],
                                function="AVG", window=60.0)

    def test_sliding_retains_across_flushes(self, make_tuple):
        op = AggregationOperator(interval=300.0, attributes=["temperature"],
                                 function="AVG", window=3600.0)
        op.on_tuple(make_tuple(0, temperature=10.0, time=0.0))
        first = op.on_timer(300.0)
        op.on_tuple(make_tuple(1, temperature=30.0, time=400.0))
        second = op.on_timer(600.0)
        # Tumbling would have dropped the t=0 reading; sliding keeps it.
        assert first[0]["avg_temperature"] == 10.0
        assert second[0]["avg_temperature"] == 20.0

    def test_sliding_evicts_beyond_lookback(self, make_tuple):
        op = AggregationOperator(interval=300.0, attributes=["temperature"],
                                 function="AVG", window=600.0)
        op.on_tuple(make_tuple(0, temperature=100.0, time=0.0))
        op.on_tuple(make_tuple(1, temperature=10.0, time=700.0))
        out = op.on_timer(900.0)  # lookback [300, 900): t=0 evicted
        assert out[0]["avg_temperature"] == 10.0

    def test_tumbling_is_default(self, make_tuple):
        op = AggregationOperator(interval=300.0, attributes=["temperature"],
                                 function="COUNT")
        op.on_tuple(make_tuple(0, time=0.0))
        op.on_timer(300.0)
        assert op.on_timer(600.0) == []  # drained


class TestSpecIntegration:
    def test_spec_round_trip_with_new_fields(self):
        from repro.dataflow.ops import AggregationSpec, spec_from_dict

        spec = AggregationSpec(interval=300.0, attributes=("temperature",),
                               function="AVG", group_by="station",
                               window=3600.0)
        assert spec_from_dict(spec.to_dict()) == spec

    def test_schema_includes_group_key(self, weather_schema):
        from repro.dataflow.ops import AggregationSpec

        spec = AggregationSpec(interval=300.0, attributes=("temperature",),
                               function="AVG", group_by="station")
        schema = spec.infer_schema([weather_schema])
        assert schema.names == ("station", "avg_temperature")

    def test_schema_rejects_bad_group_key(self, weather_schema):
        from repro.dataflow.ops import AggregationSpec
        from repro.errors import SchemaError

        spec = AggregationSpec(interval=300.0, attributes=("temperature",),
                               function="AVG", group_by="ghost")
        with pytest.raises(SchemaError):
            spec.infer_schema([weather_schema])

    def test_spec_window_validation(self, weather_schema):
        from repro.dataflow.ops import AggregationSpec

        spec = AggregationSpec(interval=600.0, attributes=("temperature",),
                               function="AVG", window=60.0)
        with pytest.raises(DataflowError):
            spec.infer_schema([weather_schema])
