"""Unit tests for the Virtual Property operator — ⊎ s⟨p, spec⟩."""

import pytest

from repro.errors import DataflowError
from repro.streams.virtual import APPARENT_TEMPERATURE_SPEC, VirtualPropertyOperator


class TestVirtualProperty:
    def test_adds_attribute(self, make_tuple):
        op = VirtualPropertyOperator("double", "temperature * 2")
        out = op.on_tuple(make_tuple(0, temperature=10.0))
        assert out[0]["double"] == 20.0
        assert "temperature" in out[0]

    def test_apparent_temperature_example(self, make_tuple):
        # The paper's running example: apparent temperature from
        # temperature and humidity.  Hot + humid must feel hotter than dry.
        op = VirtualPropertyOperator("apparent", APPARENT_TEMPERATURE_SPEC)
        humid = op.on_tuple(make_tuple(0, temperature=32.0, humidity=0.8))
        dry = op.on_tuple(make_tuple(1, temperature=32.0, humidity=0.2))
        assert humid[0]["apparent"] > dry[0]["apparent"]
        assert humid[0]["apparent"] > 32.0

    def test_collision_quarantined(self, make_tuple):
        op = VirtualPropertyOperator("temperature", "humidity * 100")
        out = op.on_tuple(make_tuple(0))
        assert out == []
        assert op.stats.errors == 1

    def test_empty_name_raises(self):
        with pytest.raises(DataflowError):
            VirtualPropertyOperator("", "1 + 1")

    def test_evaluation_error_quarantined(self, make_tuple):
        op = VirtualPropertyOperator("bad", "sqrt(temperature - 100)")
        out = op.on_tuple(make_tuple(0, temperature=20.0))
        assert out == []
        assert op.stats.errors == 1

    def test_string_property(self, make_tuple):
        op = VirtualPropertyOperator("label", "concat('st:', station)")
        out = op.on_tuple(make_tuple(0, station="umeda"))
        assert out[0]["label"] == "st:umeda"

    def test_non_blocking(self):
        op = VirtualPropertyOperator("x", "1 + 1")
        assert not op.is_blocking
