"""Unit tests for :class:`repro.streams.fused.FusedOperator`."""

import pytest

from repro.errors import CheckpointError, StreamLoaderError
from repro.obs.metrics import MetricsRegistry
from repro.streams.aggregate import AggregationOperator
from repro.streams.cull import CullTimeOperator
from repro.streams.filter import FilterOperator
from repro.streams.fused import FUSED_NAME_SEPARATOR, FusedOperator
from repro.streams.join import JoinOperator
from repro.streams.transform import TransformOperator
from repro.streams.virtual import VirtualPropertyOperator


def _chain():
    return FusedOperator([
        FilterOperator("temperature > 24", name="keep"),
        TransformOperator({"double": "temperature * 2"}, name="ident"),
    ])


class TestConstruction:
    def test_name_joins_members(self):
        fused = _chain()
        assert fused.name == f"keep{FUSED_NAME_SEPARATOR}ident"

    def test_cost_is_member_sum(self):
        members = [FilterOperator("temperature > 24"),
                   TransformOperator({"x": "temperature"})]
        fused = FusedOperator(members)
        assert fused.cost_per_tuple == pytest.approx(
            sum(m.cost_per_tuple for m in members)
        )

    def test_rejects_short_chain(self):
        with pytest.raises(StreamLoaderError, match="at least 2"):
            FusedOperator([FilterOperator("temperature > 24")])

    def test_rejects_blocking_member(self):
        with pytest.raises(StreamLoaderError, match="blocking"):
            FusedOperator([
                FilterOperator("temperature > 24"),
                AggregationOperator(interval=60.0,
                                    attributes=["temperature"],
                                    function="AVG"),
            ])

    def test_rejects_multi_input_member(self):
        join = JoinOperator(interval=60.0,
                            predicate="left.station == right.station")
        with pytest.raises(StreamLoaderError):
            FusedOperator([FilterOperator("temperature > 24"), join])

    def test_stays_non_blocking_and_uncheckpointed(self):
        fused = _chain()
        assert not fused.is_blocking
        assert not fused.checkpointable


class TestDataPath:
    def test_tuple_traverses_whole_chain(self, make_tuple):
        fused = _chain()
        out = fused.on_tuple(make_tuple(0, temperature=26.0))
        assert len(out) == 1
        assert out[0]["double"] == 52.0

    def test_drop_short_circuits_downstream(self, make_tuple):
        fused = _chain()
        assert fused.on_tuple(make_tuple(0, temperature=20.0)) == []
        # The transform never saw the dropped tuple.
        assert fused.members[1].stats.tuples_in == 0

    def test_member_stats_counted_individually(self, make_tuple):
        fused = _chain()
        fused.on_tuple(make_tuple(0, temperature=26.0))
        fused.on_tuple(make_tuple(1, temperature=20.0))  # dropped at filter
        head, tail = fused.members
        assert (head.stats.tuples_in, head.stats.tuples_out) == (2, 1)
        assert (tail.stats.tuples_in, tail.stats.tuples_out) == (1, 1)
        # The wrapper's own stats see the chain as a whole.
        assert (fused.stats.tuples_in, fused.stats.tuples_out) == (2, 1)

    def test_error_quarantined_at_the_failing_member(self, make_tuple):
        fused = FusedOperator([
            FilterOperator("humidity >= 0", name="keep"),
            TransformOperator({"x": "1 / temperature"}, name="div"),
        ])
        assert fused.on_tuple(make_tuple(0, temperature=0.0)) == []
        assert fused.members[0].stats.errors == 0
        assert fused.members[1].stats.errors == 1

    def test_batch_path_matches_tuple_path(self, make_tuple):
        tuples = [make_tuple(i, temperature=20.0 + i) for i in range(10)]
        one_by_one = _chain()
        batched = _chain()
        expected = [t for t in tuples for t in one_by_one.on_tuple(t)]
        got = batched.on_batch(list(tuples))
        assert [t.values() for t in got] == [t.values() for t in expected]
        for lhs, rhs in zip(one_by_one.members, batched.members):
            assert lhs.stats.snapshot() == rhs.stats.snapshot()

    def test_stateful_member_keeps_state_across_batches(self, make_tuple):
        fused = FusedOperator([
            FilterOperator("humidity >= 0", name="keep"),
            CullTimeOperator(rate=3, start=0.0, end=1e9, name="cull"),
        ])
        out = []
        for start in (0, 4):
            out.extend(fused.on_batch(
                [make_tuple(i, time=float(i)) for i in range(start, start + 4)]
            ))
        # 8 tuples through a 1-in-3 down-sampler: the counter must span
        # the batch boundary (tuples 3, 6 survive as the 3rd and 6th).
        assert len(out) == 2

    def test_describe_names_members(self):
        fused = _chain()
        text = fused.describe()
        assert text.startswith("fused(")
        assert "->" in text


class TestLifecycle:
    def test_reset_clears_members(self, make_tuple):
        fused = _chain()
        fused.on_tuple(make_tuple(0, temperature=26.0))
        fused.reset()
        assert fused.stats.tuples_in == 0
        assert all(m.stats.tuples_in == 0 for m in fused.members)

    def test_checkpoint_roundtrip(self, make_tuple):
        fused = _chain()
        fused.on_tuple(make_tuple(0, temperature=26.0))
        state = fused.checkpoint()
        clone = _chain()
        clone.restore(state)
        assert clone.stats.snapshot() == fused.stats.snapshot()
        for lhs, rhs in zip(clone.members, fused.members):
            assert lhs.stats.snapshot() == rhs.stats.snapshot()

    def test_restore_rejects_wrong_arity(self):
        state = _chain().checkpoint()
        three = FusedOperator([
            FilterOperator("temperature > 24"),
            TransformOperator({"x": "temperature"}),
            VirtualPropertyOperator("y", "temperature + 1"),
        ])
        with pytest.raises(CheckpointError, match="does not match"):
            three.restore(state)

    def test_restore_rejects_plain_checkpoint(self):
        fused = _chain()
        plain = FilterOperator("temperature > 24").checkpoint()
        with pytest.raises(CheckpointError):
            fused.restore(plain)


class TestMetricsLabels:
    """Per-operator counters must survive the fused process renaming.

    Regression guard: a fused process is named ``a+b`` but its metrics
    must keep reporting the *member* labels ``prog:a`` / ``prog:b`` —
    collapsing them into one ``prog:a+b`` series would break every
    dashboard keyed on operator names.
    """

    def test_counters_keep_member_labels(self, make_tuple):
        fused = _chain()
        metrics = MetricsRegistry()
        fused.bind_obs(metrics, ["prog:keep", "prog:ident"])
        fused.on_tuple(make_tuple(0, temperature=26.0))
        fused.on_tuple(make_tuple(1, temperature=20.0))
        head = metrics.get("process_tuples_total", process="prog:keep")
        tail = metrics.get("process_tuples_total", process="prog:ident")
        assert head is not None and head.value == 2
        assert tail is not None and tail.value == 1

    def test_no_fused_label_is_registered(self, make_tuple):
        fused = _chain()
        metrics = MetricsRegistry()
        fused.bind_obs(metrics, ["prog:keep", "prog:ident"])
        fused.on_batch([make_tuple(0, temperature=26.0)])
        fused_label = f"prog:keep{FUSED_NAME_SEPARATOR}ident"
        assert metrics.get("process_tuples_total", process=fused_label) is None
        assert FUSED_NAME_SEPARATOR not in metrics.expose().replace(
            "process_tuples_total", ""
        )

    def test_batch_counts_match_tuple_counts(self, make_tuple):
        tuples = [make_tuple(i, temperature=20.0 + i) for i in range(8)]
        for feed in ("tuple", "batch"):
            fused = _chain()
            metrics = MetricsRegistry()
            fused.bind_obs(metrics, ["prog:keep", "prog:ident"])
            if feed == "tuple":
                for tuple_ in tuples:
                    fused.on_tuple(tuple_)
            else:
                fused.on_batch(list(tuples))
            head = metrics.get("process_tuples_total", process="prog:keep")
            tail = metrics.get("process_tuples_total", process="prog:ident")
            assert head.value == 8
            assert tail.value == sum(
                1 for t in tuples if t["temperature"] > 24
            )

    def test_bind_obs_arity_checked(self):
        fused = _chain()
        with pytest.raises(StreamLoaderError, match="process ids"):
            fused.bind_obs(MetricsRegistry(), ["prog:keep"])

    def test_owns_tuple_metrics_flag(self):
        # The hosting OperatorProcess keys off this attribute to skip its
        # own counter registration.
        assert FusedOperator.owns_tuple_metrics is True
