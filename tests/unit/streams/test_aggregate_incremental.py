"""Incremental aggregation accumulators vs the rescan reference path.

Satellite of the hot-path PR: ``AggregationOperator(incremental=True)``
maintains per-group running count/sum/min/max and a running bounding box;
these tests pin its outputs against ``incremental=False`` (the original
rescan-every-flush implementation, kept verbatim) and pin that the
accumulators are rebuilt faithfully across ``checkpoint()``/``restore()``.

AVG/SUM use approximate comparison: a running sum accumulates ~1e-15 of
float drift relative to numpy's pairwise summation — documented behaviour,
not a bug.
"""

import pytest

from repro.streams.aggregate import AggregationOperator
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

FUNCTIONS = ["COUNT", "AVG", "SUM", "MIN", "MAX"]


def make_tuple(i, station="st-0", value=None, at=None, payload=None):
    return SensorTuple(
        payload=payload if payload is not None else {
            "station": station,
            "temperature": value if value is not None else float(i % 13),
        },
        stamp=SttStamp(
            time=float(i) if at is None else at,
            location=Point(34.5 + (i % 5) * 0.01, 135.3 + (i % 3) * 0.01),
        ),
        source="test",
        seq=i,
    )


def pair(function, **kwargs):
    """(incremental, rescan) operators with identical configuration."""
    common = dict(interval=60.0, attributes=["temperature"], function=function)
    common.update(kwargs)
    return (
        AggregationOperator(incremental=True, **common),
        AggregationOperator(incremental=False, **common),
    )


def assert_outputs_match(incremental, rescan):
    assert len(incremental) == len(rescan)
    for inc, ref in zip(incremental, rescan):
        assert set(inc.payload) == set(ref.payload)
        for key, ref_value in ref.payload.items():
            if isinstance(ref_value, float):
                assert inc.payload[key] == pytest.approx(ref_value, abs=1e-9)
            else:
                assert inc.payload[key] == ref_value
        assert inc.stamp == ref.stamp
        assert inc.source == ref.source
        assert inc.seq == ref.seq


class TestFlushParity:
    @pytest.mark.parametrize("function", FUNCTIONS)
    def test_tumbling_grouped(self, function):
        inc_op, ref_op = pair(function, group_by="station")
        for i in range(200):
            tuple_ = make_tuple(i, station=f"st-{i % 4}")
            inc_op.on_tuple(tuple_)
            ref_op.on_tuple(tuple_)
        assert_outputs_match(inc_op.on_timer(60.0), ref_op.on_timer(60.0))
        # Tumbling consumed the window: the next flush is empty for both.
        assert inc_op.on_timer(120.0) == ref_op.on_timer(120.0) == []

    @pytest.mark.parametrize("function", FUNCTIONS)
    def test_sliding_window_prunes_identically(self, function):
        inc_op, ref_op = pair(function, window=100.0, group_by="station")
        for i in range(300):
            tuple_ = make_tuple(i, station=f"st-{i % 3}", at=float(i))
            inc_op.on_tuple(tuple_)
            ref_op.on_tuple(tuple_)
        for now in (300.0, 360.0):
            assert_outputs_match(inc_op.on_timer(now), ref_op.on_timer(now))

    def test_cache_overflow_evictions_tracked(self):
        # A tiny cache forces evictions through on_evict; accumulators must
        # retire the departed tuples exactly like the rescan of what's left.
        inc_op, ref_op = pair("MIN", group_by="station", max_cache=25)
        for i in range(120):
            tuple_ = make_tuple(i, station=f"st-{i % 4}", value=float((i * 7) % 31))
            inc_op.on_tuple(tuple_)
            ref_op.on_tuple(tuple_)
        assert_outputs_match(inc_op.on_timer(60.0), ref_op.on_timer(60.0))

    def test_eviction_of_extremum_recomputes(self):
        op = AggregationOperator(
            interval=60.0, attributes=["temperature"], function="MAX",
            incremental=True, max_cache=3,
        )
        for i, value in enumerate([50.0, 1.0, 2.0, 3.0]):  # 50.0 evicted
            op.on_tuple(make_tuple(i, value=value))
        [out] = op.on_timer(60.0)
        assert out.payload["max_temperature"] == 3.0

    def test_null_and_non_numeric_values_fall_back(self):
        # Non-numeric values can't be accumulated; that attribute rescans
        # at flush and must match the reference path, nulls excluded.
        inc_op, ref_op = pair("COUNT")
        payloads = [
            {"temperature": 1.5}, {"temperature": None}, {"temperature": True},
            {"temperature": 3}, {},
        ]
        for i, payload in enumerate(payloads):
            tuple_ = make_tuple(i, payload=dict(payload))
            inc_op.on_tuple(tuple_)
            ref_op.on_tuple(tuple_)
        assert_outputs_match(inc_op.on_timer(60.0), ref_op.on_timer(60.0))

    def test_all_null_group_emits_none(self):
        inc_op, ref_op = pair("AVG")
        for i in range(3):
            tuple_ = make_tuple(i, payload={"station": "st-0"})
            inc_op.on_tuple(tuple_)
            ref_op.on_tuple(tuple_)
        assert_outputs_match(inc_op.on_timer(60.0), ref_op.on_timer(60.0))


class TestCheckpointRestore:
    @pytest.mark.parametrize("function", ["AVG", "MIN", "COUNT"])
    def test_accumulators_survive_restore(self, function):
        op = AggregationOperator(
            interval=60.0, attributes=["temperature"], function=function,
            group_by="station", window=500.0, incremental=True,
        )
        for i in range(150):
            op.on_tuple(make_tuple(i, station=f"st-{i % 3}", at=float(i)))
        state = op.checkpoint()

        restored = AggregationOperator(
            interval=60.0, attributes=["temperature"], function=function,
            group_by="station", window=500.0, incremental=True,
        )
        restored.restore(state)
        assert set(restored._groups) == set(op._groups)

        # Both continue identically: same new tuples, same flush output.
        for i in range(150, 200):
            tuple_ = make_tuple(i, station=f"st-{i % 3}", at=float(i))
            op.on_tuple(tuple_)
            restored.on_tuple(tuple_)
        assert_outputs_match(restored.on_timer(200.0), op.on_timer(200.0))

    def test_restored_matches_rescan_reference(self):
        # The rebuilt accumulators must agree with a rescan operator
        # restored from the same checkpoint (format is shared).
        inc_op, ref_op = pair("SUM", group_by="station", window=400.0)
        for i in range(100):
            tuple_ = make_tuple(i, station=f"st-{i % 2}", at=float(i))
            inc_op.on_tuple(tuple_)
            ref_op.on_tuple(tuple_)
        state = inc_op.checkpoint()
        restored = AggregationOperator(
            interval=60.0, attributes=["temperature"], function="SUM",
            group_by="station", window=400.0, incremental=True,
        )
        restored.restore(state)
        assert_outputs_match(restored.on_timer(100.0), ref_op.on_timer(100.0))

    def test_reset_clears_accumulators(self):
        op = AggregationOperator(
            interval=60.0, attributes=["temperature"], function="AVG",
            incremental=True,
        )
        op.on_tuple(make_tuple(0))
        assert op._groups
        op.reset()
        assert not op._groups
        assert op.on_timer(60.0) == []
