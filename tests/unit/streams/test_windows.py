"""Unit tests for tuple caches."""

import pytest

from repro.errors import StreamLoaderError
from repro.streams.windows import TupleCache


class TestBasics:
    def test_add_and_len(self, make_tuple):
        cache = TupleCache()
        cache.add(make_tuple(0))
        cache.add(make_tuple(1))
        assert len(cache) == 2
        assert bool(cache)

    def test_drain_empties(self, make_tuple):
        cache = TupleCache()
        for i in range(5):
            cache.add(make_tuple(i))
        drained = cache.drain()
        assert len(drained) == 5
        assert len(cache) == 0
        assert [t.seq for t in drained] == [0, 1, 2, 3, 4]

    def test_snapshot_does_not_evict(self, make_tuple):
        cache = TupleCache()
        cache.add(make_tuple(0))
        assert len(cache.snapshot()) == 1
        assert len(cache) == 1

    def test_invalid_capacity_raises(self):
        with pytest.raises(StreamLoaderError):
            TupleCache(max_tuples=0)


class TestBounds:
    def test_eviction_when_full(self, make_tuple):
        cache = TupleCache(max_tuples=3)
        for i in range(5):
            cache.add(make_tuple(i))
        assert len(cache) == 3
        assert cache.evicted == 2
        assert [t.seq for t in cache] == [2, 3, 4]  # oldest evicted


class TestPrune:
    def test_prune_by_time(self, make_tuple):
        cache = TupleCache()
        for i in range(10):
            cache.add(make_tuple(i, time=float(i * 10)))
        pruned = cache.prune(before=45.0)
        assert pruned == 5
        assert [t.stamp.time for t in cache] == [50.0, 60.0, 70.0, 80.0, 90.0]

    def test_prune_nothing(self, make_tuple):
        cache = TupleCache()
        cache.add(make_tuple(0, time=100.0))
        assert cache.prune(before=50.0) == 0
        assert len(cache) == 1

    def test_prune_everything(self, make_tuple):
        cache = TupleCache()
        for i in range(3):
            cache.add(make_tuple(i, time=float(i)))
        assert cache.prune(before=1e9) == 3
        assert not cache
