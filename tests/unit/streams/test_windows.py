"""Unit tests for tuple caches."""

import pytest

from repro.errors import StreamLoaderError
from repro.streams.windows import TupleCache


class TestBasics:
    def test_add_and_len(self, make_tuple):
        cache = TupleCache()
        cache.add(make_tuple(0))
        cache.add(make_tuple(1))
        assert len(cache) == 2
        assert bool(cache)

    def test_drain_empties(self, make_tuple):
        cache = TupleCache()
        for i in range(5):
            cache.add(make_tuple(i))
        drained = cache.drain()
        assert len(drained) == 5
        assert len(cache) == 0
        assert [t.seq for t in drained] == [0, 1, 2, 3, 4]

    def test_snapshot_does_not_evict(self, make_tuple):
        cache = TupleCache()
        cache.add(make_tuple(0))
        assert len(cache.snapshot()) == 1
        assert len(cache) == 1

    def test_invalid_capacity_raises(self):
        with pytest.raises(StreamLoaderError):
            TupleCache(max_tuples=0)


class TestBounds:
    def test_eviction_when_full(self, make_tuple):
        cache = TupleCache(max_tuples=3)
        for i in range(5):
            cache.add(make_tuple(i))
        assert len(cache) == 3
        assert cache.evicted == 2
        assert [t.seq for t in cache] == [2, 3, 4]  # oldest evicted


class TestPrune:
    def test_prune_by_time(self, make_tuple):
        cache = TupleCache()
        for i in range(10):
            cache.add(make_tuple(i, time=float(i * 10)))
        pruned = cache.prune(before=45.0)
        assert pruned == 5
        assert [t.stamp.time for t in cache] == [50.0, 60.0, 70.0, 80.0, 90.0]

    def test_prune_nothing(self, make_tuple):
        cache = TupleCache()
        cache.add(make_tuple(0, time=100.0))
        assert cache.prune(before=50.0) == 0
        assert len(cache) == 1

    def test_prune_everything(self, make_tuple):
        cache = TupleCache()
        for i in range(3):
            cache.add(make_tuple(i, time=float(i)))
        assert cache.prune(before=1e9) == 3
        assert not cache


class TestEvictionBoundaries:
    """Edge cases of the eviction contract the shard adapters lean on."""

    def test_prune_boundary_is_exclusive(self, make_tuple):
        """``prune(before)`` evicts *strictly* earlier stamps: a tuple at
        exactly the window edge belongs to the retained window."""
        cache = TupleCache()
        cache.add(make_tuple(0, time=10.0))
        cache.add(make_tuple(1, time=20.0))
        assert cache.prune(before=20.0) == 1
        assert [t.seq for t in cache] == [1]

    def test_prune_stops_at_first_retained_straggler(self, make_tuple):
        """The scan stops at the first retained head: a straggler parked
        *behind* a fresh tuple survives (documented fresh-data bias)."""
        cache = TupleCache()
        cache.add(make_tuple(0, time=100.0))
        cache.add(make_tuple(1, time=5.0))   # straggler, out of order
        assert cache.prune(before=50.0) == 0
        assert len(cache) == 2

    def test_prune_does_not_count_as_overflow_eviction(self, make_tuple):
        """``evicted`` tracks memory-bound overflow only; pruning is a
        window operation and must not inflate the monitor's counter."""
        cache = TupleCache()
        for i in range(4):
            cache.add(make_tuple(i, time=float(i)))
        assert cache.prune(before=4.0) == 4
        assert cache.evicted == 0

    def test_on_evict_fires_for_overflow_and_prune_only(self, make_tuple):
        evicted = []
        cache = TupleCache(max_tuples=2, on_evict=lambda t: evicted.append(t.seq))
        for i in range(3):
            cache.add(make_tuple(i, time=float(i)))   # overflow evicts 0
        assert evicted == [0]
        cache.prune(before=2.0)                       # prune evicts 1
        assert evicted == [0, 1]
        cache.add(make_tuple(3, time=3.0))
        cache.drain()                                 # bulk ops stay silent
        cache.add(make_tuple(4, time=4.0))
        cache.clear()
        cache.restore([make_tuple(5, time=5.0)])
        assert evicted == [0, 1]

    def test_restore_truncates_to_newest_capacity(self, make_tuple):
        cache = TupleCache(max_tuples=2)
        cache.restore([make_tuple(i) for i in range(5)], evicted=7)
        assert [t.seq for t in cache] == [3, 4]
        assert cache.evicted == 7

    def test_exactly_full_does_not_evict(self, make_tuple):
        cache = TupleCache(max_tuples=3)
        for i in range(3):
            cache.add(make_tuple(i))
        assert cache.evicted == 0
        assert len(cache) == 3
