"""Unit tests for Cull Time / Cull Space — γr(s, region)."""

import pytest

from repro.errors import DataflowError
from repro.streams.cull import CullSpaceOperator, CullTimeOperator
from repro.stt.spatial import Point


class TestCullTime:
    def test_reduces_inside_interval(self, make_tuple):
        op = CullTimeOperator(rate=5, start=0.0, end=100.0)
        kept = sum(
            len(op.on_tuple(make_tuple(i, time=float(i)))) for i in range(100)
        )
        assert kept == 20  # 1 in 5

    def test_outside_interval_passes(self, make_tuple):
        op = CullTimeOperator(rate=5, start=0.0, end=100.0)
        kept = sum(
            len(op.on_tuple(make_tuple(i, time=200.0 + i))) for i in range(50)
        )
        assert kept == 50

    def test_rate_one_keeps_all(self, make_tuple):
        op = CullTimeOperator(rate=1, start=0.0, end=100.0)
        kept = sum(len(op.on_tuple(make_tuple(i, time=float(i)))) for i in range(50))
        assert kept == 50

    def test_deterministic_pattern(self, make_tuple):
        op = CullTimeOperator(rate=3, start=0.0, end=1000.0)
        pattern = [
            len(op.on_tuple(make_tuple(i, time=float(i)))) for i in range(9)
        ]
        assert pattern == [0, 0, 1, 0, 0, 1, 0, 0, 1]

    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_invalid_rate_raises(self, bad):
        with pytest.raises(DataflowError):
            CullTimeOperator(rate=bad, start=0.0, end=1.0)

    def test_backwards_interval_raises(self):
        from repro.errors import GranularityError

        with pytest.raises(GranularityError):
            CullTimeOperator(rate=2, start=10.0, end=0.0)

    def test_reset_restarts_counter(self, make_tuple):
        op = CullTimeOperator(rate=2, start=0.0, end=100.0)
        op.on_tuple(make_tuple(0, time=1.0))
        op.reset()
        # First matching tuple after reset is dropped again (counter = 1).
        assert op.on_tuple(make_tuple(1, time=2.0)) == []


class TestCullSpace:
    osaka_box = (Point(34.5, 135.3), Point(34.9, 135.7))

    def test_reduces_inside_area(self, make_tuple):
        op = CullSpaceOperator(rate=4, corner1=self.osaka_box[0],
                               corner2=self.osaka_box[1])
        kept = sum(
            len(op.on_tuple(make_tuple(i, lat=34.69, lon=135.50)))
            for i in range(40)
        )
        assert kept == 10

    def test_outside_area_passes(self, make_tuple):
        op = CullSpaceOperator(rate=4, corner1=self.osaka_box[0],
                               corner2=self.osaka_box[1])
        kept = sum(
            len(op.on_tuple(make_tuple(i, lat=35.68, lon=139.65)))  # Tokyo
            for i in range(40)
        )
        assert kept == 40

    def test_corners_accepted_as_tuples(self, make_tuple):
        op = CullSpaceOperator(rate=2, corner1=(34.9, 135.7), corner2=(34.5, 135.3))
        assert op.area.south == 34.5  # normalised regardless of corner order

    def test_mixed_traffic(self, make_tuple):
        op = CullSpaceOperator(rate=2, corner1=self.osaka_box[0],
                               corner2=self.osaka_box[1])
        results = []
        for i in range(6):
            inside = i % 2 == 0
            lat = 34.69 if inside else 35.68
            lon = 135.50 if inside else 139.65
            results.append(len(op.on_tuple(make_tuple(i, lat=lat, lon=lon))))
        # Outside tuples always pass; inside alternate drop/keep.
        assert results == [0, 1, 1, 1, 0, 1]

    def test_describe_mentions_rate(self):
        op = CullSpaceOperator(rate=7, corner1=(0.0, 0.0), corner2=(1.0, 1.0))
        assert "γ7" in op.describe()
