"""Unit tests for sensor tuples."""

import pytest

from repro.streams.tuple import SensorTuple, estimate_size_bytes
from repro.stt.event import SttStamp
from repro.stt.spatial import Point


class TestImmutability:
    def test_payload_is_read_only(self, make_tuple):
        tuple_ = make_tuple(0)
        with pytest.raises(TypeError):
            tuple_.payload["temperature"] = 99.0

    def test_with_updates_leaves_original(self, make_tuple):
        original = make_tuple(0, temperature=20.0)
        updated = original.with_updates(temperature=25.0)
        assert original["temperature"] == 20.0
        assert updated["temperature"] == 25.0

    def test_values_copy_is_detached(self, make_tuple):
        tuple_ = make_tuple(0)
        values = tuple_.values()
        values["temperature"] = -1.0
        assert tuple_["temperature"] != -1.0


class TestAccess:
    def test_getitem_get_contains(self, make_tuple):
        tuple_ = make_tuple(0, temperature=21.5)
        assert tuple_["temperature"] == 21.5
        assert tuple_.get("missing", "default") == "default"
        assert "humidity" in tuple_
        assert "missing" not in tuple_

    def test_time_shortcut(self, make_tuple):
        assert make_tuple(0, time=42.0).time == 42.0

    def test_with_stamp_and_relabelled(self, make_tuple):
        tuple_ = make_tuple(0)
        new_stamp = SttStamp(time=99.0, location=Point(0, 0))
        restamped = tuple_.with_stamp(new_stamp)
        assert restamped.time == 99.0
        assert tuple_.time == 0.0
        assert tuple_.relabelled("other").source == "other"


class TestToEvent:
    def test_whole_payload(self, make_tuple):
        event = make_tuple(0, temperature=25.0).to_event()
        assert event.value["temperature"] == 25.0
        assert event.source == "sensor-1"

    def test_single_attribute(self, make_tuple):
        event = make_tuple(0, temperature=25.0).to_event("temperature")
        assert event.value == 25.0

    def test_missing_attribute_raises(self, make_tuple):
        with pytest.raises(KeyError):
            make_tuple(0).to_event("missing")


class TestSizeEstimate:
    def test_monotone_in_payload(self, make_tuple):
        small = make_tuple(0, station="a")
        large = make_tuple(0, station="a" * 100)
        assert estimate_size_bytes(large) > estimate_size_bytes(small)

    def test_deterministic(self, make_tuple):
        tuple_ = make_tuple(0)
        assert estimate_size_bytes(tuple_) == estimate_size_bytes(tuple_)

    def test_envelope_minimum(self):
        empty = SensorTuple(payload={}, stamp=SttStamp(0.0, Point(0, 0)))
        assert estimate_size_bytes(empty) >= 48
