"""Unit tests for sensor tuples."""

import pytest

from repro.streams.tuple import (
    SensorTuple,
    TupleBatch,
    estimate_batch_size_bytes,
    estimate_size_bytes,
)
from repro.stt.event import SttStamp
from repro.stt.spatial import Point


class TestImmutability:
    def test_payload_is_read_only(self, make_tuple):
        tuple_ = make_tuple(0)
        with pytest.raises(TypeError):
            tuple_.payload["temperature"] = 99.0

    def test_with_updates_leaves_original(self, make_tuple):
        original = make_tuple(0, temperature=20.0)
        updated = original.with_updates(temperature=25.0)
        assert original["temperature"] == 20.0
        assert updated["temperature"] == 25.0

    def test_values_copy_is_detached(self, make_tuple):
        tuple_ = make_tuple(0)
        values = tuple_.values()
        values["temperature"] = -1.0
        assert tuple_["temperature"] != -1.0


class TestAccess:
    def test_getitem_get_contains(self, make_tuple):
        tuple_ = make_tuple(0, temperature=21.5)
        assert tuple_["temperature"] == 21.5
        assert tuple_.get("missing", "default") == "default"
        assert "humidity" in tuple_
        assert "missing" not in tuple_

    def test_time_shortcut(self, make_tuple):
        assert make_tuple(0, time=42.0).time == 42.0

    def test_with_stamp_and_relabelled(self, make_tuple):
        tuple_ = make_tuple(0)
        new_stamp = SttStamp(time=99.0, location=Point(0, 0))
        restamped = tuple_.with_stamp(new_stamp)
        assert restamped.time == 99.0
        assert tuple_.time == 0.0
        assert tuple_.relabelled("other").source == "other"


class TestToEvent:
    def test_whole_payload(self, make_tuple):
        event = make_tuple(0, temperature=25.0).to_event()
        assert event.value["temperature"] == 25.0
        assert event.source == "sensor-1"

    def test_single_attribute(self, make_tuple):
        event = make_tuple(0, temperature=25.0).to_event("temperature")
        assert event.value == 25.0

    def test_missing_attribute_raises(self, make_tuple):
        with pytest.raises(KeyError):
            make_tuple(0).to_event("missing")


class TestSizeEstimate:
    def test_monotone_in_payload(self, make_tuple):
        small = make_tuple(0, station="a")
        large = make_tuple(0, station="a" * 100)
        assert estimate_size_bytes(large) > estimate_size_bytes(small)

    def test_deterministic(self, make_tuple):
        tuple_ = make_tuple(0)
        assert estimate_size_bytes(tuple_) == estimate_size_bytes(tuple_)

    def test_envelope_minimum(self):
        empty = SensorTuple(payload={}, stamp=SttStamp(0.0, Point(0, 0)))
        assert estimate_size_bytes(empty) >= 48


class TestBatchSizeMemo:
    def test_batch_size_is_memoized_on_the_envelope(self, make_tuple):
        batch = TupleBatch.of([make_tuple(i) for i in range(3)])
        size = estimate_batch_size_bytes(batch)
        # The second call must answer from the envelope memo, not resum.
        object.__setattr__(batch, "_wire", size + 1000)
        assert estimate_batch_size_bytes(batch) == size + 1000

    def test_with_traced_inherits_the_memo(self, make_tuple):
        batch = TupleBatch.of([make_tuple(i) for i in range(3)])
        size = estimate_batch_size_bytes(batch)
        traced = batch.with_traced(list(batch))
        assert traced._wire == size

    def test_with_tuples_does_not_inherit_the_memo(self, make_tuple):
        batch = TupleBatch.of([make_tuple(i) for i in range(3)])
        estimate_batch_size_bytes(batch)
        subset = batch.with_tuples(list(batch)[:1])  # rows changed: resize
        assert subset._wire is None

    def test_memo_survives_with_owned_payload_clones(self, make_tuple):
        # A transform-style rewrite clones every tuple through
        # ``with_owned_payload``.  The original envelope must keep
        # answering from its memo, and the clones must *not* drag stale
        # per-tuple memos along — their payloads changed size.
        batch = TupleBatch.of([make_tuple(i) for i in range(3)])
        size = estimate_batch_size_bytes(batch)
        clones = [
            t.with_owned_payload(dict(t.payload, padding="x" * 64))
            for t in batch
        ]
        grown = TupleBatch.of(clones)
        assert estimate_batch_size_bytes(batch) == size
        assert estimate_batch_size_bytes(grown) > size

    def test_payload_preserving_tuple_clones_keep_the_tuple_memo(
        self, make_tuple
    ):
        tuple_ = make_tuple(0)
        size = estimate_size_bytes(tuple_)
        traced = tuple_.relabelled("elsewhere")
        assert traced.__dict__.get("_wire_size") == size


class TestStampSpanMemo:
    def test_span_is_stamp_extremes(self, make_tuple):
        batch = TupleBatch.of(
            [make_tuple(i, time=float(t)) for i, t in enumerate([5, 1, 9])]
        )
        assert batch.stamp_span() == (1.0, 9.0)

    def test_span_is_memoized_on_the_envelope(self, make_tuple):
        batch = TupleBatch.of([make_tuple(i, time=float(i)) for i in range(3)])
        batch.stamp_span()
        object.__setattr__(batch, "_span", (-1.0, -1.0))
        assert batch.stamp_span() == (-1.0, -1.0)

    def test_with_traced_inherits_the_span(self, make_tuple):
        batch = TupleBatch.of([make_tuple(i, time=float(i)) for i in range(3)])
        span = batch.stamp_span()
        assert batch.with_traced(list(batch))._span == span

    def test_with_tuples_does_not_inherit_the_span(self, make_tuple):
        batch = TupleBatch.of([make_tuple(i, time=float(i)) for i in range(3)])
        batch.stamp_span()
        assert batch.with_tuples(list(batch)[:1])._span is None
