"""Unit tests for Trigger On / Trigger Off — ⊕ON,t / ⊕OFF,t."""

import pytest

from repro.errors import DataflowError
from repro.streams.trigger import (
    TriggerOffOperator,
    TriggerOnOperator,
    window_statistics,
)


class TestWindowStatistics:
    def test_numeric_stats(self, make_tuple):
        tuples = [make_tuple(i, temperature=20.0 + i) for i in range(5)]
        stats = window_statistics(tuples)
        assert stats["count"] == 5
        assert stats["avg_temperature"] == 22.0
        assert stats["min_temperature"] == 20.0
        assert stats["max_temperature"] == 24.0
        assert stats["sum_temperature"] == 110.0
        assert stats["last_temperature"] == 24.0

    def test_non_numeric_gets_last_only(self, make_tuple):
        stats = window_statistics([make_tuple(0, station="umeda")])
        assert stats["last_station"] == "umeda"
        assert "avg_station" not in stats

    def test_empty_window(self):
        assert window_statistics([]) == {"count": 0}


class TestTriggerOn:
    def make(self, **kwargs):
        defaults = dict(
            interval=300.0,
            window=3600.0,
            condition="avg_temperature > 25",
            targets=["rain-1", "tweets-1"],
        )
        defaults.update(kwargs)
        return TriggerOnOperator(**defaults)

    def test_emits_no_data(self, make_tuple):
        op = self.make()
        assert op.on_tuple(make_tuple(0, temperature=30.0)) == []
        assert op.on_timer(300.0) == []

    def test_fires_when_condition_holds(self, make_tuple):
        op = self.make()
        commands = []
        op.control = commands.append
        for i in range(12):
            op.on_tuple(make_tuple(i, temperature=27.0, time=i * 300.0))
        op.on_timer(3600.0)
        assert len(commands) == 1
        assert commands[0].activate is True
        assert commands[0].sensor_ids == ("rain-1", "tweets-1")

    def test_silent_when_condition_false(self, make_tuple):
        op = self.make()
        commands = []
        op.control = commands.append
        for i in range(12):
            op.on_tuple(make_tuple(i, temperature=20.0, time=i * 300.0))
        op.on_timer(3600.0)
        assert commands == []

    def test_edge_triggered_not_repeated(self, make_tuple):
        op = self.make()
        commands = []
        op.control = commands.append
        for i in range(12):
            op.on_tuple(make_tuple(i, temperature=27.0, time=i * 300.0))
        op.on_timer(3600.0)
        op.on_timer(3900.0)
        op.on_timer(4200.0)
        assert len(commands) == 1  # persistent heat fires once

    def test_rearms_after_condition_clears(self, make_tuple):
        op = self.make(window=600.0)
        commands = []
        op.control = commands.append
        op.on_tuple(make_tuple(0, temperature=27.0, time=0.0))
        op.on_timer(300.0)           # hot -> fire
        op.on_tuple(make_tuple(1, temperature=15.0, time=400.0))
        op.on_timer(700.0)           # window mean now below -> re-arm
        op.on_tuple(make_tuple(2, temperature=40.0, time=800.0))
        op.on_timer(1000.0)          # hot again -> fire again
        assert [c.activate for c in commands] == [True, True]

    def test_sliding_window_prunes_old(self, make_tuple):
        op = self.make(interval=300.0, window=600.0)
        commands = []
        op.control = commands.append
        # Old hot reading, then cool readings; window slides past the heat.
        op.on_tuple(make_tuple(0, temperature=40.0, time=0.0))
        op.on_tuple(make_tuple(1, temperature=10.0, time=500.0))
        op.on_tuple(make_tuple(2, temperature=10.0, time=900.0))
        op.on_timer(1000.0)  # hot reading at t=0 is outside [400, 1000]
        assert commands == []

    def test_empty_window_never_fires(self):
        op = self.make()
        commands = []
        op.control = commands.append
        op.on_timer(300.0)
        assert commands == []

    def test_condition_error_counted(self, make_tuple):
        op = self.make(condition="avg_ghost > 1")
        commands = []
        op.control = commands.append
        op.on_tuple(make_tuple(0, temperature=30.0, time=0.0))
        op.on_timer(300.0)
        assert commands == []
        assert op.stats.errors == 1

    def test_reason_mentions_condition(self, make_tuple):
        op = self.make()
        commands = []
        op.control = commands.append
        op.on_tuple(make_tuple(0, temperature=30.0, time=0.0))
        op.on_timer(300.0)
        assert "avg_temperature > 25" in commands[0].reason

    def test_no_targets_raises(self):
        with pytest.raises(DataflowError):
            TriggerOnOperator(interval=300.0, condition="count > 0", targets=[])

    def test_window_shorter_than_interval_raises(self):
        with pytest.raises(DataflowError):
            TriggerOnOperator(interval=300.0, window=60.0,
                              condition="count > 0", targets=["x"])

    def test_default_window_is_interval(self):
        op = TriggerOnOperator(interval=300.0, condition="count > 0", targets=["x"])
        assert op.window == 300.0


class TestTriggerOff:
    def test_fires_deactivation(self, make_tuple):
        op = TriggerOffOperator(
            interval=300.0, condition="min_temperature < 0", targets=["rain-1"]
        )
        commands = []
        op.control = commands.append
        op.on_tuple(make_tuple(0, temperature=-3.0, time=0.0))
        op.on_timer(300.0)
        assert commands[0].activate is False

    def test_counts_controls_in_stats(self, make_tuple):
        op = TriggerOffOperator(
            interval=300.0, condition="count > 0", targets=["x"]
        )
        op.control = lambda command: None
        op.on_tuple(make_tuple(0, time=0.0))
        op.on_timer(300.0)
        assert op.stats.controls_issued == 1

    def test_reset_rearms(self, make_tuple):
        op = TriggerOffOperator(interval=300.0, condition="count > 0", targets=["x"])
        commands = []
        op.control = commands.append
        op.on_tuple(make_tuple(0, time=0.0))
        op.on_timer(300.0)
        op.reset()
        op.on_tuple(make_tuple(1, time=400.0))
        op.on_timer(600.0)
        assert len(commands) == 2
