"""Unit tests for the Aggregation operator — @t,{a..} op (s)."""

import pytest

from repro.errors import DataflowError, StreamLoaderError
from repro.streams.aggregate import AggregationOperator
from repro.stt.spatial import Box


class TestWindowing:
    def test_blocking_buffers_until_timer(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="AVG")
        assert op.is_blocking
        for i in range(5):
            assert op.on_tuple(make_tuple(i, temperature=20.0 + i)) == []
        out = op.on_timer(60.0)
        assert len(out) == 1
        assert out[0]["avg_temperature"] == 22.0

    def test_empty_window_emits_nothing(self):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="AVG")
        assert op.on_timer(60.0) == []

    def test_window_tumbles(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="SUM")
        op.on_tuple(make_tuple(0, temperature=10.0))
        first = op.on_timer(60.0)
        op.on_tuple(make_tuple(1, temperature=20.0))
        second = op.on_timer(120.0)
        assert first[0]["sum_temperature"] == 10.0
        assert second[0]["sum_temperature"] == 20.0  # no carry-over


class TestFunctions:
    @pytest.mark.parametrize("fn,expected", [
        ("AVG", 22.0), ("SUM", 110.0), ("MIN", 20.0), ("MAX", 24.0),
    ])
    def test_numeric_functions(self, make_tuple, fn, expected):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function=fn)
        for i in range(5):
            op.on_tuple(make_tuple(i, temperature=20.0 + i))
        out = op.on_timer(60.0)
        assert out[0][f"{fn.lower()}_temperature"] == expected

    def test_count(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["station"],
                                 function="COUNT")
        for i in range(7):
            op.on_tuple(make_tuple(i))
        out = op.on_timer(60.0)
        assert out[0]["count_station"] == 7

    def test_case_insensitive_function(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="avg")
        op.on_tuple(make_tuple(0, temperature=5.0))
        assert op.on_timer(60.0)[0]["avg_temperature"] == 5.0

    def test_multiple_attributes(self, make_tuple):
        op = AggregationOperator(
            interval=60.0, attributes=["temperature", "humidity"], function="MAX"
        )
        op.on_tuple(make_tuple(0, temperature=20.0, humidity=0.5))
        op.on_tuple(make_tuple(1, temperature=30.0, humidity=0.4))
        out = op.on_timer(60.0)
        assert out[0]["max_temperature"] == 30.0
        assert out[0]["max_humidity"] == 0.5

    def test_none_values_skipped(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["missing"],
                                 function="AVG")
        op.on_tuple(make_tuple(0))
        out = op.on_timer(60.0)
        assert out[0]["avg_missing"] is None

    def test_unknown_function_raises(self):
        with pytest.raises(DataflowError):
            AggregationOperator(interval=60.0, attributes=["x"], function="MEDIAN")

    def test_no_attributes_raises(self):
        with pytest.raises(DataflowError):
            AggregationOperator(interval=60.0, attributes=[], function="AVG")

    def test_zero_interval_raises(self):
        with pytest.raises(StreamLoaderError):
            AggregationOperator(interval=0.0, attributes=["x"], function="AVG")


class TestOutputStamp:
    def test_stamped_at_flush_time_and_coarsened(self, make_tuple):
        op = AggregationOperator(interval=3600.0, attributes=["temperature"],
                                 function="AVG")
        op.on_tuple(make_tuple(0, time=10.0))
        out = op.on_timer(3600.0)
        assert out[0].stamp.time == 3600.0
        assert out[0].stamp.temporal_granularity.name == "hour"

    def test_location_is_bounding_box_of_window(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="AVG")
        op.on_tuple(make_tuple(0, lat=34.6, lon=135.4))
        op.on_tuple(make_tuple(1, lat=34.8, lon=135.6))
        out = op.on_timer(60.0)
        box = out[0].stamp.location
        assert isinstance(box, Box)
        assert box.south == 34.6 and box.north == 34.8

    def test_single_point_stays_point(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="AVG")
        op.on_tuple(make_tuple(0, lat=34.6, lon=135.4))
        out = op.on_timer(60.0)
        from repro.stt.spatial import Point

        assert out[0].stamp.location == Point(34.6, 135.4)

    def test_themes_propagated(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="AVG")
        op.on_tuple(make_tuple(0, themes=("weather/temperature",)))
        out = op.on_timer(60.0)
        assert out[0].stamp.has_theme("weather")

    def test_source_labels_derivation(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="AVG", name="hourly-avg")
        op.on_tuple(make_tuple(0, source="temp-1"))
        out = op.on_timer(60.0)
        assert "hourly-avg" in out[0].source and "temp-1" in out[0].source


class TestReset:
    def test_reset_clears_cache(self, make_tuple):
        op = AggregationOperator(interval=60.0, attributes=["temperature"],
                                 function="AVG")
        op.on_tuple(make_tuple(0))
        op.reset()
        assert op.on_timer(60.0) == []
