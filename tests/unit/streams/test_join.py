"""Unit tests for the Join operator — s1 ⋈ᵗ_pred s2."""

import pytest

from repro.errors import DataflowError
from repro.streams.join import JoinOperator, merge_payloads


class TestMergePayloads:
    def test_no_collision(self):
        merged = merge_payloads({"a": 1}, {"b": 2}, "l", "r")
        assert merged == {"a": 1, "b": 2}

    def test_collision_prefixed(self):
        merged = merge_payloads({"a": 1, "x": 5}, {"a": 2}, "l", "r")
        assert merged == {"l_a": 1, "x": 5, "r_a": 2}


class TestJoin:
    def test_two_ports(self):
        op = JoinOperator(interval=60.0, predicate="left.a == right.a")
        assert op.input_ports == 2

    def test_cross_matching_pairs(self, make_tuple):
        op = JoinOperator(interval=60.0,
                          predicate="left.station == right.station")
        op.on_tuple(make_tuple(0, station="umeda"), port=0)
        op.on_tuple(make_tuple(1, station="namba"), port=0)
        op.on_tuple(make_tuple(2, station="umeda"), port=1)
        op.on_tuple(make_tuple(3, station="umeda"), port=1)
        out = op.on_timer(60.0)
        assert len(out) == 2  # left umeda x two right umedas

    def test_empty_side_emits_nothing(self, make_tuple):
        op = JoinOperator(interval=60.0, predicate="true")
        op.on_tuple(make_tuple(0), port=0)
        assert op.on_timer(60.0) == []

    def test_window_tumbles_both_sides(self, make_tuple):
        op = JoinOperator(interval=60.0, predicate="true")
        op.on_tuple(make_tuple(0), port=0)
        op.on_tuple(make_tuple(1), port=1)
        assert len(op.on_timer(60.0)) == 1
        # Next window starts empty.
        op.on_tuple(make_tuple(2), port=0)
        assert op.on_timer(120.0) == []

    def test_theta_predicate(self, make_tuple):
        op = JoinOperator(interval=60.0,
                          predicate="left.temperature > right.temperature + 2")
        op.on_tuple(make_tuple(0, temperature=30.0), port=0)
        op.on_tuple(make_tuple(1, temperature=29.0), port=1)
        op.on_tuple(make_tuple(2, temperature=25.0), port=1)
        out = op.on_timer(60.0)
        assert len(out) == 1
        assert out[0]["left_temperature"] == 30.0
        assert out[0]["right_temperature"] == 25.0

    def test_custom_prefixes(self, make_tuple):
        op = JoinOperator(interval=60.0, predicate="w.station == t.station",
                          left_prefix="w", right_prefix="t")
        op.on_tuple(make_tuple(0, station="x"), port=0)
        op.on_tuple(make_tuple(1, station="x"), port=1)
        out = op.on_timer(60.0)
        assert "w_station" in out[0] and "t_station" in out[0]

    def test_same_prefixes_raise(self):
        with pytest.raises(DataflowError):
            JoinOperator(interval=60.0, predicate="true",
                         left_prefix="x", right_prefix="x")

    def test_predicate_errors_counted_not_fatal(self, make_tuple):
        op = JoinOperator(interval=60.0, predicate="left.ghost == right.ghost")
        op.on_tuple(make_tuple(0), port=0)
        op.on_tuple(make_tuple(1), port=1)
        assert op.on_timer(60.0) == []
        assert op.stats.errors == 1


class TestJoinStamp:
    def test_output_time_is_later_of_pair(self, make_tuple):
        op = JoinOperator(interval=60.0, predicate="true")
        op.on_tuple(make_tuple(0, time=10.0), port=0)
        op.on_tuple(make_tuple(1, time=50.0), port=1)
        out = op.on_timer(60.0)
        assert out[0].stamp.time == 50.0

    def test_themes_unioned(self, make_tuple):
        op = JoinOperator(interval=60.0, predicate="true")
        op.on_tuple(make_tuple(0, themes=("weather/rain",)), port=0)
        op.on_tuple(make_tuple(1, themes=("mobility/traffic",)), port=1)
        out = op.on_timer(60.0)
        assert out[0].stamp.has_theme("weather")
        assert out[0].stamp.has_theme("mobility")

    def test_distinct_locations_produce_box(self, make_tuple):
        from repro.stt.spatial import Box

        op = JoinOperator(interval=60.0, predicate="true")
        op.on_tuple(make_tuple(0, lat=34.6, lon=135.4), port=0)
        op.on_tuple(make_tuple(1, lat=34.8, lon=135.6), port=1)
        out = op.on_timer(60.0)
        assert isinstance(out[0].stamp.location, Box)

    def test_same_location_stays(self, make_tuple):
        op = JoinOperator(interval=60.0, predicate="true")
        op.on_tuple(make_tuple(0), port=0)
        op.on_tuple(make_tuple(1), port=1)
        out = op.on_timer(60.0)
        from repro.stt.spatial import Point

        assert isinstance(out[0].stamp.location, Point)

    def test_reset_clears_both_caches(self, make_tuple):
        op = JoinOperator(interval=60.0, predicate="true")
        op.on_tuple(make_tuple(0), port=0)
        op.on_tuple(make_tuple(1), port=1)
        op.reset()
        assert op.on_timer(60.0) == []
