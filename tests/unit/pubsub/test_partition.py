"""Unit tests for the key-partitioning subscription router."""

import pytest

from repro.errors import PubSubError
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.partition import ShardRouter
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import Subscription, SubscriptionFilter
from repro.schema.schema import StreamSchema
from repro.streams.shard import partition_index
from repro.streams.tuple import SensorTuple, TupleBatch
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

SITE = Point(34.69, 135.50)


def metadata(node_id="hub"):
    return SensorMetadata(
        sensor_id="part-sensor",
        sensor_type="temperature",
        schema=StreamSchema.build(
            {"temperature": "float", "station": "str"},
            themes=("weather/temperature",),
        ),
        frequency=1.0,
        location=SITE,
        node_id=node_id,
    )


def reading(seq, station):
    return SensorTuple(
        payload={"temperature": 20.0, "station": station},
        stamp=SttStamp(time=float(seq), location=SITE),
        source="part-sensor",
        seq=seq,
    )


def make_router(count=3, sink=None):
    members = [
        Subscription(
            filter=SubscriptionFilter(sensor_type="temperature"),
            callback=(lambda index: lambda t: sink.append((index, t.seq)))(i)
            if sink is not None else (lambda t: None),
            node_id="hub",
        )
        for i in range(count)
    ]
    return ShardRouter(members, keys=("station",))


class TestShardRouter:
    def test_members_back_reference_the_router(self):
        router = make_router()
        assert all(member.router is router for member in router.members)

    def test_member_for_matches_partition_index(self):
        router = make_router(count=3)
        for seq in range(20):
            tuple_ = reading(seq, f"st-{seq % 7}")
            expected = partition_index((tuple_.get("station"),), 3)
            assert router.member_for(tuple_) is router.members[expected]

    def test_split_batch_preserves_arrival_order(self):
        router = make_router(count=2)
        tuples = [reading(seq, f"st-{seq % 5}") for seq in range(12)]
        batch = TupleBatch.of(tuples)
        pieces = router.split_batch(batch)
        routed = {id(sub): [t.seq for t in sub_batch.tuples]
                  for sub, sub_batch in pieces}
        for sub, sub_batch in pieces:
            assert [t.seq for t in sub_batch.tuples] == sorted(
                t.seq for t in sub_batch.tuples
            )
        # Every tuple lands in exactly one piece.
        all_seqs = sorted(seq for seqs in routed.values() for seq in seqs)
        assert all_seqs == list(range(12))

    def test_filter_mirrors_first_member(self):
        router = make_router()
        assert router.filter is router.members[0].filter


class TestSubscribeSharded:
    def make_network(self):
        netsim = NetworkSimulator(topology=Topology.star(leaf_count=2))
        network = BrokerNetwork(netsim=netsim)
        network.publish(metadata("hub"))
        return netsim, network

    def test_length_mismatch_raises(self):
        _, network = self.make_network()
        with pytest.raises(PubSubError, match="callbacks"):
            network.subscribe_sharded(
                node_ids=["hub", "hub"],
                filter_=SubscriptionFilter(sensor_type="temperature"),
                callbacks=[lambda t: None],
                keys=("station",),
            )

    def test_each_tuple_delivered_to_exactly_one_member(self):
        netsim, network = self.make_network()
        received = []
        router = network.subscribe_sharded(
            node_ids=["hub", "hub", "hub"],
            filter_=SubscriptionFilter(sensor_type="temperature"),
            callbacks=[
                (lambda index: lambda t: received.append((index, t.seq)))(i)
                for i in range(3)
            ],
            keys=("station",),
        )
        tuples = [reading(seq, f"st-{seq % 5}") for seq in range(15)]
        for tuple_ in tuples:
            network.publish_data("part-sensor", tuple_)
        netsim.clock.run()
        assert sorted(seq for _, seq in received) == list(range(15))
        for index, seq in received:
            expected = partition_index((f"st-{seq % 5}",), 3)
            assert index == expected
        assert sum(s.delivered for s in router.members) == 15

    def test_batch_publish_splits_per_member(self):
        netsim, network = self.make_network()
        batches = []
        network.subscribe_sharded(
            node_ids=["hub", "hub"],
            filter_=SubscriptionFilter(sensor_type="temperature"),
            callbacks=[lambda t: None, lambda t: None],
            keys=("station",),
            batch_callbacks=[
                (lambda index: lambda b: batches.append(
                    (index, [t.seq for t in b.tuples])
                ))(i)
                for i in range(2)
            ],
        )
        tuples = [reading(seq, f"st-{seq % 4}") for seq in range(8)]
        network.publish_batch("part-sensor", tuples)
        netsim.clock.run()
        delivered = sorted(seq for _, seqs in batches for seq in seqs)
        assert delivered == list(range(8))
        for index, seqs in batches:
            for seq in seqs:
                assert partition_index((f"st-{seq % 4}",), 2) == index

    def test_unsubscribe_member_dissolves_cleanly(self):
        netsim, network = self.make_network()
        router = network.subscribe_sharded(
            node_ids=["hub", "hub"],
            filter_=SubscriptionFilter(sensor_type="temperature"),
            callbacks=[lambda t: None, lambda t: None],
            keys=("station",),
        )
        for member in list(router.members):
            network.unsubscribe(member)
        assert router.members == []
        # Publishes after teardown route nowhere and never crash.
        network.publish_data("part-sensor", reading(0, "st-0"))
        netsim.clock.run()

    def test_paused_member_suppresses_its_partition_only(self):
        netsim, network = self.make_network()
        received = []
        router = network.subscribe_sharded(
            node_ids=["hub", "hub"],
            filter_=SubscriptionFilter(sensor_type="temperature"),
            callbacks=[
                (lambda index: lambda t: received.append(index))(i)
                for i in range(2)
            ],
            keys=("station",),
        )
        stations = [f"st-{i}" for i in range(8)]
        paused_index = 0
        router.members[paused_index].pause()
        for seq, station in enumerate(stations):
            network.publish_data("part-sensor", reading(seq, station))
        netsim.clock.run()
        expected = [
            partition_index((station,), 2)
            for station in stations
            if partition_index((station,), 2) != paused_index
        ]
        assert sorted(received) == sorted(expected)
        assert router.members[paused_index].suppressed > 0
