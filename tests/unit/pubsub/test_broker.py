"""Unit tests for the broker network (overlay + data plane)."""

import pytest

from repro.errors import PubSubError, UnknownSensorError
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork, RetryPolicy
from repro.pubsub.stamping import backfill_stamp
from repro.pubsub.subscription import SubscriptionFilter
from tests.unit.pubsub.test_registry import make_metadata


def publish_reading(network, metadata, now=0.0, seq=0, value=1.0):
    tuple_ = backfill_stamp({"v": value}, metadata, now=now, seq=seq)
    return network.publish_data(metadata.sensor_id, tuple_)


class TestPublish:
    def test_publish_registers_and_propagates(self, local_broker_net):
        net = local_broker_net
        other = net.broker("n-other")
        metadata = make_metadata(node_id="n-home")
        net.publish(metadata)
        assert "temp-1" in net.registry
        assert "temp-1" in other.known_sensors
        assert net.advertisements_sent == 1

    def test_unpublish_removes_routes(self, local_broker_net):
        net = local_broker_net
        metadata = make_metadata()
        net.publish(metadata)
        net.subscribe("edge-0", SubscriptionFilter(), lambda t: None)
        net.unpublish("temp-1")
        with pytest.raises(UnknownSensorError):
            net.subscriptions_for("temp-1")

    def test_publish_callbacks(self, local_broker_net):
        events = []
        local_broker_net.on_sensor_published = lambda m: events.append(("+", m.sensor_id))
        local_broker_net.on_sensor_unpublished = lambda m: events.append(("-", m.sensor_id))
        local_broker_net.publish(make_metadata())
        local_broker_net.unpublish("temp-1")
        assert events == [("+", "temp-1"), ("-", "temp-1")]

    def test_broker_on_unknown_node_raises_with_netsim(self, broker_net):
        with pytest.raises(PubSubError, match="no network node"):
            broker_net.broker("ghost-node")


class TestSubscriptionRouting:
    def test_existing_subscription_matches_new_sensor(self, local_broker_net):
        # Plug-and-play: a new sensor matching a standing filter routes
        # automatically (demo part P3).
        net = local_broker_net
        seen = []
        net.subscribe("n1", SubscriptionFilter(sensor_type="temperature"),
                      seen.append)
        metadata = make_metadata("late-sensor")
        net.publish(metadata)
        publish_reading(net, metadata)
        assert len(seen) == 1

    def test_new_subscription_matches_existing_sensor(self, local_broker_net):
        net = local_broker_net
        metadata = make_metadata()
        net.publish(metadata)
        seen = []
        net.subscribe("n1", SubscriptionFilter(sensor_type="temperature"),
                      seen.append)
        publish_reading(net, metadata)
        assert len(seen) == 1

    def test_non_matching_filter_receives_nothing(self, local_broker_net):
        net = local_broker_net
        metadata = make_metadata()
        net.publish(metadata)
        seen = []
        net.subscribe("n1", SubscriptionFilter(sensor_type="rain"), seen.append)
        publish_reading(net, metadata)
        assert seen == []

    def test_unsubscribe_stops_delivery(self, local_broker_net):
        net = local_broker_net
        metadata = make_metadata()
        net.publish(metadata)
        seen = []
        subscription = net.subscribe("n1", SubscriptionFilter(), seen.append)
        net.unsubscribe(subscription)
        publish_reading(net, metadata)
        assert seen == []

    def test_multiple_subscribers_fan_out(self, local_broker_net):
        net = local_broker_net
        metadata = make_metadata()
        net.publish(metadata)
        counts = {"a": 0, "b": 0}
        net.subscribe("n1", SubscriptionFilter(),
                      lambda t: counts.__setitem__("a", counts["a"] + 1))
        net.subscribe("n2", SubscriptionFilter(),
                      lambda t: counts.__setitem__("b", counts["b"] + 1))
        assert publish_reading(net, metadata) == 2
        assert counts == {"a": 1, "b": 1}


class TestKnownSensorBackfill:
    def test_late_broker_knows_existing_sensors(self, local_broker_net):
        # A broker created after sensors were published missed their
        # advertisements; creation back-fills from the registry.
        net = local_broker_net
        net.publish(make_metadata("temp-1"))
        net.publish(make_metadata("temp-2"))
        late = net.broker("n-late")
        assert late.known_sensors == {"temp-1", "temp-2"}

    def test_backfill_excludes_unpublished(self, local_broker_net):
        net = local_broker_net
        net.publish(make_metadata("temp-1"))
        net.publish(make_metadata("temp-2"))
        net.unpublish("temp-1")
        assert net.broker("n-late").known_sensors == {"temp-2"}

    def test_empty_registry_backfills_nothing(self, local_broker_net):
        assert local_broker_net.broker("n-late").known_sensors == set()


class TestBrokerSubscriptionStore:
    def test_subscriptions_keep_insertion_order(self):
        from repro.pubsub.broker import Broker
        from repro.pubsub.subscription import Subscription

        broker = Broker(node_id="n1")
        subs = [
            Subscription(filter=SubscriptionFilter(), callback=lambda t: None,
                         node_id="n1")
            for _ in range(5)
        ]
        for sub in subs:
            broker.add_subscription(sub)
        assert broker.subscriptions == subs
        broker.remove_subscription(subs[2])
        assert broker.subscriptions == subs[:2] + subs[3:]

    def test_remove_unknown_subscription_raises(self):
        from repro.pubsub.broker import Broker
        from repro.pubsub.subscription import Subscription

        broker = Broker(node_id="n1")
        stranger = Subscription(filter=SubscriptionFilter(),
                                callback=lambda t: None, node_id="n1")
        with pytest.raises(PubSubError, match="not on broker"):
            broker.remove_subscription(stranger)

    def test_double_unsubscribe_raises(self, local_broker_net):
        net = local_broker_net
        subscription = net.subscribe("n1", SubscriptionFilter(), lambda t: None)
        net.unsubscribe(subscription)
        with pytest.raises(PubSubError, match="not on broker"):
            net.unsubscribe(subscription)


class TestIncrementalRouteMaintenance:
    def routes_snapshot(self, net):
        return {
            sensor_id: set(id(s) for s in subs)
            for sensor_id, subs in net._routes.items()
            if subs
        }

    def test_subscribe_matches_rebuild_all(self, local_broker_net):
        net = local_broker_net
        for i in range(3):
            net.publish(make_metadata(f"temp-{i}"))
        net.subscribe("n1", SubscriptionFilter(sensor_type="temperature"),
                      lambda t: None)
        net.subscribe("n2", SubscriptionFilter(sensor_type="rain"),
                      lambda t: None)
        incremental = self.routes_snapshot(net)
        net._rebuild_all_routes()
        assert self.routes_snapshot(net) == incremental

    def test_unsubscribe_matches_rebuild_all(self, local_broker_net):
        net = local_broker_net
        for i in range(3):
            net.publish(make_metadata(f"temp-{i}"))
        keep = net.subscribe("n1", SubscriptionFilter(), lambda t: None)
        drop = net.subscribe("n2", SubscriptionFilter(), lambda t: None)
        net.unsubscribe(drop)
        incremental = self.routes_snapshot(net)
        net._rebuild_all_routes()
        assert self.routes_snapshot(net) == incremental
        assert all(id(keep) in subs for subs in incremental.values())

    def test_interleaved_publish_subscribe_consistent(self, local_broker_net):
        net = local_broker_net
        net.publish(make_metadata("temp-0"))
        s1 = net.subscribe("n1", SubscriptionFilter(sensor_type="temperature"),
                           lambda t: None)
        net.publish(make_metadata("temp-1"))
        s2 = net.subscribe("n2", SubscriptionFilter(), lambda t: None)
        net.unsubscribe(s1)
        net.publish(make_metadata("temp-2"))
        incremental = self.routes_snapshot(net)
        net._rebuild_all_routes()
        assert self.routes_snapshot(net) == incremental
        assert all(id(s2) in subs for subs in incremental.values())


class TestSuppression:
    def test_paused_subscription_generates_no_traffic(self, broker_net):
        net = broker_net
        metadata = make_metadata(node_id="edge-0")
        net.publish(metadata)
        seen = []
        subscription = net.subscribe("hub", SubscriptionFilter(), seen.append)
        subscription.pause()
        sent_before = net.netsim.stats.messages_sent
        assert publish_reading(net, metadata) == 0
        assert net.netsim.stats.messages_sent == sent_before
        assert net.data_messages_suppressed == 1

    def test_resume_restores_traffic(self, broker_net):
        net = broker_net
        metadata = make_metadata(node_id="edge-0")
        net.publish(metadata)
        seen = []
        subscription = net.subscribe("hub", SubscriptionFilter(), seen.append)
        subscription.pause()
        publish_reading(net, metadata, seq=0)
        subscription.resume()
        publish_reading(net, metadata, seq=1)
        net.netsim.clock.run()
        assert len(seen) == 1


class TestNetworkedDelivery:
    def test_delivery_crosses_simulated_links(self, broker_net):
        net = broker_net
        metadata = make_metadata(node_id="edge-0")
        net.publish(metadata)
        seen = []
        net.subscribe("edge-1", SubscriptionFilter(), seen.append)
        publish_reading(net, metadata)
        assert seen == []  # not yet: in flight
        net.netsim.clock.run()
        assert len(seen) == 1
        assert net.netsim.total_link_bytes() > 0


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.5, multiplier=2.0,
                             max_delay=3.0)
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(3) == 2.0
        assert policy.backoff(4) == 3.0  # capped
        assert policy.backoff(5) == 3.0

    def test_invalid_policies_rejected(self):
        with pytest.raises(PubSubError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(PubSubError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(PubSubError):
            RetryPolicy(multiplier=0.5)


def retrying_net(max_attempts=3):
    netsim = NetworkSimulator(topology=Topology.star(leaf_count=3))
    policy = RetryPolicy(max_attempts=max_attempts, base_delay=1.0,
                         multiplier=2.0, max_delay=60.0)
    return BrokerNetwork(netsim=netsim, retry_policy=policy)


class TestRetryAndDeadLetter:
    def test_transient_outage_recovered_by_retry(self):
        net = retrying_net()
        metadata = make_metadata(node_id="edge-0")
        net.publish(metadata)
        seen = []
        net.subscribe("edge-1", SubscriptionFilter(), seen.append)
        net.netsim.kill_node("edge-1")
        publish_reading(net, metadata)
        # Back up before the retry budget exhausts (delays 1 + 2 + 4).
        net.netsim.clock.schedule(2.0, lambda: net.netsim.revive_node("edge-1"))
        net.netsim.clock.run()
        assert len(seen) == 1
        assert net.data_messages_retried >= 1
        assert net.data_messages_dead_lettered == 0

    def test_exhausted_retries_dead_letter(self):
        net = retrying_net(max_attempts=2)
        metadata = make_metadata(node_id="edge-0")
        net.publish(metadata)
        seen = []
        subscription = net.subscribe("edge-1", SubscriptionFilter(), seen.append)
        letters = []
        net.on_dead_letter = lambda sub, t, reason: letters.append((sub, reason))
        net.netsim.kill_node("edge-1")
        publish_reading(net, metadata)
        net.netsim.clock.run()
        assert seen == []
        assert net.data_messages_retried == 2
        assert net.data_messages_dead_lettered == 1
        assert subscription.retries == 2
        assert len(subscription.dead_letters) == 1
        assert letters and letters[0][0] is subscription

    def test_zero_attempt_policy_dead_letters_immediately(self):
        net = retrying_net(max_attempts=0)
        metadata = make_metadata(node_id="edge-0")
        net.publish(metadata)
        subscription = net.subscribe("edge-1", SubscriptionFilter(),
                                     lambda t: None)
        net.netsim.kill_node("edge-1")
        publish_reading(net, metadata)
        net.netsim.clock.run()
        assert net.data_messages_retried == 0
        assert len(subscription.dead_letters) == 1

    def test_retry_follows_moved_subscription(self):
        # A subscription re-pointed between attempts (process re-placed
        # after a node death) receives the retried tuple at its new home.
        net = retrying_net()
        metadata = make_metadata(node_id="edge-0")
        net.publish(metadata)
        seen = []
        subscription = net.subscribe("edge-1", SubscriptionFilter(), seen.append)
        net.netsim.kill_node("edge-1")
        publish_reading(net, metadata)

        def relocate():
            subscription.node_id = "edge-2"

        net.netsim.clock.schedule(0.5, relocate)
        net.netsim.clock.run()
        assert len(seen) == 1
        assert net.data_messages_dead_lettered == 0

    def test_local_network_never_retries(self, local_broker_net):
        net = local_broker_net
        metadata = make_metadata()
        net.publish(metadata)
        seen = []
        net.subscribe("n1", SubscriptionFilter(), seen.append)
        publish_reading(net, metadata)
        assert len(seen) == 1
        assert net.data_messages_retried == 0
