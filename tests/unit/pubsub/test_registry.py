"""Unit tests for sensor metadata and the registry."""

import pytest

from repro.errors import DuplicateSensorError, PubSubError, UnknownSensorError
from repro.pubsub.registry import SensorMetadata, SensorRegistry
from repro.schema.schema import StreamSchema
from repro.stt.spatial import Point


def make_metadata(sensor_id="temp-1", sensor_type="temperature",
                  frequency=1.0 / 60.0, node_id="edge-0", themes=("weather/temperature",)):
    return SensorMetadata(
        sensor_id=sensor_id,
        sensor_type=sensor_type,
        schema=StreamSchema.build({"v": "float"}, themes=themes),
        frequency=frequency,
        location=Point(34.69, 135.50),
        node_id=node_id,
    )


class TestMetadata:
    def test_period(self):
        assert make_metadata(frequency=0.5).period == 2.0

    def test_empty_id_raises(self):
        with pytest.raises(PubSubError):
            make_metadata(sensor_id="")

    def test_empty_type_raises(self):
        with pytest.raises(PubSubError):
            make_metadata(sensor_type="")

    def test_zero_frequency_raises(self):
        with pytest.raises(PubSubError):
            make_metadata(frequency=0.0)

    def test_themes_from_schema(self):
        metadata = make_metadata()
        assert metadata.has_theme("weather")
        assert not metadata.has_theme("mobility")


class TestRegistry:
    def test_register_get(self):
        registry = SensorRegistry()
        metadata = make_metadata()
        registry.register(metadata)
        assert registry.get("temp-1") is metadata
        assert "temp-1" in registry
        assert len(registry) == 1

    def test_duplicate_raises(self):
        registry = SensorRegistry()
        registry.register(make_metadata())
        with pytest.raises(DuplicateSensorError):
            registry.register(make_metadata())

    def test_unregister(self):
        registry = SensorRegistry()
        registry.register(make_metadata())
        removed = registry.unregister("temp-1")
        assert removed.sensor_id == "temp-1"
        assert "temp-1" not in registry

    def test_unknown_raises(self):
        registry = SensorRegistry()
        with pytest.raises(UnknownSensorError):
            registry.get("ghost")
        with pytest.raises(UnknownSensorError):
            registry.unregister("ghost")

    def test_by_type_and_node(self):
        registry = SensorRegistry()
        registry.register(make_metadata("a", "temperature", node_id="n1"))
        registry.register(make_metadata("b", "rain", node_id="n1"))
        registry.register(make_metadata("c", "temperature", node_id="n2"))
        assert {m.sensor_id for m in registry.by_type("temperature")} == {"a", "c"}
        assert {m.sensor_id for m in registry.by_node("n1")} == {"a", "b"}
