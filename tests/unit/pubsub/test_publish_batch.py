"""Unit tests: single-pass batch fan-out through the broker overlay."""

import pytest

from repro.pubsub.subscription import SubscriptionFilter
from tests.unit.pubsub.test_registry import make_metadata


def make_batch(make_tuple, count: int, start: int = 0):
    return [make_tuple(seq=start + i, temperature=20.0 + i)
            for i in range(count)]


class TestPublishBatch:
    def test_fans_out_to_every_matching_subscriber(self, local_broker_net,
                                                   make_tuple):
        net = local_broker_net
        net.publish(make_metadata("t1", "temperature", node_id="edge-1"))
        seen_a, seen_b = [], []
        net.subscribe("edge-1", SubscriptionFilter(sensor_type="temperature"),
                      seen_a.append)
        net.subscribe("edge-2", SubscriptionFilter(sensor_type="temperature"),
                      seen_b.append)
        batch = make_batch(make_tuple, 5)
        initiated = net.publish_batch("t1", batch)
        assert initiated == 2
        assert seen_a == batch
        assert seen_b == batch

    def test_counters_are_tuple_and_message_denominated(self,
                                                        local_broker_net,
                                                        make_tuple):
        net = local_broker_net
        net.publish(make_metadata("t1", "temperature", node_id="edge-1"))
        net.subscribe("edge-1", SubscriptionFilter(sensor_type="temperature"),
                      lambda _t: None)
        net.publish_batch("t1", make_batch(make_tuple, 7))
        assert net.data_messages_sent == 1
        assert net.data_tuples_sent == 7

    def test_paused_subscription_suppresses_whole_batch(self,
                                                        local_broker_net,
                                                        make_tuple):
        net = local_broker_net
        net.publish(make_metadata("t1", "temperature", node_id="edge-1"))
        seen = []
        subscription = net.subscribe(
            "edge-1", SubscriptionFilter(sensor_type="temperature"),
            seen.append,
        )
        subscription.active = False
        initiated = net.publish_batch("t1", make_batch(make_tuple, 4))
        assert initiated == 0
        assert seen == []
        assert subscription.suppressed == 4
        assert net.data_messages_suppressed == 1
        assert net.data_tuples_suppressed == 4

    def test_empty_batch_is_a_no_op(self, local_broker_net):
        net = local_broker_net
        net.publish(make_metadata("t1", "temperature", node_id="edge-1"))
        assert net.publish_batch("t1", []) == 0
        assert net.data_messages_sent == 0

    def test_batch_callback_takes_precedence(self, local_broker_net,
                                             make_tuple):
        net = local_broker_net
        net.publish(make_metadata("t1", "temperature", node_id="edge-1"))
        per_tuple, whole = [], []
        subscription = net.subscribe(
            "edge-1", SubscriptionFilter(sensor_type="temperature"),
            per_tuple.append,
        )
        subscription.batch_callback = whole.append
        batch = make_batch(make_tuple, 3)
        net.publish_batch("t1", batch)
        assert per_tuple == []
        assert len(whole) == 1
        assert list(whole[0]) == batch
        assert subscription.delivered == 3

    def test_crosses_simulated_links_as_one_message(self, broker_net,
                                                    make_tuple):
        net = broker_net
        net.publish(make_metadata("t1", "temperature", node_id="edge-0"))
        seen = []
        net.subscribe("edge-1", SubscriptionFilter(sensor_type="temperature"),
                      seen.append)
        batch = make_batch(make_tuple, 6)
        net.publish_batch("t1", batch)
        net.netsim.clock.run()
        assert seen == batch
        assert net.netsim.stats.messages_sent == 1
        assert net.netsim.stats.tuples_delivered == 6

    def test_exhausted_batch_dead_letters_every_tuple(self, broker_net,
                                                      make_tuple):
        net = broker_net
        net.publish(make_metadata("t1", "temperature", node_id="edge-0"))
        subscription = net.subscribe(
            "edge-1", SubscriptionFilter(sensor_type="temperature"),
            lambda _t: None,
        )
        abandoned = []
        net.on_dead_letter = (
            lambda sub, tuple_, reason: abandoned.append(tuple_.seq)
        )
        net.netsim.topology.node("edge-1").fail()
        batch = make_batch(make_tuple, 3)
        net.publish_batch("t1", batch)
        net.netsim.clock.run()
        assert abandoned == [0, 1, 2]
        assert [letter.tuple.seq for letter in subscription.dead_letters] \
            == [0, 1, 2]
        assert net.data_messages_dead_lettered == 3
        # The whole batch retried as one message per attempt.
        assert net.data_messages_retried == net.retry_policy.max_attempts

    def test_unknown_sensor_raises(self, local_broker_net, make_tuple):
        from repro.errors import PubSubError

        with pytest.raises(PubSubError):
            local_broker_net.publish_batch("ghost",
                                           make_batch(make_tuple, 1))
