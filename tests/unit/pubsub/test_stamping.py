"""Unit tests for spatio-temporal stamp back-fill."""

from repro.pubsub.stamping import backfill_stamp
from repro.stt.event import SttStamp
from repro.stt.spatial import Point
from tests.unit.pubsub.test_registry import make_metadata


class TestBackfill:
    def test_bare_payload_gets_everything_from_advertisement(self):
        metadata = make_metadata()
        tuple_ = backfill_stamp({"v": 1.0}, metadata, now=42.0, seq=3)
        assert tuple_.stamp.time == 42.0
        assert tuple_.stamp.location == metadata.location
        assert tuple_.stamp.themes == metadata.schema.themes
        assert tuple_.source == "temp-1"
        assert tuple_.seq == 3

    def test_partial_stamp_fields_win(self):
        metadata = make_metadata()
        own = SttStamp(time=100.0, location=Point(35.0, 136.0))
        tuple_ = backfill_stamp({"v": 1.0}, metadata, now=42.0, stamp=own)
        assert tuple_.stamp.time == 100.0
        assert tuple_.stamp.location == Point(35.0, 136.0)
        # Themes back-filled from the advertisement when absent.
        assert tuple_.stamp.themes == metadata.schema.themes

    def test_sensor_supplied_themes_kept(self):
        metadata = make_metadata()
        own = SttStamp(time=1.0, location=Point(0, 0), themes=("disaster/flood",))
        tuple_ = backfill_stamp({"v": 1.0}, metadata, now=0.0, stamp=own)
        assert tuple_.stamp.themes[0].path == "disaster/flood"

    def test_granularities_from_schema(self):
        metadata = make_metadata()
        tuple_ = backfill_stamp({"v": 1.0}, metadata, now=0.0)
        assert (
            tuple_.stamp.temporal_granularity
            == metadata.schema.temporal_granularity
        )
        assert (
            tuple_.stamp.spatial_granularity
            == metadata.schema.spatial_granularity
        )
