"""Unit tests for subscription filters and activation."""

import pytest

from repro.errors import PubSubError
from repro.pubsub.subscription import Subscription, SubscriptionFilter
from repro.stt.spatial import Box
from tests.unit.pubsub.test_registry import make_metadata


class TestFilterMatching:
    def test_empty_filter_matches_everything(self):
        assert SubscriptionFilter().matches(make_metadata())

    def test_by_sensor_id(self):
        filter_ = SubscriptionFilter.for_sensor("temp-1")
        assert filter_.matches(make_metadata("temp-1"))
        assert not filter_.matches(make_metadata("temp-2"))

    def test_by_type(self):
        filter_ = SubscriptionFilter(sensor_type="rain")
        assert not filter_.matches(make_metadata(sensor_type="temperature"))
        assert filter_.matches(make_metadata(sensor_type="rain"))

    def test_by_theme_hierarchy(self):
        from repro.stt.thematic import Theme

        filter_ = SubscriptionFilter(theme=Theme("weather"))
        assert filter_.matches(make_metadata(themes=("weather/temperature",)))
        assert not filter_.matches(make_metadata(themes=("mobility/traffic",)))

    def test_by_area(self):
        osaka = Box(south=34.5, west=135.3, north=34.9, east=135.7)
        filter_ = SubscriptionFilter(area=osaka)
        assert filter_.matches(make_metadata())  # Osaka point fixture

    def test_by_frequency_band(self):
        filter_ = SubscriptionFilter(min_frequency=0.01, max_frequency=0.1)
        assert filter_.matches(make_metadata(frequency=1.0 / 60.0))
        assert not filter_.matches(make_metadata(frequency=10.0))

    def test_conjunction(self):
        filter_ = SubscriptionFilter(sensor_type="temperature",
                                     sensor_ids=("other",))
        assert not filter_.matches(make_metadata("temp-1", "temperature"))

    def test_inverted_band_raises(self):
        with pytest.raises(PubSubError):
            SubscriptionFilter(min_frequency=10.0, max_frequency=1.0)


class TestSubscriptionDelivery:
    def test_active_delivers(self, make_tuple):
        seen = []
        subscription = Subscription(
            filter=SubscriptionFilter(), callback=seen.append, node_id="n1"
        )
        assert subscription.deliver(make_tuple(0)) is True
        assert subscription.delivered == 1
        assert len(seen) == 1

    def test_paused_suppresses(self, make_tuple):
        seen = []
        subscription = Subscription(
            filter=SubscriptionFilter(), callback=seen.append, node_id="n1"
        )
        subscription.pause()
        assert subscription.deliver(make_tuple(0)) is False
        assert subscription.suppressed == 1
        assert seen == []

    def test_resume(self, make_tuple):
        subscription = Subscription(
            filter=SubscriptionFilter(), callback=lambda t: None, node_id="n1"
        )
        subscription.pause()
        subscription.resume()
        assert subscription.deliver(make_tuple(0)) is True

    def test_unique_ids(self):
        a = Subscription(filter=SubscriptionFilter(), callback=lambda t: None,
                         node_id="n1")
        b = Subscription(filter=SubscriptionFilter(), callback=lambda t: None,
                         node_id="n1")
        assert a.subscription_id != b.subscription_id
