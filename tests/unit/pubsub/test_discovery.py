"""Unit tests for sensor discovery and organisation criteria."""

import pytest

from repro.errors import PubSubError
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.discovery import DiscoveryService
from repro.sensors.osaka import OSAKA_AREA, osaka_fleet
from repro.stt.spatial import Box


@pytest.fixture
def discovery() -> DiscoveryService:
    topo = Topology.star(leaf_count=3)
    net = BrokerNetwork()
    for sensor in osaka_fleet(topo, extended=True):
        net.publish(sensor.metadata)
    return DiscoveryService(net.registry)


class TestFind:
    def test_by_type(self, discovery):
        temps = discovery.find(sensor_type="temperature")
        assert len(temps) == 4
        assert all(m.sensor_type == "temperature" for m in temps)

    def test_by_theme(self, discovery):
        weather = discovery.find(theme="weather")
        assert len(weather) >= 7  # temps + rain + humidity + wind + pressure

    def test_by_area(self, discovery):
        inside = discovery.find(area=OSAKA_AREA)
        nowhere = discovery.find(
            area=Box(south=0.0, west=0.0, north=1.0, east=1.0)
        )
        assert len(inside) > 0
        assert nowhere == []

    def test_by_physical_flag(self, discovery):
        social = discovery.find(physical=False)
        assert all(not m.physical for m in social)
        assert {m.sensor_type for m in social} >= {"twitter", "traffic"}

    def test_by_frequency(self, discovery):
        fast = discovery.find(min_frequency=0.1)
        assert all(m.frequency >= 0.1 for m in fast)

    def test_results_sorted_by_id(self, discovery):
        results = discovery.find()
        ids = [m.sensor_id for m in results]
        assert ids == sorted(ids)

    def test_inverted_band_raises(self, discovery):
        with pytest.raises(PubSubError):
            discovery.find(min_frequency=10, max_frequency=1)

    def test_conjunction(self, discovery):
        results = discovery.find(sensor_type="temperature", physical=False)
        assert results == []


class TestOrganisation:
    def test_group_by_type(self, discovery):
        groups = discovery.group_by_type()
        assert "temperature" in groups and "twitter" in groups
        assert len(groups["temperature"]) == 4

    def test_group_by_location_cells(self, discovery):
        groups = discovery.group_by_location("prefecture")
        # All Osaka sensors live within one or two prefecture cells.
        assert 1 <= len(groups) <= 3
        total = sum(len(g) for g in groups.values())
        assert total == len(discovery.registry)

    def test_group_by_rate(self, discovery):
        groups = discovery.group_by_rate()
        total = sum(len(g) for g in groups.values())
        assert total == len(discovery.registry)
        # Minute-cadence sensors (temperature every 60s) land in 'minute'.
        assert any("osaka-temp" in m.sensor_id
                   for m in groups.get("minute", []))

    def test_group_by_node_covers_all(self, discovery):
        groups = discovery.group_by_node()
        total = sum(len(g) for g in groups.values())
        assert total == len(discovery.registry)

    def test_types_and_themes(self, discovery):
        assert "temperature" in discovery.types()
        roots = {t.path for t in discovery.themes()}
        assert {"weather", "mobility", "social"} <= roots
