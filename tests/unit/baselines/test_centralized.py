"""Unit tests for the centralized streaming baseline."""

import pytest

from repro.baselines.centralized import CentralizedScnController
from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.errors import UnknownNodeError
from repro.network.topology import Topology
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack


def flow():
    result = Dataflow("central")
    src = result.add_source(SubscriptionFilter(sensor_type="temperature"),
                            node_id="src")
    hot = result.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    sink = result.add_sink("collector", node_id="out")
    result.connect(src, hot)
    result.connect(hot, sink)
    return result


class TestCentralizedController:
    def test_everything_on_center(self):
        topo = Topology.star(leaf_count=3)
        stack = build_stack(
            topology=topo, scn=CentralizedScnController(topo, "hub")
        )
        deployment = stack.executor.deploy(flow())
        for name in ("hot", "out"):
            assert deployment.process(name).node_id == "hub"

    def test_unknown_center_raises(self):
        topo = Topology.star(leaf_count=2)
        with pytest.raises(UnknownNodeError):
            CentralizedScnController(topo, "ghost")

    def test_never_migrates(self):
        topo = Topology.star(leaf_count=2)
        stack = build_stack(
            topology=topo, scn=CentralizedScnController(topo, "hub"),
            rebalance_interval=120.0,
        )
        deployment = stack.executor.deploy(flow())
        stack.topology.node("hub").register_process("hog", demand=1e6)
        stack.run_until(3600.0)
        assert stack.executor.monitor.assignment_log == []
        assert deployment.process("hot").node_id == "hub"

    def test_moves_more_bytes_than_in_network(self):
        # The headline in-network claim: filtering at the edge moves fewer
        # bytes than shipping raw streams to the center.  The flow has one
        # filter per station, so the SCN can push each filter to the edge
        # node that manages its sensor.
        def per_region_flow(stack):
            result = Dataflow("per-region")
            for index, metadata in enumerate(
                stack.broker_network.registry.by_type("temperature")
            ):
                src = result.add_source(
                    SubscriptionFilter(sensor_ids=(metadata.sensor_id,)),
                    node_id=f"src-{index}",
                )
                hot = result.add_operator(
                    FilterSpec("temperature > 24"), node_id=f"hot-{index}"
                )
                out = result.add_sink("collector", node_id=f"out-{index}")
                result.connect(src, hot)
                result.connect(hot, out)
            return result

        central_topo = Topology.star(leaf_count=3)
        central = build_stack(
            topology=central_topo,
            scn=CentralizedScnController(central_topo, "hub"),
            hot=False,  # cool: the filter passes almost nothing
        )
        central.executor.deploy(per_region_flow(central))
        central.run_until(6 * 3600.0)

        distributed = build_stack(topology=Topology.star(leaf_count=3),
                                  hot=False)
        distributed.executor.deploy(per_region_flow(distributed))
        distributed.run_until(6 * 3600.0)

        assert (distributed.netsim.total_link_bytes()
                < 0.5 * central.netsim.total_link_bytes())
