"""Unit tests for the offline batch ETL baseline."""

import pytest

from repro.baselines.batch_etl import BatchEtlPipeline
from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack


@pytest.fixture
def stack():
    return build_stack(hot=True)


def batch_flow() -> Dataflow:
    flow = Dataflow("batch")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    hot = flow.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    sink = flow.add_sink("warehouse", node_id="dw")
    flow.connect(src, hot)
    flow.connect(hot, sink)
    return flow


class TestBatchPipeline:
    def test_collects_raw_then_loads_filtered(self, stack):
        pipeline = BatchEtlPipeline(
            stack.netsim, stack.broker_network, batch_flow(),
            collection_node="hub",
        )
        pipeline.start_collection()
        stack.run_until(14 * 3600.0)
        report = pipeline.close_batch()
        assert report.collected > 0
        assert 0 < report.loaded < report.collected  # filter applied at close
        assert len(pipeline.warehouse) == report.loaded

    def test_staleness_is_half_period_scale(self, stack):
        pipeline = BatchEtlPipeline(
            stack.netsim, stack.broker_network, batch_flow(),
            collection_node="hub",
        )
        pipeline.start_collection()
        stack.run_until(4 * 3600.0)
        report = pipeline.close_batch()
        # Uniform arrivals over 4h -> mean staleness ~2h.
        assert report.mean_staleness == pytest.approx(2 * 3600.0, rel=0.1)

    def test_collection_stops_at_close(self, stack):
        pipeline = BatchEtlPipeline(
            stack.netsim, stack.broker_network, batch_flow(),
            collection_node="hub",
        )
        pipeline.start_collection()
        stack.run_until(3600.0)
        report = pipeline.close_batch()
        collected = pipeline.collected
        stack.run_until(7200.0)
        # Only messages already in flight at close time may still land.
        assert pipeline.collected - collected <= len(
            stack.broker_network.registry.by_type("temperature")
        )

    def test_invalid_flow_rejected(self, stack):
        from repro.errors import ValidationError

        flow = batch_flow()
        flow.remove_node("dw")
        with pytest.raises(ValidationError):
            BatchEtlPipeline(stack.netsim, stack.broker_network, flow,
                             collection_node="hub")

    def test_ships_everything_unfiltered(self, stack):
        # The defining property: raw tuples cross the network even though
        # the dataflow would filter most of them.
        pipeline = BatchEtlPipeline(
            stack.netsim, stack.broker_network, batch_flow(),
            collection_node="hub",
        )
        pipeline.start_collection()
        stack.run_until(3 * 3600.0)  # cool morning: filter passes ~nothing
        report = pipeline.close_batch()
        assert report.collected > 100
        assert report.loaded < report.collected * 0.2
