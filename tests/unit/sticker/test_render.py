"""Unit tests for Sticker ASCII renderings."""

from repro.sticker.feed import StickerFeed
from repro.sticker.render import render_map, render_series


class TestRenderSeries:
    def test_counts_trend(self, make_tuple):
        feed = StickerFeed(bucket_seconds=3600.0)
        for i in range(3):
            feed.push(make_tuple(i, time=100.0))
        feed.push(make_tuple(9, time=4000.0))
        text = render_series(feed, "weather/temperature")
        assert "trend" in text
        assert text.count("\n") == 2  # header + 2 buckets

    def test_attribute_trend(self, make_tuple):
        feed = StickerFeed()
        feed.push(make_tuple(0, temperature=30.0))
        text = render_series(feed, "weather", attribute="temperature")
        assert "30.00" in text

    def test_empty_feed(self):
        feed = StickerFeed()
        assert "no data" in render_series(feed, "weather")

    def test_missing_attribute(self, make_tuple):
        feed = StickerFeed()
        feed.push(make_tuple(0))
        assert "no numeric data" in render_series(feed, "weather",
                                                  attribute="ghost")


class TestRenderMap:
    def test_map_has_rows(self, make_tuple):
        feed = StickerFeed(cell_granularity="city")
        feed.push(make_tuple(0, lat=34.60, lon=135.40))
        feed.push(make_tuple(1, lat=35.68, lon=139.65))
        text = render_map(feed, "weather/temperature")
        assert "map" in text
        assert "|" in text

    def test_empty_map(self):
        feed = StickerFeed()
        assert "no cells" in render_map(feed, "weather")

    def test_bucket_filter(self, make_tuple):
        feed = StickerFeed(bucket_seconds=3600.0)
        feed.push(make_tuple(0, time=100.0))
        assert "no cells" in render_map(feed, "weather/temperature",
                                        bucket_start=7200.0)
