"""Unit tests for the Sticker feed."""

import math

import pytest

from repro.errors import StreamLoaderError
from repro.sticker.feed import StickerFeed


class TestBinning:
    def test_bins_by_time_bucket(self, make_tuple):
        feed = StickerFeed(bucket_seconds=3600.0)
        feed.push(make_tuple(0, time=100.0))
        feed.push(make_tuple(1, time=200.0))
        feed.push(make_tuple(2, time=4000.0))
        bins = feed.bins()
        assert len(bins) == 2
        assert bins[0].count == 2 and bins[1].count == 1

    def test_bins_by_theme(self, make_tuple):
        feed = StickerFeed()
        feed.push(make_tuple(0, themes=("weather/rain",)))
        feed.push(make_tuple(1, themes=("mobility/traffic",)))
        assert feed.themes() == ["mobility/traffic", "weather/rain"]

    def test_multi_theme_tuple_lands_in_each(self, make_tuple):
        feed = StickerFeed()
        feed.push(make_tuple(0, themes=("weather/rain", "disaster/flood")))
        assert len(feed.bins()) == 2

    def test_untagged_bucket(self, make_tuple):
        feed = StickerFeed()
        feed.push(make_tuple(0, themes=()))
        assert feed.themes() == ["(untagged)"]

    def test_numeric_means(self, make_tuple):
        feed = StickerFeed()
        feed.push(make_tuple(0, temperature=10.0))
        feed.push(make_tuple(1, temperature=20.0))
        bin_ = feed.bins()[0]
        assert bin_.mean("temperature") == 15.0
        assert math.isnan(bin_.mean("nonexistent"))

    def test_invalid_bucket_raises(self):
        with pytest.raises(StreamLoaderError):
            StickerFeed(bucket_seconds=0.0)


class TestSeries:
    def test_time_ordered_merged_over_space(self, make_tuple):
        feed = StickerFeed(bucket_seconds=3600.0)
        # Same bucket, two different cells.
        feed.push(make_tuple(0, time=100.0, lat=34.60, lon=135.40))
        feed.push(make_tuple(1, time=200.0, lat=34.75, lon=135.60))
        feed.push(make_tuple(2, time=4000.0))
        series = feed.series("weather/temperature")
        assert [point.count for point in series] == [2, 1]
        assert series[0].bucket_start < series[1].bucket_start

    def test_theme_matching_is_hierarchical(self, make_tuple):
        feed = StickerFeed()
        feed.push(make_tuple(0, themes=("weather/rain",)))
        assert feed.series("weather")[0].count == 1

    def test_empty_series(self, make_tuple):
        feed = StickerFeed()
        assert feed.series("social") == []


class TestJsonDocuments:
    def test_documents_shape(self, make_tuple):
        feed = StickerFeed()
        feed.push(make_tuple(0, temperature=25.0))
        docs = feed.to_json_documents()
        assert len(docs) == 1
        doc = docs[0]
        assert set(doc) == {"bucket_start", "cell", "theme", "count", "means"}
        assert doc["means"]["temperature"] == 25.0
