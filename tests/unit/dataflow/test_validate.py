"""Unit tests for the dataflow consistency checks (C1-C8)."""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import (
    AggregationSpec,
    FilterSpec,
    JoinSpec,
    TriggerOnSpec,
)
from repro.dataflow.validate import validate_dataflow
from repro.errors import ValidationError
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.subscription import SubscriptionFilter
from repro.sensors.osaka import osaka_fleet


@pytest.fixture
def registry():
    net = BrokerNetwork()
    for sensor in osaka_fleet(Topology.star(leaf_count=2)):
        net.publish(sensor.metadata)
    return net.registry


def temp_source(flow, node_id="src", **kwargs):
    return flow.add_source(
        SubscriptionFilter(sensor_ids=("osaka-temp-umeda",)),
        node_id=node_id, **kwargs,
    )


def valid_flow(registry):
    flow = Dataflow("valid")
    src = temp_source(flow)
    op = flow.add_operator(FilterSpec("temperature > 24"), node_id="f")
    sink = flow.add_sink(node_id="k")
    flow.connect(src, op)
    flow.connect(op, sink)
    return flow


class TestHappyPath:
    def test_valid_flow_passes(self, registry):
        report = validate_dataflow(valid_flow(registry), registry)
        assert report.is_valid
        assert report.errors == []

    def test_schemas_propagated_to_every_node(self, registry):
        report = validate_dataflow(valid_flow(registry), registry)
        assert set(report.schemas) == {"src", "f", "k"}
        assert "temperature" in report.schemas["f"]

    def test_source_schema_resolved_from_registry(self, registry):
        flow = valid_flow(registry)
        assert flow.sources["src"].schema is None
        validate_dataflow(flow, registry)
        assert flow.sources["src"].schema is not None

    def test_raise_if_invalid_noop_when_valid(self, registry):
        validate_dataflow(valid_flow(registry), registry).raise_if_invalid()


class TestStructure:
    def test_cycle_detected(self, registry):
        flow = Dataflow("cyclic")
        a = flow.add_operator(FilterSpec("true"), node_id="a")
        b = flow.add_operator(FilterSpec("true"), node_id="b")
        flow.connect(a, b)
        flow.connect(b, a)
        report = validate_dataflow(flow, registry)
        assert not report.is_valid
        assert any("cycle" in str(issue) for issue in report.errors)

    def test_no_sources_is_error(self, registry):
        flow = Dataflow("empty")
        flow.add_sink(node_id="k")
        report = validate_dataflow(flow, registry)
        assert any("no sources" in str(issue) for issue in report.errors)

    def test_unconnected_operator_port(self, registry):
        flow = Dataflow("dangling")
        temp_source(flow)
        flow.add_operator(FilterSpec("temperature > 0"), node_id="f")
        report = validate_dataflow(flow, registry)
        assert any("port 0 is not connected" in str(issue)
                   for issue in report.errors)

    def test_half_connected_join(self, registry):
        flow = Dataflow("half-join")
        src = temp_source(flow)
        join = flow.add_operator(JoinSpec(interval=60.0, predicate="true"),
                                 node_id="j")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, join, port=0)
        flow.connect(join, sink)
        report = validate_dataflow(flow, registry)
        assert any("port 1 is not connected" in str(issue)
                   for issue in report.errors)

    def test_operator_output_unused(self, registry):
        flow = Dataflow("unused")
        src = temp_source(flow)
        flow.add_operator(FilterSpec("temperature > 0"), node_id="f")
        flow.connect(src, "f")
        report = validate_dataflow(flow, registry)
        assert any("not connected to anything" in str(issue)
                   for issue in report.errors)

    def test_sink_without_input(self, registry):
        flow = valid_flow(registry)
        flow.add_sink(node_id="lonely")
        report = validate_dataflow(flow, registry)
        assert any("sink has no incoming" in str(issue)
                   for issue in report.errors)

    def test_unconsumed_source_is_warning_only(self, registry):
        flow = valid_flow(registry)
        flow.add_source(SubscriptionFilter(sensor_ids=("osaka-rain-umeda",)),
                        node_id="lonely-src")
        report = validate_dataflow(flow, registry)
        assert report.is_valid
        assert any("not consumed" in str(issue) for issue in report.warnings)


class TestSchemas:
    def test_bad_condition_attribute(self, registry):
        flow = Dataflow("bad-attr")
        src = temp_source(flow)
        op = flow.add_operator(FilterSpec("rainfall > 3"), node_id="f")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, op)
        flow.connect(op, sink)
        report = validate_dataflow(flow, registry)
        assert any("rainfall" in str(issue) for issue in report.errors)

    def test_error_localised_to_node(self, registry):
        flow = Dataflow("localise")
        src = temp_source(flow)
        good = flow.add_operator(FilterSpec("temperature > 0"), node_id="good")
        bad = flow.add_operator(FilterSpec("ghost > 0"), node_id="bad")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, good)
        flow.connect(good, bad)
        flow.connect(bad, sink)
        report = validate_dataflow(flow, registry)
        assert [issue.node_id for issue in report.errors] == ["bad"]

    def test_downstream_of_broken_node_not_double_reported(self, registry):
        flow = Dataflow("cascade")
        src = temp_source(flow)
        bad = flow.add_operator(FilterSpec("ghost > 0"), node_id="bad")
        after = flow.add_operator(
            AggregationSpec(interval=60.0, attributes=("temperature",),
                            function="AVG"),
            node_id="after",
        )
        sink = flow.add_sink(node_id="k")
        flow.connect(src, bad)
        flow.connect(bad, after)
        flow.connect(after, sink)
        report = validate_dataflow(flow, registry)
        assert len(report.errors) == 1
        assert report.schemas["after"] is None


class TestSourceResolution:
    def test_filter_matching_nothing(self, registry):
        flow = Dataflow("no-match")
        src = flow.add_source(SubscriptionFilter(sensor_ids=("ghost-1",)),
                              node_id="src")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, sink)
        report = validate_dataflow(flow, registry)
        assert any("matches no published sensor" in str(issue)
                   for issue in report.errors)

    def test_filter_matching_mixed_schemas(self, registry):
        flow = Dataflow("mixed")
        # Theme 'weather' matches temperature AND rain sensors.
        from repro.stt.thematic import Theme

        src = flow.add_source(SubscriptionFilter(theme=Theme("weather")),
                              node_id="src")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, sink)
        report = validate_dataflow(flow, registry)
        assert any("incompatible schemas" in str(issue)
                   for issue in report.errors)

    def test_no_registry_and_no_schema_is_error(self):
        flow = Dataflow("no-reg")
        src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                              node_id="src")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, sink)
        report = validate_dataflow(flow, registry=None)
        assert any("no registry" in str(issue) for issue in report.errors)


class TestTriggers:
    def make_trigger_flow(self, registry, connect_control=True,
                          gated_active=False):
        flow = Dataflow("trigger-flow")
        temp = temp_source(flow, node_id="temp")
        rain = flow.add_source(
            SubscriptionFilter(sensor_ids=("osaka-rain-umeda",)),
            node_id="rain", initially_active=gated_active,
        )
        trig = flow.add_operator(
            TriggerOnSpec(interval=300.0, window=3600.0,
                          condition="avg_temperature > 25",
                          targets=("osaka-rain-umeda",)),
            node_id="trig",
        )
        sink = flow.add_sink(node_id="k")
        flow.connect(temp, trig)
        flow.connect(rain, sink)
        if connect_control:
            flow.connect_control(trig, rain)
        return flow

    def test_valid_trigger_flow(self, registry):
        report = validate_dataflow(self.make_trigger_flow(registry), registry)
        assert report.is_valid

    def test_trigger_without_control_edge(self, registry):
        flow = self.make_trigger_flow(registry, connect_control=False)
        report = validate_dataflow(flow, registry)
        assert any("no control edges" in str(issue) for issue in report.errors)

    def test_trigger_on_active_source_warns(self, registry):
        flow = self.make_trigger_flow(registry, gated_active=True)
        report = validate_dataflow(flow, registry)
        assert report.is_valid
        assert any("initially active" in str(issue)
                   for issue in report.warnings)

    def test_target_mismatch_warns(self, registry):
        flow = Dataflow("mismatch")
        temp = temp_source(flow, node_id="temp")
        rain = flow.add_source(
            SubscriptionFilter(sensor_ids=("osaka-rain-umeda",)),
            node_id="rain", initially_active=False,
        )
        trig = flow.add_operator(
            TriggerOnSpec(interval=300.0, condition="avg_temperature > 25",
                          targets=("some-other-sensor",)),
            node_id="trig",
        )
        sink = flow.add_sink(node_id="k")
        flow.connect(temp, trig)
        flow.connect(rain, sink)
        flow.connect_control(trig, rain)
        report = validate_dataflow(flow, registry)
        assert any("does not overlap" in str(issue)
                   for issue in report.warnings)


class TestThematicCompatibility:
    def _join_flow(self, left_theme, right_theme):
        from repro.schema.schema import StreamSchema

        flow = Dataflow("thematic")
        a = flow.add_source(
            SubscriptionFilter(),
            node_id="a",
        )
        flow.sources["a"].schema = StreamSchema.build(
            {"x": "float"}, themes=(left_theme,) if left_theme else ()
        )
        b = flow.add_source(SubscriptionFilter(), node_id="b")
        flow.sources["b"].schema = StreamSchema.build(
            {"y": "float"}, themes=(right_theme,) if right_theme else ()
        )
        join = flow.add_operator(JoinSpec(interval=60.0, predicate="true"),
                                 node_id="j")
        sink = flow.add_sink(node_id="k")
        flow.connect(a, join, port=0)
        flow.connect(b, join, port=1)
        flow.connect(join, sink)
        return flow

    def test_disjoint_themes_warn(self):
        flow = self._join_flow("weather/rain", "mobility/traffic")
        report = validate_dataflow(flow)
        assert report.is_valid  # a warning, not an error
        assert any("thematically unrelated" in str(issue)
                   for issue in report.warnings)

    def test_related_themes_silent(self):
        flow = self._join_flow("weather/rain", "weather")
        report = validate_dataflow(flow)
        assert not any("thematically" in str(issue)
                       for issue in report.warnings)

    def test_untagged_stream_silent(self):
        flow = self._join_flow("", "weather/rain")
        report = validate_dataflow(flow)
        assert not any("thematically" in str(issue)
                       for issue in report.warnings)


class TestValidationError:
    def test_raise_if_invalid_carries_issues(self, registry):
        flow = Dataflow("broken")
        src = temp_source(flow)
        op = flow.add_operator(FilterSpec("ghost > 0"), node_id="f")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, op)
        flow.connect(op, sink)
        report = validate_dataflow(flow, registry)
        with pytest.raises(ValidationError) as exc_info:
            report.raise_if_invalid()
        assert exc_info.value.issues
