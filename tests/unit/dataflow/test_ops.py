"""Unit tests for operator specifications."""

import pytest

from repro.errors import DataflowError, SchemaError, TypeMismatchError
from repro.dataflow.ops import (
    AggregationSpec,
    CullSpaceSpec,
    CullTimeSpec,
    FilterSpec,
    JoinSpec,
    TransformSpec,
    TriggerOffSpec,
    TriggerOnSpec,
    ValidateSpec,
    VirtualPropertySpec,
    spec_from_dict,
    statistics_schema,
)
from repro.schema.types import AttributeType

ALL_SPECS = [
    FilterSpec("temperature > 24"),
    TransformSpec(assignments={"temperature": "temperature + 1"}),
    ValidateSpec(rules=("humidity <= 1",)),
    VirtualPropertySpec("double", "temperature * 2"),
    CullTimeSpec(rate=5, start=0.0, end=100.0),
    CullSpaceSpec(rate=5, corner1=(34.5, 135.3), corner2=(34.9, 135.7)),
    AggregationSpec(interval=60.0, attributes=("temperature",), function="AVG"),
    JoinSpec(interval=60.0, predicate="left.station == right.station"),
    TriggerOnSpec(interval=60.0, condition="avg_temperature > 25",
                  targets=("rain-1",)),
    TriggerOffSpec(interval=60.0, condition="count == 0", targets=("rain-1",)),
]


class TestStatisticsSchema:
    def test_numeric_attrs_get_aggregates(self, weather_schema):
        stats = statistics_schema(weather_schema)
        assert stats.type_of("count") is AttributeType.INT
        for prefix in ("avg", "min", "max", "sum"):
            assert f"{prefix}_temperature" in stats
        assert "last_station" in stats
        assert "avg_station" not in stats

    def test_units_carried(self, weather_schema):
        stats = statistics_schema(weather_schema)
        assert stats.attribute("avg_temperature").unit == "celsius"


class TestInference:
    def test_filter_passes_schema_through(self, weather_schema):
        assert FilterSpec("temperature > 0").infer_schema([weather_schema]) \
            == weather_schema

    def test_filter_bad_condition_raises(self, weather_schema):
        with pytest.raises(TypeMismatchError):
            FilterSpec("temperature + 1").infer_schema([weather_schema])

    def test_transform_changes_type(self, weather_schema):
        spec = TransformSpec(assignments={"station": "length(station)"})
        result = spec.infer_schema([weather_schema])
        assert result.type_of("station") is AttributeType.INT

    def test_transform_adds_attribute(self, weather_schema):
        spec = TransformSpec(assignments={"f": "temperature * 1.8 + 32"})
        result = spec.infer_schema([weather_schema])
        assert result.type_of("f") is AttributeType.FLOAT

    def test_transform_empty_raises(self):
        with pytest.raises(DataflowError):
            TransformSpec()

    def test_virtual_property_type_inferred(self, weather_schema):
        spec = VirtualPropertySpec("hot", "temperature > 30")
        result = spec.infer_schema([weather_schema])
        assert result.type_of("hot") is AttributeType.BOOL

    def test_virtual_property_collision_raises(self, weather_schema):
        spec = VirtualPropertySpec("temperature", "humidity")
        with pytest.raises(SchemaError):
            spec.infer_schema([weather_schema])

    def test_cull_time_validates_interval(self, weather_schema):
        with pytest.raises(DataflowError):
            CullTimeSpec(rate=2, start=10.0, end=0.0).infer_schema(
                [weather_schema]
            )

    def test_aggregation_output(self, weather_schema):
        spec = AggregationSpec(interval=3600.0, attributes=("temperature",),
                               function="AVG")
        result = spec.infer_schema([weather_schema])
        assert result.names == ("avg_temperature",)

    def test_aggregation_bad_function_rejected_at_construction(self):
        with pytest.raises(DataflowError):
            AggregationSpec(interval=60.0, attributes=("x",), function="MODE")

    def test_join_two_schemas(self, weather_schema):
        spec = JoinSpec(interval=60.0,
                        predicate="left.station == right.station")
        result = spec.infer_schema([weather_schema, weather_schema])
        assert "left_temperature" in result

    def test_join_wrong_arity_raises(self, weather_schema):
        spec = JoinSpec(interval=60.0, predicate="true")
        with pytest.raises(DataflowError, match="2 input"):
            spec.infer_schema([weather_schema])

    def test_trigger_condition_against_statistics(self, weather_schema):
        spec = TriggerOnSpec(interval=60.0, condition="avg_temperature > 25",
                             targets=("x",))
        assert spec.infer_schema([weather_schema]) is None

    def test_trigger_raw_attribute_condition_rejected(self, weather_schema):
        # Conditions run against window statistics, not raw attributes.
        spec = TriggerOnSpec(interval=60.0, condition="temperature > 25",
                             targets=("x",))
        with pytest.raises(Exception):
            spec.infer_schema([weather_schema])

    def test_trigger_no_targets_raises(self):
        with pytest.raises(DataflowError):
            TriggerOnSpec(interval=60.0, condition="count > 0", targets=())


class TestBuildOperator:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_every_spec_builds_runtime_operator(self, spec):
        operator = spec.build_operator()
        assert operator.input_ports == spec.input_count

    def test_blocking_kinds(self):
        assert AggregationSpec(interval=60.0, attributes=("x",),
                               function="AVG").build_operator().is_blocking
        assert not FilterSpec("true").build_operator().is_blocking


class TestSerialization:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_round_trip(self, spec):
        assert spec_from_dict(spec.to_dict()) == spec

    def test_unknown_kind_raises(self):
        with pytest.raises(DataflowError, match="unknown operator kind"):
            spec_from_dict({"kind": "teleport"})

    def test_bad_parameters_raise(self):
        with pytest.raises(DataflowError, match="bad parameters"):
            spec_from_dict({"kind": "filter", "conditionz": "x"})
