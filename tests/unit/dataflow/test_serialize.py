"""Unit tests for canvas document (de)serialization."""

import json

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import (
    CullSpaceSpec,
    FilterSpec,
    JoinSpec,
    TriggerOnSpec,
)
from repro.dataflow.serialize import dataflow_from_dict, dataflow_to_dict
from repro.errors import DataflowError
from repro.network.qos import QosPolicy
from repro.pubsub.subscription import SubscriptionFilter
from repro.stt.spatial import Box
from repro.stt.thematic import Theme


def rich_flow() -> Dataflow:
    flow = Dataflow("rich")
    a = flow.add_source(
        SubscriptionFilter(
            sensor_type="temperature",
            theme=Theme("weather"),
            area=Box(south=34.5, west=135.3, north=34.9, east=135.7),
            min_frequency=0.001,
            max_frequency=1.0,
        ),
        node_id="a", label="temps",
    )
    b = flow.add_source(SubscriptionFilter(sensor_ids=("rain-1", "rain-2")),
                        node_id="b", initially_active=False)
    trig = flow.add_operator(
        TriggerOnSpec(interval=300.0, window=3600.0,
                      condition="avg_temperature > 25", targets=("rain-1",)),
        node_id="trig",
    )
    cull = flow.add_operator(
        CullSpaceSpec(rate=5, corner1=(34.5, 135.3), corner2=(34.9, 135.7)),
        node_id="cull",
    )
    join = flow.add_operator(
        JoinSpec(interval=60.0, predicate="left.station == right.station"),
        node_id="join",
    )
    sink = flow.add_sink(
        "warehouse",
        config={"value_attribute": "rain_rate"},
        qos=QosPolicy(qos_class="reliable", segment_bytes=1024,
                      priority=2, max_latency=0.5),
        node_id="dw",
    )
    flow.connect(a, trig)
    flow.connect(b, cull)
    flow.connect(cull, join, port=0)
    flow.connect(b, join, port=1)
    flow.connect(join, sink)
    flow.connect_control(trig, b)
    return flow


class TestRoundTrip:
    def test_dict_round_trip_exact(self):
        flow = rich_flow()
        document = dataflow_to_dict(flow)
        rebuilt = dataflow_from_dict(document)
        assert dataflow_to_dict(rebuilt) == document

    def test_json_serializable(self):
        document = dataflow_to_dict(rich_flow())
        text = json.dumps(document)
        assert dataflow_to_dict(dataflow_from_dict(json.loads(text))) == document

    def test_structure_preserved(self):
        rebuilt = dataflow_from_dict(dataflow_to_dict(rich_flow()))
        assert set(rebuilt.sources) == {"a", "b"}
        assert set(rebuilt.operators) == {"trig", "cull", "join"}
        assert len(rebuilt.data_edges) == 5
        assert len(rebuilt.control_edges) == 1

    def test_filter_fields_preserved(self):
        rebuilt = dataflow_from_dict(dataflow_to_dict(rich_flow()))
        filter_ = rebuilt.sources["a"].filter
        assert filter_.sensor_type == "temperature"
        assert filter_.theme == Theme("weather")
        assert filter_.area.south == 34.5
        assert filter_.min_frequency == 0.001

    def test_qos_preserved(self):
        rebuilt = dataflow_from_dict(dataflow_to_dict(rich_flow()))
        qos = rebuilt.sinks["dw"].qos
        assert qos.qos_class.value == "reliable"
        assert qos.segment_bytes == 1024
        assert qos.priority == 2
        assert qos.max_latency == 0.5

    def test_infinite_latency_serialised_as_null(self):
        flow = Dataflow("plain")
        src = flow.add_source(SubscriptionFilter(), node_id="s")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, sink)
        document = dataflow_to_dict(flow)
        assert document["sinks"][0]["qos"]["max_latency"] is None
        rebuilt = dataflow_from_dict(document)
        assert rebuilt.sinks["k"].qos.max_latency == float("inf")

    def test_initially_active_preserved(self):
        rebuilt = dataflow_from_dict(dataflow_to_dict(rich_flow()))
        assert rebuilt.sources["a"].initially_active
        assert not rebuilt.sources["b"].initially_active


class TestMalformed:
    def test_missing_key_raises(self):
        with pytest.raises(DataflowError, match="malformed"):
            dataflow_from_dict({"name": "x", "sources": [{"filter": {}}]})

    def test_empty_document_gives_empty_flow(self):
        flow = dataflow_from_dict({})
        assert flow.name == "dataflow"
        assert not flow.node_ids
