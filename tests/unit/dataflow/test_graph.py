"""Unit tests for the conceptual dataflow graph."""

import pytest

from repro.errors import DataflowError, PortError
from repro.dataflow.graph import Dataflow, SinkKind
from repro.dataflow.ops import AggregationSpec, FilterSpec, JoinSpec, TriggerOnSpec
from repro.pubsub.subscription import SubscriptionFilter


@pytest.fixture
def flow() -> Dataflow:
    return Dataflow("test-flow")


def add_source(flow, node_id="", **kwargs):
    return flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                           node_id=node_id, **kwargs)


class TestNodes:
    def test_auto_ids_unique(self, flow):
        a = add_source(flow)
        b = add_source(flow)
        assert a != b

    def test_explicit_id(self, flow):
        assert add_source(flow, node_id="temp") == "temp"

    def test_duplicate_id_raises(self, flow):
        add_source(flow, node_id="x")
        with pytest.raises(DataflowError, match="already used"):
            flow.add_operator(FilterSpec("true"), node_id="x")

    def test_contains_and_node(self, flow):
        src = add_source(flow)
        assert src in flow
        assert flow.node(src).node_id == src
        with pytest.raises(DataflowError):
            flow.node("ghost")

    def test_bad_sink_kind_raises(self, flow):
        with pytest.raises(DataflowError, match="unknown sink kind"):
            flow.add_sink("database")

    def test_sink_kinds(self, flow):
        for kind in SinkKind.ALL:
            flow.add_sink(kind)


class TestDataEdges:
    def test_connect_chain(self, flow):
        src = add_source(flow)
        op = flow.add_operator(FilterSpec("temperature > 0"))
        sink = flow.add_sink()
        flow.connect(src, op)
        flow.connect(op, sink)
        assert len(flow.data_edges) == 2
        assert flow.inputs_of(op)[0].source_id == src
        assert flow.outputs_of(op)[0].target_id == sink

    def test_source_cannot_receive(self, flow):
        a = add_source(flow)
        b = add_source(flow)
        with pytest.raises(PortError, match="cannot receive"):
            flow.connect(a, b)

    def test_sink_has_no_output(self, flow):
        src = add_source(flow)
        sink = flow.add_sink()
        flow.connect(src, sink)
        with pytest.raises(PortError, match="no output"):
            flow.connect(sink, src)

    def test_trigger_has_no_data_output(self, flow):
        trig = flow.add_operator(
            TriggerOnSpec(interval=60.0, condition="count > 0", targets=("s",))
        )
        sink = flow.add_sink()
        with pytest.raises(PortError, match="control-only"):
            flow.connect(trig, sink)

    def test_port_bounds(self, flow):
        src = add_source(flow)
        op = flow.add_operator(FilterSpec("true"))
        with pytest.raises(PortError, match="ports 0..0"):
            flow.connect(src, op, port=1)

    def test_join_accepts_two_ports(self, flow):
        a = add_source(flow)
        b = add_source(flow)
        join = flow.add_operator(JoinSpec(interval=60.0, predicate="true"))
        flow.connect(a, join, port=0)
        flow.connect(b, join, port=1)
        assert len(flow.inputs_of(join)) == 2

    def test_port_double_connect_raises(self, flow):
        a = add_source(flow)
        b = add_source(flow)
        op = flow.add_operator(FilterSpec("true"))
        flow.connect(a, op)
        with pytest.raises(PortError, match="already connected"):
            flow.connect(b, op)

    def test_disconnect(self, flow):
        src = add_source(flow)
        op = flow.add_operator(FilterSpec("true"))
        flow.connect(src, op)
        flow.disconnect(src, op)
        assert flow.data_edges == []
        with pytest.raises(DataflowError):
            flow.disconnect(src, op)


class TestControlEdges:
    def test_trigger_to_source(self, flow):
        src = add_source(flow)
        trig = flow.add_operator(
            TriggerOnSpec(interval=60.0, condition="count > 0", targets=("s",))
        )
        flow.connect_control(trig, src)
        assert flow.controlled_sources(trig) == [src]

    def test_non_trigger_cannot_control(self, flow):
        src = add_source(flow)
        op = flow.add_operator(FilterSpec("true"))
        with pytest.raises(PortError, match="not a trigger"):
            flow.connect_control(op, src)

    def test_control_must_target_source(self, flow):
        trig = flow.add_operator(
            TriggerOnSpec(interval=60.0, condition="count > 0", targets=("s",))
        )
        op = flow.add_operator(FilterSpec("true"))
        with pytest.raises(PortError, match="must target sources"):
            flow.connect_control(trig, op)

    def test_duplicate_control_edge_raises(self, flow):
        src = add_source(flow)
        trig = flow.add_operator(
            TriggerOnSpec(interval=60.0, condition="count > 0", targets=("s",))
        )
        flow.connect_control(trig, src)
        with pytest.raises(PortError, match="exists"):
            flow.connect_control(trig, src)


class TestEditing:
    def test_remove_node_cleans_edges(self, flow):
        src = add_source(flow)
        op = flow.add_operator(FilterSpec("true"))
        sink = flow.add_sink()
        flow.connect(src, op)
        flow.connect(op, sink)
        flow.remove_node(op)
        assert op not in flow
        assert flow.data_edges == []

    def test_remove_unknown_raises(self, flow):
        with pytest.raises(DataflowError):
            flow.remove_node("ghost")

    def test_replace_operator_keeps_edges(self, flow):
        src = add_source(flow)
        op = flow.add_operator(FilterSpec("temperature > 0"))
        sink = flow.add_sink()
        flow.connect(src, op)
        flow.connect(op, sink)
        flow.replace_operator(op, FilterSpec("temperature > 10"))
        assert flow.operators[op].spec.condition == "temperature > 10"
        assert len(flow.data_edges) == 2

    def test_replace_with_different_arity_raises(self, flow):
        op = flow.add_operator(FilterSpec("true"))
        with pytest.raises(DataflowError, match="input port"):
            flow.replace_operator(op, JoinSpec(interval=60.0, predicate="true"))


class TestTopology:
    def test_topological_order(self, flow):
        src = add_source(flow)
        a = flow.add_operator(FilterSpec("true"))
        b = flow.add_operator(
            AggregationSpec(interval=60.0, attributes=("temperature",),
                            function="AVG")
        )
        sink = flow.add_sink()
        flow.connect(src, a)
        flow.connect(a, b)
        flow.connect(b, sink)
        order = flow.topological_order()
        assert order.index(src) < order.index(a) < order.index(b) < order.index(sink)
