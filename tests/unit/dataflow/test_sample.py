"""Unit tests for sample-based step-by-step debugging."""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import (
    AggregationSpec,
    FilterSpec,
    JoinSpec,
    TriggerOnSpec,
)
from repro.dataflow.sample import run_sample, sample_from_sensors
from repro.errors import DataflowError, ValidationError
from repro.pubsub.subscription import SubscriptionFilter
from repro.schema.schema import StreamSchema


@pytest.fixture
def schema(weather_schema) -> StreamSchema:
    return weather_schema


def flow_with_schema(schema):
    flow = Dataflow("sampled")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          schema=schema, node_id="src")
    hot = flow.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    sink = flow.add_sink(node_id="k")
    flow.connect(src, hot)
    flow.connect(hot, sink)
    return flow


class TestRunSample:
    def test_per_node_outputs(self, schema, make_tuple):
        flow = flow_with_schema(schema)
        samples = {"src": [make_tuple(i, temperature=20.0 + i) for i in range(10)]}
        result = run_sample(flow, samples)
        assert len(result.at("src")) == 10
        assert len(result.at("hot")) == 5
        assert len(result.at("k")) == 5  # sink shows what arrives

    def test_blocking_operator_flushed_once(self, schema, make_tuple):
        flow = Dataflow("agg")
        src = flow.add_source(SubscriptionFilter(), schema=schema, node_id="src")
        agg = flow.add_operator(
            AggregationSpec(interval=60.0, attributes=("temperature",),
                            function="AVG"),
            node_id="agg",
        )
        sink = flow.add_sink(node_id="k")
        flow.connect(src, agg)
        flow.connect(agg, sink)
        samples = {"src": [make_tuple(i, temperature=float(i)) for i in range(4)]}
        result = run_sample(flow, samples)
        assert len(result.at("agg")) == 1
        assert result.at("agg")[0]["avg_temperature"] == 1.5

    def test_join_preview(self, schema, make_tuple):
        flow = Dataflow("join")
        a = flow.add_source(SubscriptionFilter(), schema=schema, node_id="a")
        b = flow.add_source(SubscriptionFilter(), schema=schema, node_id="b")
        join = flow.add_operator(
            JoinSpec(interval=60.0, predicate="left.station == right.station"),
            node_id="j",
        )
        sink = flow.add_sink(node_id="k")
        flow.connect(a, join, port=0)
        flow.connect(b, join, port=1)
        flow.connect(join, sink)
        samples = {
            "a": [make_tuple(0, station="umeda")],
            "b": [make_tuple(1, station="umeda"), make_tuple(2, station="namba")],
        }
        result = run_sample(flow, samples)
        assert len(result.at("j")) == 1

    def test_trigger_dry_run_commands(self, schema, make_tuple):
        flow = Dataflow("trig")
        src = flow.add_source(SubscriptionFilter(), schema=schema, node_id="src",
                              initially_active=False)
        temp = flow.add_source(SubscriptionFilter(), schema=schema, node_id="temp")
        trig = flow.add_operator(
            TriggerOnSpec(interval=60.0, condition="avg_temperature > 25",
                          targets=("rain-1",)),
            node_id="trig",
        )
        sink = flow.add_sink(node_id="k")
        flow.connect(temp, trig)
        flow.connect(src, sink)
        flow.connect_control(trig, src)
        samples = {
            "temp": [make_tuple(i, temperature=30.0) for i in range(3)],
            "src": [make_tuple(9)],
        }
        result = run_sample(flow, samples)
        assert "trig" in result.commands
        assert result.commands["trig"][0].activate is True

    def test_invalid_flow_raises(self, schema, make_tuple):
        flow = Dataflow("invalid")
        src = flow.add_source(SubscriptionFilter(), schema=schema, node_id="src")
        bad = flow.add_operator(FilterSpec("ghost > 1"), node_id="bad")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, bad)
        flow.connect(bad, sink)
        with pytest.raises(ValidationError):
            run_sample(flow, {"src": [make_tuple(0)]})

    def test_missing_sample_batch_raises(self, schema):
        flow = flow_with_schema(schema)
        with pytest.raises(DataflowError, match="no sample batch"):
            run_sample(flow, {})


class TestSampleFromSensors:
    def test_probes_requested_count(self, schema):
        from repro.sensors.physical import temperature_sensor
        from repro.stt.spatial import Point

        flow = flow_with_schema(schema)
        sensor = temperature_sensor("t1", Point(34.69, 135.50), "edge-0")
        batches = sample_from_sensors(flow, {"src": sensor}, count=5, start=0.0)
        assert len(batches["src"]) == 5
        times = [t.stamp.time for t in batches["src"]]
        assert times == sorted(times)

    def test_unknown_source_raises(self, schema):
        from repro.sensors.physical import temperature_sensor
        from repro.stt.spatial import Point

        flow = flow_with_schema(schema)
        sensor = temperature_sensor("t1", Point(34.69, 135.50), "edge-0")
        with pytest.raises(DataflowError):
            sample_from_sensors(flow, {"ghost": sensor})

    def test_sparse_sensor_bounded_attempts(self, schema):
        from repro.sensors.social import twitter_sensor
        from repro.sensors.osaka import OSAKA_AREA

        flow = flow_with_schema(schema)
        sensor = twitter_sensor("tw1", OSAKA_AREA, "edge-0")
        batches = sample_from_sensors(flow, {"src": sensor}, count=3)
        assert len(batches["src"]) <= 3  # may be fewer; must terminate
