"""Unit tests for canvas rendering (DOT + ASCII)."""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec, TriggerOnSpec
from repro.dataflow.render import render_ascii, to_dot
from repro.pubsub.subscription import SubscriptionFilter


@pytest.fixture
def flow() -> Dataflow:
    flow = Dataflow("render-me")
    temp = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                           node_id="temp")
    rain = flow.add_source(SubscriptionFilter(sensor_type="rain"),
                           node_id="rain", initially_active=False)
    trig = flow.add_operator(
        TriggerOnSpec(interval=300.0, condition="avg_temperature > 25",
                      targets=("r1",)),
        node_id="trig",
    )
    filt = flow.add_operator(FilterSpec("rain_rate > 10"), node_id="filt")
    sink = flow.add_sink("warehouse", node_id="dw")
    flow.connect(temp, trig)
    flow.connect(rain, filt)
    flow.connect(filt, sink)
    flow.connect_control(trig, rain)
    return flow


class TestDot:
    def test_all_nodes_and_edges_present(self, flow):
        dot = to_dot(flow)
        for node_id in ("temp", "rain", "trig", "filt", "dw"):
            assert f'"{node_id}"' in dot
        assert '"rain" -> "filt"' in dot
        assert '"trig" -> "rain"' in dot and "dashed" in dot

    def test_shapes_by_role(self, flow):
        dot = to_dot(flow)
        assert "shape=house" in dot
        assert "shape=box" in dot
        assert "shape=cylinder" in dot

    def test_dormant_sources_marked(self, flow):
        assert "(dormant)" in to_dot(flow)

    def test_quotes_escaped(self):
        flow = Dataflow('with "quotes"')
        assert 'digraph "with \\"quotes\\""' in to_dot(flow)

    def test_port_labels_on_joins(self):
        from repro.dataflow.ops import JoinSpec

        flow = Dataflow("join-render")
        a = flow.add_source(SubscriptionFilter(), node_id="a")
        b = flow.add_source(SubscriptionFilter(), node_id="b")
        join = flow.add_operator(JoinSpec(interval=60.0, predicate="true"),
                                 node_id="j")
        sink = flow.add_sink(node_id="k")
        flow.connect(a, join, port=0)
        flow.connect(b, join, port=1)
        flow.connect(join, sink)
        assert 'label="port 1"' in to_dot(flow)


class TestAscii:
    def test_layers_follow_topology(self, flow):
        text = render_ascii(flow)
        assert text.index("layer 0") < text.index("layer 1")
        assert "temp (src)" in text
        assert "rain (src, dormant)" in text
        assert "trig [trigger-on]" in text
        assert "dw <warehouse>" in text

    def test_edges_listed(self, flow):
        text = render_ascii(flow)
        assert "rain --> filt" in text
        assert "trig ~~> rain" in text

    def test_empty_flow(self):
        text = render_ascii(Dataflow("empty"))
        assert "empty" in text
