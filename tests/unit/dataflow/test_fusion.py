"""Unit tests for the fusion planner (maximal non-blocking chains)."""

import pytest

from repro.dataflow.fusion import (
    FUSIBLE_KINDS,
    chains_for,
    plan_fusion,
    validate_chains,
)
from repro.dsn.ast import (
    DsnChannel,
    DsnFuse,
    DsnProgram,
    DsnService,
    DsnShard,
    ServiceRole,
)
from repro.errors import DsnError


def _program(ops, channels, shards=()):
    """Build a program: source "src" -> ops -> sink "k", plus ``channels``.

    ``ops`` maps service name -> kind; ``channels`` are (source, target)
    or (source, target, port) triples.
    """
    program = DsnProgram(name="p")
    program.services.append(
        DsnService(role=ServiceRole.SOURCE, name="src", kind="sensor-stream")
    )
    for name, kind in ops.items():
        program.services.append(
            DsnService(role=ServiceRole.OPERATOR, name=name, kind=kind)
        )
    program.services.append(
        DsnService(role=ServiceRole.SINK, name="k", kind="collector")
    )
    for edge in channels:
        port = edge[2] if len(edge) > 2 else 0
        program.channels.append(DsnChannel(edge[0], edge[1], port))
    for service, count in shards:
        program.shards.append(
            DsnShard(service=service, count=count, keys=("station",))
        )
    return program


def _linear(kinds):
    """src -> a -> b -> ... -> k with one operator per kind."""
    names = [f"op{i}" for i in range(len(kinds))]
    ops = dict(zip(names, kinds))
    path = ["src", *names, "k"]
    channels = list(zip(path, path[1:]))
    return _program(ops, channels), names


class TestPlanner:
    def test_linear_chain_fuses_whole(self):
        program, names = _linear(["filter", "transform", "validate",
                                  "virtual-property"])
        assert plan_fusion(program) == [tuple(names)]

    def test_every_fusible_kind_participates(self):
        program, names = _linear(sorted(FUSIBLE_KINDS))
        assert plan_fusion(program) == [tuple(names)]

    def test_single_operator_is_not_a_chain(self):
        program, _ = _linear(["filter"])
        assert plan_fusion(program) == []

    def test_blocking_operator_splits_chain(self):
        # f -> t -> AGG -> v -> c: the aggregation never joins, leaving
        # one chain on each side.
        program, _ = _linear(
            ["filter", "transform", "aggregation", "validate", "cull-time"]
        )
        assert plan_fusion(program) == [("op0", "op1"), ("op3", "op4")]

    def test_trigger_never_joins(self):
        program, _ = _linear(["filter", "trigger-on", "transform"])
        assert plan_fusion(program) == []

    def test_sharded_member_excluded(self):
        program, names = _linear(["filter", "transform", "validate"])
        program.shards.append(
            DsnShard(service="op1", count=4, keys=("station",))
        )
        # op1 runs as 4 replica processes; nothing is left to pair with.
        assert plan_fusion(program) == []

    def test_shard_count_one_does_not_block(self):
        program, names = _linear(["filter", "transform"])
        program.shards.append(
            DsnShard(service="op1", count=1, keys=("station",))
        )
        assert plan_fusion(program) == [tuple(names)]

    def test_cross_cut_subscriber_blocks_hop(self):
        # a -> b but a also feeds a second sink: eliding a -> b would
        # hide a's output stream from the tap, so the hop must stay.
        program = _program(
            {"a": "filter", "b": "transform"},
            [("src", "a"), ("a", "b"), ("a", "k"), ("b", "k")],
        )
        assert plan_fusion(program) == []

    def test_fan_in_blocks_hop(self):
        # b has two producers; a -> b is not a private hop.
        program = _program(
            {"a": "filter", "b": "transform"},
            [("src", "a"), ("src", "b"), ("a", "b")],
        )
        assert plan_fusion(program) == []

    def test_head_may_have_fan_in_tail_may_fan_out(self):
        # Fan-in into the head and fan-out from the tail are fine: only
        # interior hops collapse.
        program = _program(
            {"a": "filter", "b": "transform"},
            [("src", "a"), ("src", "a", 0), ("a", "b"), ("b", "k"),
             ("b", "k", 0)],
        )
        # "src" -> "a" twice gives a in-degree 2; a -> b is still the
        # only channel out of a and into b.
        assert plan_fusion(program) == [("a", "b")]

    def test_two_disjoint_chains(self):
        program = _program(
            {"a": "filter", "b": "transform", "g": "aggregation",
             "c": "validate", "d": "cull-space"},
            [("src", "a"), ("a", "b"), ("b", "g"), ("g", "c"), ("c", "d"),
             ("d", "k")],
        )
        assert plan_fusion(program) == [("a", "b"), ("c", "d")]


class TestValidateChains:
    def test_valid_chain_accepted(self):
        program, names = _linear(["filter", "transform", "validate"])
        validate_chains(program, [tuple(names)])

    def test_short_chain_rejected(self):
        program, _ = _linear(["filter", "transform"])
        with pytest.raises(DsnError, match="at least 2"):
            validate_chains(program, [("op0",)])

    def test_overlap_rejected(self):
        program, _ = _linear(["filter", "transform", "validate"])
        with pytest.raises(DsnError, match="more than one"):
            validate_chains(program, [("op0", "op1"), ("op1", "op2")])

    def test_non_fusible_hop_rejected(self):
        program, _ = _linear(["filter", "aggregation"])
        with pytest.raises(DsnError, match="not a fusible hop"):
            validate_chains(program, [("op0", "op1")])

    def test_skipping_a_member_rejected(self):
        # op0 -> op2 is not a channel; the hint must follow real hops.
        program, _ = _linear(["filter", "transform", "validate"])
        with pytest.raises(DsnError, match="not a fusible hop"):
            validate_chains(program, [("op0", "op2")])


class TestChainsFor:
    def test_fuse_false_disables(self):
        program, _ = _linear(["filter", "transform", "validate"])
        assert chains_for(program, fuse=False) == []

    def test_planner_is_default(self):
        program, names = _linear(["filter", "transform"])
        assert chains_for(program) == [tuple(names)]

    def test_explicit_hints_pin_the_plan(self):
        # The planner would fuse all three; an explicit hint keeps the
        # plan to the declared pair.
        program, _ = _linear(["filter", "transform", "validate"])
        program.fuses.append(DsnFuse(members=("op0", "op1")))
        assert chains_for(program) == [("op0", "op1")]

    def test_explicit_hints_validated(self):
        program, _ = _linear(["filter", "aggregation"])
        program.fuses.append(DsnFuse(members=("op0", "op1")))
        with pytest.raises(DsnError, match="not a fusible hop"):
            chains_for(program)
