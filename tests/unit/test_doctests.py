"""Execute the runnable doctest examples embedded in docstrings."""

import doctest

import pytest

import repro.expr
import repro.network.simclock
import repro.stt.units

MODULES = [
    repro.expr,
    repro.network.simclock,
    repro.stt.units,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda module: module.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert result.failed == 0
    assert result.attempted > 0  # the module really carries examples
