"""Integration test: workload-aware migration under overload.

Figure 3's monitor shows "which node is in charge of executing an
operation and when the assignment changes" — this test drives the whole
loop: overload -> SCN decision -> process move -> monitor log -> stream
continuity.
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack


@pytest.fixture
def deployed():
    stack = build_stack(rebalance_interval=120.0)
    flow = Dataflow("migratory")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    keep = flow.add_operator(FilterSpec("temperature > -100"), node_id="keep")
    out = flow.add_sink("collector", node_id="out")
    flow.connect(src, keep)
    flow.connect(keep, out)
    deployment = stack.executor.deploy(flow)
    stack.run_until(600.0)  # establish live rates
    return stack, deployment


class TestMigrationLoop:
    def test_full_cycle(self, deployed):
        stack, deployment = deployed
        origin = deployment.process("keep").node_id

        # Saturate the hosting node with an external workload.
        stack.topology.node(origin).register_process("external-hog",
                                                     demand=5000.0)
        stack.run_until(1800.0)

        # The SCN moved the process and the monitor logged it.
        moved = deployment.process("keep").node_id
        changes = [c for c in stack.executor.monitor.assignment_log
                   if c.process_id == "migratory:keep"]
        assert changes
        assert changes[0].from_node == origin
        assert moved == changes[-1].to_node
        assert "utilization" in changes[0].reason

    def test_stream_survives_migration(self, deployed):
        stack, deployment = deployed
        origin = deployment.process("keep").node_id
        stack.topology.node(origin).register_process("external-hog",
                                                     demand=5000.0)
        stack.run_until(1800.0)
        count_at_move = len(deployment.collected("out"))
        stack.run_until(5400.0)
        assert len(deployment.collected("out")) > count_at_move

    def test_monitor_flags_suffering_node_before_move(self, deployed):
        stack, deployment = deployed
        origin = deployment.process("keep").node_id
        stack.topology.node(origin).register_process("external-hog",
                                                     demand=5000.0)
        assert origin in stack.executor.monitor.suffering_nodes()

    def test_placement_map_updated(self, deployed):
        stack, deployment = deployed
        origin = deployment.process("keep").node_id
        stack.topology.node(origin).register_process("external-hog",
                                                     demand=5000.0)
        stack.run_until(1800.0)
        assert deployment.placements["keep"].node_id \
            == deployment.process("keep").node_id

    def test_old_node_released(self, deployed):
        stack, deployment = deployed
        origin = deployment.process("keep").node_id
        stack.topology.node(origin).register_process("external-hog",
                                                     demand=5000.0)
        stack.run_until(1800.0)
        assert "migratory:keep" not in stack.topology.node(origin).processes
