"""Determinism audit: same seed, same knobs -> byte-identical runs.

The simulator's whole value rests on reproducibility: two runs of the
same scenario with the same seed must agree on *every* observable — the
metrics registry snapshot, the set of retained trace ids, and the exact
sink order — even with every PR-5 knob engaged at once (shards=4,
batch=32, trace sampling=0.5).  Any wall-clock or unseeded-``random``
leakage in the sharded merge plane, the batcher, or the samplers shows up
here as a diff.

Three scenarios are audited: the paper's Section 3 flow (where a blanket
shard request is a documented no-op — nothing there has a partition key),
the sharded per-station aggregation flow that actually exercises the
partitioner, envelopes, and merge stage, and the same sharded flow with
the elastic rebalance loop engaged on a hair-trigger policy — the
migration log itself becomes an audited observable, so a wall-clock or
unseeded-``random`` leak in the control loop (monitor sampling, policy
tie-breaks, barrier scheduling) shows up as a diff.
"""

import json

import pytest

from repro.runtime.rebalance import RebalanceConfig
from repro.scenario import (
    apply_batch_hints,
    build_stack,
    fused_pipeline_flow,
    osaka_scenario_flow,
    sharded_aggregation_flow,
)

SHARDS = 4
BATCH = 32
SAMPLING = 0.5
HOURS = 6.0

#: hair-trigger policy for the elastic case: any measurable imbalance
#: acts after a single epoch, so migrations definitely happen inside the
#: audited window.
AGGRESSIVE = RebalanceConfig(imbalance_ratio=1.01, hysteresis=1,
                             cooldown_epochs=2, split_hot_keys=True)


def _observables(stack, deployment, sink_names):
    """Everything a rerun must reproduce byte-for-byte."""
    sinks = {}
    for name in sink_names:
        sinks[name] = [
            (t.source, t.seq, t.stamp.time, sorted(t.payload.items()))
            for t in deployment.collected(name)
        ]
    return {
        "metrics": json.loads(stack.obs.metrics.to_json()),
        "trace_ids": sorted(stack.obs.tracer.trace_ids()),
        "traces_started": stack.obs.tracer.traces_started,
        "sinks": sinks,
        "assignments": deployment.assignments(),
        "warehouse": len(stack.warehouse),
        "sticker": stack.sticker.pushed,
        "dead_letters": stack.broker_network.data_messages_dead_lettered,
        "migrations": [
            (e.time, e.service, e.key, e.kind, e.from_shard, e.to_shards)
            for e in stack.executor.monitor.migration_log
        ],
    }


def _run(flow_builder, sink_names, shards, elastic=False, fuse=True):
    stack = build_stack(hot=True, seed=7, observability=SAMPLING,
                        batching=BATCH)
    if elastic:
        stack.executor.rebalance_config = AGGRESSIVE
    flow = flow_builder(stack)
    deployment = stack.executor.deploy(flow, shards=shards, elastic=elastic,
                                       fuse=fuse)
    apply_batch_hints(deployment, stack.fleet)
    stack.run_until(HOURS * 3600.0)
    return _observables(stack, deployment, sink_names)


class TestDeterminismAudit:
    @pytest.mark.parametrize(
        "flow_builder,sink_names,shards,elastic",
        [
            (osaka_scenario_flow, ("traffic-collector",), SHARDS, False),
            (sharded_aggregation_flow, ("averages",), SHARDS, False),
            (sharded_aggregation_flow, ("averages",), SHARDS, True),
            (fused_pipeline_flow, ("fused-out",), None, False),
        ],
        ids=["osaka-blanket-noop", "stations-sharded", "stations-elastic",
             "fused-chain"],
    )
    def test_same_seed_runs_are_byte_identical(self, flow_builder,
                                               sink_names, shards, elastic):
        first = _run(flow_builder, sink_names, shards, elastic)
        second = _run(flow_builder, sink_names, shards, elastic)
        assert first == second

    def test_sharded_run_actually_sharded(self):
        """Guard: the audited sharded run exercises the merge plane."""
        stack = build_stack(hot=True, seed=7, observability=SAMPLING,
                            batching=BATCH)
        deployment = stack.executor.deploy(
            sharded_aggregation_flow(stack), shards=SHARDS
        )
        stack.run_until(3600.0)
        assert "station-avg" in deployment.shard_groups
        group = deployment.shard_groups["station-avg"]
        assert len(group.members) == SHARDS
        assert deployment.collected("averages")

    def test_elastic_run_actually_rebalances(self):
        """Guard: the elastic audit case is not vacuously identical — the
        hair-trigger policy really fires migrations inside the window."""
        audit = _run(sharded_aggregation_flow, ("averages",), SHARDS,
                     elastic=True)
        assert audit["migrations"], "hair-trigger policy never acted"

    def test_fused_run_actually_fused(self):
        """Guard: the fused audit case really collapses the chain."""
        stack = build_stack(hot=True, seed=7, observability=SAMPLING,
                            batching=BATCH)
        deployment = stack.executor.deploy(fused_pipeline_flow(stack))
        stack.run_until(3600.0)
        assert deployment.fused_chains == {
            "keep+double+shift": ("keep", "double", "shift")
        }
        assert deployment.collected("fused-out")

    def test_fused_and_unfused_sinks_byte_identical(self):
        """Fusion is a deployment detail: with every PR-5 knob engaged,
        the fused run's sink contents equal the unfused run's exactly.
        (The full observable dict legitimately differs — the elided hops
        drop transmit metrics and spans.)"""
        fused = _run(fused_pipeline_flow, ("fused-out",), None)
        unfused = _run(fused_pipeline_flow, ("fused-out",), None, fuse=False)
        assert fused["sinks"] == unfused["sinks"]
        assert fused["dead_letters"] == unfused["dead_letters"]
