"""Integration tests for the fault-tolerant runtime.

A fault matrix — {node kill, broker drop-burst, flaky source, mid-window
kill} x {non-blocking flow, blocking flow} — plus the acceptance scenario:
killing a node mid-run of the Osaka scenario re-places its processes on
survivors, restores blocking-operator state from the last checkpoint, and
leaves the post-recovery sink output equal to a no-fault run of the same
seed modulo the documented loss bound (tuples emitted while the victim was
down may be dead-lettered; nothing is lost silently and nothing is
duplicated).
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import AggregationSpec, FilterSpec
from repro.dsn.scn import ScnController
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.executor import Executor
from repro.runtime.lifecycle import DeploymentState
from repro.scenario import (
    build_stack,
    osaka_scenario_flow,
    sharded_aggregation_flow,
)
from repro.schema.schema import StreamSchema
from repro.sensors.faults import FlakySensor
from repro.sensors.physical import temperature_sensor
from repro.streams.shard import partition_index
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

BLOCKING_IDS = ["non-blocking", "blocking"]


def simple_flow(blocking: bool) -> Dataflow:
    """temperature -> (filter | windowed aggregation) -> collector."""
    flow = Dataflow("ft")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temp"
    )
    if blocking:
        work = flow.add_operator(
            AggregationSpec(interval=600.0, attributes=("temperature",),
                            function="AVG"),
            node_id="work",
        )
    else:
        work = flow.add_operator(
            FilterSpec("temperature > -100"), node_id="work"
        )
    out = flow.add_sink("collector", node_id="out")
    flow.connect(temp, work)
    flow.connect(work, out)
    return flow


@pytest.mark.parametrize("blocking", [False, True], ids=BLOCKING_IDS)
class TestFaultMatrix:
    def deploy(self, blocking):
        stack = build_stack(hot=True, seed=11)
        deployment = stack.executor.deploy(simple_flow(blocking))
        return stack, deployment

    def test_node_kill_replaces_and_stream_continues(self, blocking):
        stack, deployment = self.deploy(blocking)
        stack.run_until(1200.0)
        victim = deployment.process("work").node_id
        stack.netsim.kill_node(victim)
        stack.run_until(1800.0)  # detector: 4 x 30s silence, checked at 30s
        assert deployment.process("work").node_id != victim
        changes = stack.executor.monitor.assignment_log
        assert any("down" in change.reason for change in changes)
        assert deployment.state is DeploymentState.RUNNING
        before = len(deployment.collected("out"))
        stack.run_until(2 * 3600.0)
        assert len(deployment.collected("out")) > before

    def test_broker_drop_burst_recovered_by_retry(self, blocking):
        stack, deployment = self.deploy(blocking)
        stack.run_until(900.0)
        victim = deployment.process("work").node_id
        # A blip shorter than both the retry budget (0.5+1+2 s) and the
        # failure detector's patience: sensors emit at t=960 into the
        # outage; retries redeliver once the node is back.
        stack.clock.schedule(59.9, lambda: stack.netsim.kill_node(victim))
        stack.clock.schedule(62.0, lambda: stack.netsim.revive_node(victim))
        stack.run_until(1800.0)
        net = stack.broker_network
        assert net.data_messages_retried >= 1
        assert net.data_messages_dead_lettered == 0
        # The blip was too short for the detector: nothing was re-placed.
        changes = stack.executor.monitor.assignment_log
        assert all("down" not in change.reason for change in changes)
        assert len(deployment.collected("out")) > 0

    def test_flaky_source_degrades_and_recovers(self, blocking):
        stack = build_stack(hot=True, seed=11, attach_fleet=False)
        base = temperature_sensor("flaky-temp", Point(34.70, 135.50), "edge-0")
        flaky = FlakySensor(base.metadata, base.generator,
                            up_duration=900.0, down_duration=600.0)
        flaky.attach(stack.broker_network, stack.clock)
        deployment = stack.executor.deploy(simple_flow(blocking))
        monitor = stack.executor.monitor
        stack.run_until(1000.0)  # sensor drops out at t=900
        assert deployment.state is DeploymentState.DEGRADED
        assert any(record.event == "degraded" for record in monitor.logs)
        count_while_degraded = len(deployment.collected("out"))
        stack.run_until(2000.0)  # republished at t=1500
        assert deployment.state is DeploymentState.RUNNING
        assert any(record.event == "recovered" for record in monitor.logs)
        assert len(deployment.collected("out")) > count_while_degraded

    def test_mid_window_kill_restores_checkpoint(self, blocking):
        stack, deployment = self.deploy(blocking)
        process = deployment.process("work")
        stack.run_until(900.0)  # halfway through the 600-1200 window
        victim = process.node_id
        stack.netsim.kill_node(victim)
        stack.run_until(1500.0)
        assert process.node_id != victim
        monitor = stack.executor.monitor
        if blocking:
            assert process.restores >= 1
            restored = [record for record in monitor.logs
                        if record.event == "checkpoint-restored"]
            assert restored
            # The restored snapshot predates the kill: "state from t=NNNs".
            snapshot_time = float(
                restored[0].detail.split("t=")[1].split("s")[0]
            )
            assert snapshot_time <= 900.0
        else:
            # Stateless operators carry no checkpoint; recovery is a move.
            assert process.restores == 0
        stack.run_until(2400.0)
        assert len(deployment.collected("out")) > 0


@pytest.mark.parametrize("blocking", [False, True], ids=BLOCKING_IDS)
class TestDeadLetterAudit:
    """Every retry exhaustion is audited exactly once, everywhere.

    An outage long enough to exhaust the retry budget (0.5+1+2 s) but
    shorter than the failure detector's patience produces dead letters;
    the broker counter, the subscriptions' queues, the monitor's audit
    log, and the metrics registry must all agree — one record per
    exhausted tuple, no duplicates, nothing silent.
    """

    def test_exhaustions_produce_exactly_one_record_each(self, blocking):
        stack = build_stack(hot=True, seed=11, observability=0.0)
        deployment = stack.executor.deploy(simple_flow(blocking))
        stack.run_until(930.0)
        victim = deployment.process("work").node_id
        # 70s outage: sensors emit at t=960 and their retries (0.5+1+2 s)
        # exhaust while the node is still down, but heartbeats resume
        # before the failure detector's re-placement verdict.
        stack.netsim.kill_node(victim)
        stack.clock.schedule(70.0, lambda: stack.netsim.revive_node(victim))
        stack.run_until(1800.0)

        net = stack.broker_network
        monitor = stack.executor.monitor
        assert net.data_messages_dead_lettered >= 1

        # Broker counter == monitor audit log == per-subscription queues.
        assert len(monitor.dead_letter_log) == net.data_messages_dead_lettered
        subscriptions = [
            subscription
            for binding in deployment.bindings.values()
            for subscription in binding.subscriptions
        ]
        queued = sum(len(s.dead_letters) for s in subscriptions)
        assert queued == net.data_messages_dead_lettered

        # No duplicates: each (subscription, tuple) pair at most once.
        letters = [
            (s.subscription_id, letter.tuple.source, letter.tuple.seq)
            for s in subscriptions
            for letter in s.dead_letters
        ]
        assert len(letters) == len(set(letters))

        # Every audit record names the victim and a real subscription.
        known = {s.subscription_id for s in subscriptions}
        for record in monitor.dead_letter_log:
            assert record.subscription_id in known
            assert record.node_id == victim

        # The metrics pipeline carries the same count.
        counter = stack.obs.metrics.counter("broker_dead_letters_total")
        assert counter.value == net.data_messages_dead_lettered


class TestShardFaultMatrix:
    """Fault matrix rows for the sharded merge plane (DESIGN.md §12):
    {kill one shard mid-window, kill the merge stage, kill during a
    rebalance round} over a 4-way sharded grouped aggregation.

    A dedicated stack (one scripted sensor, star topology — killing a
    leaf cannot partition the survivors) keeps the input schedule
    identical between the faulted run and its no-fault baseline, so
    recovery semantics can be pinned exactly: sibling shards' groups are
    byte-identical everywhere, and only the victim shard's groups — only
    in windows overlapping the outage — may be missing or perturbed.
    Nothing is ever duplicated.
    """

    SHARDS = 4
    WINDOW = 60.0
    KILL_AT = 630.0
    #: detection (4 x 30s silence) + re-placement + the first
    #: post-recovery flush, which may re-aggregate checkpointed tuples.
    AFFECTED_UNTIL = 900.0
    #: restored state may predate the kill by one checkpoint interval.
    AFFECTED_FROM = KILL_AT - 60.0
    END = 1500.0
    STATIONS = 8

    def _metadata(self):
        return SensorMetadata(
            sensor_id="shard-temp",
            sensor_type="temperature",
            schema=StreamSchema.build(
                {"temperature": "float", "station": "str"},
                themes=("weather/temperature",),
            ),
            frequency=0.5,
            location=Point(34.69, 135.50),
            node_id="hub",
        )

    def _stack(self):
        netsim = NetworkSimulator(topology=Topology.star(leaf_count=5))
        network = BrokerNetwork(netsim=netsim)
        executor = Executor(
            netsim, network, scn=ScnController(netsim.topology)
        )
        network.publish(self._metadata())
        return netsim, network, executor

    def _schedule_readings(self, netsim, network):
        """Same scripted input for every run: one reading every 2 s."""
        def publish(seq: int):
            network.publish_data("shard-temp", SensorTuple(
                payload={
                    "temperature": 15.0 + seq % 13,
                    "station": f"st-{seq % self.STATIONS}",
                },
                stamp=SttStamp(time=netsim.clock.now,
                               location=Point(34.69, 135.50)),
                source="shard-temp",
                seq=seq,
            ))

        for seq in range(int(self.END / 2.0)):
            netsim.clock.schedule(2.0 * seq + 1.0,
                                  lambda seq=seq: publish(seq))

    def _deploy(self):
        netsim, network, executor = self._stack()
        flow = sharded_aggregation_flow(None, interval=self.WINDOW)
        deployment = executor.deploy(flow, shards={"station-avg": self.SHARDS})
        self._schedule_readings(netsim, network)
        return netsim, deployment

    @staticmethod
    def _by_key(deployment):
        """Sink contents keyed by (window close time, station)."""
        out = {}
        for tuple_ in deployment.collected("averages"):
            key = (tuple_.stamp.time, tuple_.payload["station"])
            assert key not in out, f"duplicate flush entry {key}"
            out[key] = tuple_.payload["avg_temperature"]
        return out

    def _victim_shard(self, deployment):
        """A member on its own leaf: not the hub (sensor), not the merge."""
        group = deployment.shard_groups["station-avg"]
        merge_node = group.merge.node_id
        for index, member in enumerate(group.members):
            if member.node_id not in (merge_node, "hub"):
                siblings = [m for m in group.members if m is not member]
                if all(m.node_id != member.node_id for m in siblings):
                    return index, member, siblings
        pytest.skip("placement packed the victim with the merge stage")

    @pytest.fixture(scope="class")
    def baseline(self):
        netsim, deployment = self._deploy()
        netsim.clock.run_until(self.END)
        return self._by_key(deployment)

    def test_kill_one_shard_recovers_only_its_groups(self, baseline):
        netsim, deployment = self._deploy()
        netsim.clock.run_until(self.KILL_AT)
        index, victim, siblings = self._victim_shard(deployment)
        victim_node = victim.node_id
        sibling_nodes = [member.node_id for member in siblings]
        netsim.kill_node(victim_node)
        netsim.clock.run_until(self.AFFECTED_UNTIL)

        # Exactly the dead shard was re-placed, from its own checkpoint;
        # its siblings never moved and never restored.
        assert victim.node_id != victim_node
        assert victim.restores >= 1
        assert [member.node_id for member in siblings] == sibling_nodes
        assert all(member.restores == 0 for member in siblings)

        netsim.clock.run_until(self.END)
        faulted = self._by_key(deployment)
        for (time, station), value in baseline.items():
            shard = partition_index((station,), self.SHARDS)
            in_outage = self.AFFECTED_FROM <= time <= self.AFFECTED_UNTIL
            if shard == index and in_outage:
                continue  # the documented loss/perturbation bound
            assert faulted.get((time, station)) == value, (
                f"unaffected group ({time}, {station}) diverged"
            )
        # Nothing outside the baseline is ever invented.
        assert set(faulted) <= set(baseline)

    def test_kill_merge_stage_restores_pending_epochs(self, baseline):
        netsim, deployment = self._deploy()
        netsim.clock.run_until(self.KILL_AT)
        group = deployment.shard_groups["station-avg"]
        merge = group.merge
        member_nodes = [member.node_id for member in group.members]
        # Pin the merge to a leaf of its own first (placement favours the
        # hub, but killing the hub would sever every spoke at once).
        spare = next(
            node.node_id for node in netsim.topology.live_nodes()
            if node.node_id != "hub" and node.node_id not in member_nodes
        )
        merge.move_to(spare)
        merge_node = merge.node_id
        netsim.kill_node(merge_node)
        netsim.clock.run_until(self.AFFECTED_UNTIL)

        # The merge is stateful-but-non-blocking: checkpointable -> it
        # recovers through the same checkpoint path as blocking shards.
        assert merge.node_id != merge_node
        assert merge.restores >= 1
        assert [m.node_id for m in group.members] == member_nodes

        netsim.clock.run_until(self.END)
        faulted = self._by_key(deployment)   # asserts no duplicates
        assert set(faulted) <= set(baseline)
        # Envelopes lost in transit to the dead merge are the only gap.
        for (time, station), value in baseline.items():
            if self.AFFECTED_FROM <= time <= self.AFFECTED_UNTIL:
                continue
            assert faulted.get((time, station)) == value

    def test_kill_during_rebalance_round(self, baseline):
        netsim, deployment = self._deploy()
        # The executor's rebalance rounds tick at 300 s; kill a shard
        # node at exactly that instant so recovery and the coordination
        # round race on the same virtual timestamp.
        netsim.clock.run_until(600.0 - 1e-9)
        index, victim, _ = self._victim_shard(deployment)
        victim_node = victim.node_id
        netsim.clock.schedule(1e-9, lambda: netsim.kill_node(victim_node))
        netsim.clock.run_until(self.END)

        assert deployment.state is DeploymentState.RUNNING
        for process in deployment.processes.values():
            assert netsim.topology.node(process.node_id).up
        faulted = self._by_key(deployment)   # asserts no duplicates
        assert set(faulted) <= set(baseline)
        # Flushes before the kill and well after recovery are intact.
        for (time, station), value in baseline.items():
            if time < 540.0 or time > 870.0:
                assert faulted.get((time, station)) == value


class TestFusedFaultMatrix:
    """Fault matrix row for the fused data plane (DESIGN.md §14): kill
    the node hosting a fused chain mid-run.  The chain is one process,
    so recovery must re-place it as *one unit* — a single assignment
    change for the ``a+b+c`` process, never per-member moves — and the
    stream must replay cleanly: the faulted sink is a subset of the
    no-fault baseline, missing only tuples published inside the outage
    window.
    """

    CHAIN = ("keep", "double", "bump")
    KILL_AT = 630.0
    #: detection (4 x 30s silence) + re-placement latency.
    RECOVERED_BY = 900.0
    END = 1500.0

    def _metadata(self):
        return SensorMetadata(
            sensor_id="fused-temp",
            sensor_type="temperature",
            schema=StreamSchema.build(
                {"temperature": "float"},
                themes=("weather/temperature",),
            ),
            frequency=0.5,
            location=Point(34.69, 135.50),
            node_id="hub",
        )

    def _flow(self) -> Dataflow:
        from repro.dataflow.ops import TransformSpec, VirtualPropertySpec

        flow = Dataflow("fused-ft")
        flow.add_source(
            SubscriptionFilter(sensor_type="temperature"), node_id="temp"
        )
        flow.add_operator(FilterSpec("temperature > -100"), node_id="keep")
        flow.add_operator(
            VirtualPropertySpec("double", "temperature * 2"),
            node_id="double",
        )
        flow.add_operator(
            TransformSpec(assignments={"temperature": "temperature + 1"}),
            node_id="bump",
        )
        flow.add_sink("collector", node_id="out")
        flow.connect("temp", "keep")
        flow.connect("keep", "double")
        flow.connect("double", "bump")
        flow.connect("bump", "out")
        return flow

    def _schedule_readings(self, netsim, network):
        """Same scripted input for every run: one reading every 2 s."""
        def publish(seq: int):
            network.publish_data("fused-temp", SensorTuple(
                payload={"temperature": 15.0 + seq % 13},
                stamp=SttStamp(time=netsim.clock.now,
                               location=Point(34.69, 135.50)),
                source="fused-temp",
                seq=seq,
            ))

        for seq in range(int(self.END / 2.0)):
            netsim.clock.schedule(2.0 * seq + 1.0,
                                  lambda seq=seq: publish(seq))

    def _deploy(self):
        netsim = NetworkSimulator(topology=Topology.star(leaf_count=5))
        network = BrokerNetwork(netsim=netsim)
        executor = Executor(
            netsim, network, scn=ScnController(netsim.topology)
        )
        network.publish(self._metadata())
        deployment = executor.deploy(self._flow())
        self._schedule_readings(netsim, network)
        return netsim, executor, deployment

    def _chain_process(self, netsim, deployment):
        """The fused process, evicted to its own leaf so killing it
        cannot sever the hub (the sensor's node)."""
        key = "+".join(self.CHAIN)
        assert deployment.fused_chains == {key: self.CHAIN}
        process = deployment.processes[key]
        occupied = {p.node_id for n, p in deployment.processes.items()
                    if n != key}
        if process.node_id in occupied | {"hub"}:
            spare = next(
                node.node_id for node in netsim.topology.live_nodes()
                if node.node_id != "hub" and node.node_id not in occupied
            )
            process.move_to(spare)
        return key, process

    def test_chain_re_placed_as_one_unit(self):
        netsim, executor, deployment = self._deploy()
        netsim.clock.run_until(self.KILL_AT)
        key, process = self._chain_process(netsim, deployment)
        victim = process.node_id
        netsim.kill_node(victim)
        netsim.clock.run_until(self.RECOVERED_BY)

        assert process.node_id != victim
        assert netsim.topology.node(process.node_id).up
        # Every member resolves to the same (moved) process: one unit.
        for member in self.CHAIN:
            assert deployment.process(member) is process
            assert deployment.placements[member].node_id == process.node_id
        # Exactly one assignment change for the chain, none per member.
        down = [change for change in executor.monitor.assignment_log
                if "down" in change.reason and change.from_node == victim]
        changed = [change.process_id for change in down]
        assert changed.count(f"fused-ft:{key}") == 1
        assert not any(
            change_id.endswith(f":{member}")
            for change_id in changed for member in self.CHAIN
        )

        netsim.clock.run_until(self.END)
        assert deployment.state is DeploymentState.RUNNING
        assert len(deployment.collected("out")) > 0

    def test_replay_clean_modulo_outage_window(self):
        def run(kill: bool):
            netsim, _, deployment = self._deploy()
            netsim.clock.run_until(self.KILL_AT)
            if kill:
                _, process = self._chain_process(netsim, deployment)
                netsim.kill_node(process.node_id)
            netsim.clock.run_until(self.END)
            return {t.seq: t.stamp.time
                    for t in deployment.collected("out")}

        baseline = run(kill=False)
        faulted = run(kill=True)
        # At-most-once: nothing invented, nothing duplicated (seq-keyed).
        assert set(faulted) <= set(baseline)
        for seq in set(baseline) - set(faulted):
            # Only tuples published during the outage may be missing.
            assert self.KILL_AT <= baseline[seq] <= self.RECOVERED_BY
        # And tuples from after recovery did arrive.
        assert any(time > self.RECOVERED_BY for time in faulted.values())


class TestElasticFaultMatrix:
    """Chaos rows for the elastic rebalance plane (DESIGN.md §13):
    {kill the donor before the handoff, kill the recipient before the
    restore, kill the donor right after the handoff, kill the merge
    during a hot-key split} over a 4-way elastic grouped aggregation.

    The same scripted-sensor discipline as :class:`TestShardFaultMatrix`
    keeps the input schedule identical across runs, so the handoff
    protocol's crash-safety claims can be pinned exactly: an action with
    a dead participant aborts (recorded, never half-applied); an action
    that committed survives the donor's death because both ends were
    checkpointed at the barrier; and in every case nothing is duplicated
    and only outage-window groups of the dead shard may be missing.
    """

    SHARDS = 4
    WINDOW = 60.0
    #: the forced action's epoch boundary (handoff at BOUNDARY + eps).
    #: Deliberately *off* the executor's 300 s placement-round grid: a
    #: round that fires between the kill and the handoff would re-place
    #: the dead participant first and the action would no longer abort.
    BOUNDARY = 660.0
    AFFECTED_UNTIL = 900.0
    AFFECTED_FROM = BOUNDARY - 60.0
    END = 1500.0
    STATIONS = 8

    def _metadata(self):
        return SensorMetadata(
            sensor_id="elastic-temp",
            sensor_type="temperature",
            schema=StreamSchema.build(
                {"temperature": "float", "station": "str"},
                themes=("weather/temperature",),
            ),
            frequency=0.5,
            location=Point(34.69, 135.50),
            node_id="hub",
        )

    def _schedule_readings(self, netsim, network):
        def publish(seq: int):
            network.publish_data("elastic-temp", SensorTuple(
                payload={
                    "temperature": 15.0 + seq % 13,
                    "station": f"st-{seq % self.STATIONS}",
                },
                stamp=SttStamp(time=netsim.clock.now,
                               location=Point(34.69, 135.50)),
                source="elastic-temp",
                seq=seq,
            ))

        for seq in range(int(self.END / 2.0)):
            netsim.clock.schedule(2.0 * seq + 1.0,
                                  lambda seq=seq: publish(seq))

    def _deploy(self):
        from repro.runtime.rebalance import RebalanceConfig

        netsim = NetworkSimulator(topology=Topology.star(leaf_count=5))
        network = BrokerNetwork(netsim=netsim)
        executor = Executor(
            netsim, network, scn=ScnController(netsim.topology),
            rebalance_config=RebalanceConfig(imbalance_ratio=float("inf")),
        )
        network.publish(self._metadata())
        flow = sharded_aggregation_flow(None, interval=self.WINDOW)
        deployment = executor.deploy(
            flow, shards={"station-avg": self.SHARDS}, elastic=True
        )
        self._schedule_readings(netsim, network)
        return netsim, executor, deployment

    @staticmethod
    def _by_key(deployment):
        out = {}
        for tuple_ in deployment.collected("averages"):
            key = (tuple_.stamp.time, tuple_.payload["station"])
            assert key not in out, f"duplicate flush entry {key}"
            out[key] = tuple_.payload["avg_temperature"]
        return out

    def _movable_station(self, deployment):
        """A station whose owner shard sits alone on a killable leaf,
        plus a recipient shard on a *different* killable leaf."""
        group = deployment.shard_groups["station-avg"]
        merge_node = group.merge.node_id
        nodes = [member.node_id for member in group.members]

        def killable(index):
            node = nodes[index]
            return node not in (merge_node, "hub") and nodes.count(node) == 1

        for station in range(self.STATIONS):
            owner = partition_index((f"st-{station}",), self.SHARDS)
            if not killable(owner):
                continue
            for recipient in range(self.SHARDS):
                if recipient != owner and killable(recipient):
                    return f"st-{station}", owner, recipient
        pytest.skip("placement packed every shard with the merge stage")

    def _force_migration(self, netsim, deployment, station, owner, recipient):
        rebalancer = deployment.rebalancers["station-avg"]
        netsim.clock.schedule_at(
            self.BOUNDARY - 30.0,
            lambda: rebalancer.executor.schedule_migration(
                (station,), owner, recipient
            ),
        )

    @pytest.fixture(scope="class")
    def baseline(self):
        """Elastic deployment, no forced action, no fault."""
        netsim, _, deployment = self._deploy()
        netsim.clock.run_until(self.END)
        return self._by_key(deployment)

    def _assert_converged(self, faulted, baseline, affected_shard):
        assert set(faulted) <= set(baseline)
        for (time, station), value in baseline.items():
            shard = partition_index((station,), self.SHARDS)
            in_outage = self.AFFECTED_FROM <= time <= self.AFFECTED_UNTIL
            if shard == affected_shard and in_outage:
                continue
            assert faulted.get((time, station)) == value, (
                f"unaffected group ({time}, {station}) diverged"
            )

    def test_donor_killed_before_handoff_aborts(self, baseline):
        netsim, executor, deployment = self._deploy()
        netsim.clock.run_until(self.BOUNDARY - 60.0)
        station, owner, recipient = self._movable_station(deployment)
        group = deployment.shard_groups["station-avg"]
        donor_node = group.members[owner].node_id
        self._force_migration(netsim, deployment, station, owner, recipient)
        netsim.clock.schedule_at(self.BOUNDARY - 1.0,
                                 lambda: netsim.kill_node(donor_node))
        netsim.clock.run_until(self.END)

        events = executor.monitor.migration_log
        assert [e.kind for e in events] == ["aborted"]
        assert "node down" in events[0].reason
        # Nothing half-applied: routing untouched, no shard disowned it.
        assert group.assignment.overrides == {}
        assert all((station,) not in m.operator.disowned
                   for m in group.members)
        # The PR 1 path recovered the donor; output converged.
        assert group.members[owner].node_id != donor_node
        assert group.members[owner].restores >= 1
        assert deployment.state is DeploymentState.RUNNING
        self._assert_converged(self._by_key(deployment), baseline, owner)

    def test_recipient_killed_before_restore_aborts(self, baseline):
        netsim, executor, deployment = self._deploy()
        netsim.clock.run_until(self.BOUNDARY - 60.0)
        station, owner, recipient = self._movable_station(deployment)
        group = deployment.shard_groups["station-avg"]
        recipient_node = group.members[recipient].node_id
        self._force_migration(netsim, deployment, station, owner, recipient)
        netsim.clock.schedule_at(self.BOUNDARY - 1.0,
                                 lambda: netsim.kill_node(recipient_node))
        netsim.clock.run_until(self.END)

        events = executor.monitor.migration_log
        assert [e.kind for e in events] == ["aborted"]
        # The donor keeps serving the key as if nothing was asked.
        assert group.assignment.owner_of((station,)) == owner
        assert group.assignment.overrides == {}
        assert deployment.state is DeploymentState.RUNNING
        self._assert_converged(self._by_key(deployment), baseline, recipient)

    def test_donor_killed_after_handoff_keeps_migration(self, baseline):
        """Once the barrier commit ran, the donor's death cannot undo it:
        its post-handoff checkpoint carries the disowned marker, and the
        moved key — now living on the recipient — rides out the outage
        without losing a single window."""
        netsim, executor, deployment = self._deploy()
        netsim.clock.run_until(self.BOUNDARY - 60.0)
        station, owner, recipient = self._movable_station(deployment)
        group = deployment.shard_groups["station-avg"]
        donor_node = group.members[owner].node_id
        self._force_migration(netsim, deployment, station, owner, recipient)
        # The handoff runs at BOUNDARY + 1e-6; the kill lands just after.
        netsim.clock.schedule_at(self.BOUNDARY + 1e-3,
                                 lambda: netsim.kill_node(donor_node))
        netsim.clock.run_until(self.END)

        events = executor.monitor.migration_log
        assert [e.kind for e in events] == ["migrate"]
        assert group.assignment.owner_of((station,)) == recipient
        # The restored donor still knows the key left: no resurrection.
        assert (station,) in group.members[owner].operator.disowned
        assert group.members[owner].restores >= 1
        faulted = self._by_key(deployment)
        self._assert_converged(faulted, baseline, owner)
        # The migrated key escaped the blast radius: every one of its
        # baseline windows survived the donor's death.
        for (time, st_name), value in baseline.items():
            if st_name == station:
                assert faulted.get((time, st_name)) == value

    def test_merge_killed_during_split_recovers_folding(self):
        """Kill the merge stage while a hot key is split: the restored
        merge keeps folding partial entries, nothing is duplicated, and
        post-recovery windows of the split key are intact."""
        def run(kill: bool):
            netsim, executor, deployment = self._deploy()
            group = deployment.shard_groups["station-avg"]
            rebalancer = deployment.rebalancers["station-avg"]
            netsim.clock.schedule_at(
                self.BOUNDARY - 30.0,
                lambda: rebalancer.executor.schedule_split(
                    ("st-3",), tuple(range(self.SHARDS))
                ),
            )
            if kill:
                member_nodes = [m.node_id for m in group.members]
                spare = next(
                    node.node_id for node in netsim.topology.live_nodes()
                    if node.node_id != "hub"
                    and node.node_id not in member_nodes
                )

                def relocate_and_kill():
                    group.merge.move_to(spare)
                    netsim.clock.schedule(30.0,
                                          lambda: netsim.kill_node(spare))

                netsim.clock.schedule_at(self.BOUNDARY + 1.0,
                                         relocate_and_kill)
            netsim.clock.run_until(self.END)
            return executor, deployment, group

        _, b_dep, _ = run(kill=False)
        baseline = self._by_key(b_dep)
        executor, deployment, group = run(kill=True)
        faulted = self._by_key(deployment)   # asserts no duplicates

        assert group.merge.restores >= 1
        assert deployment.state is DeploymentState.RUNNING
        assert set(faulted) <= set(baseline)
        for (time, station), value in baseline.items():
            if self.AFFECTED_FROM <= time <= self.AFFECTED_UNTIL:
                continue
            assert faulted.get((time, station)) == value
        # Post-recovery split-key windows made it through the fold.
        recovered = [time for (time, station) in faulted
                     if station == "st-3" and time > self.AFFECTED_UNTIL]
        assert recovered


class TestOsakaKillRecovery:
    """Acceptance: kill/revive a node mid-run of the paper's scenario."""

    KILL_AT = 11 * 3600.0
    REVIVE_AT = 12 * 3600.0
    END = 16 * 3600.0
    #: Retry horizon + detection latency after revival during which losses
    #: are still attributable to the outage.
    MARGIN = 300.0

    def run_scenario(self, kill: bool):
        stack = build_stack(hot=True, seed=7)
        flow = osaka_scenario_flow(stack)
        deployment = stack.executor.deploy(flow)
        holder = {}
        if kill:
            def do_kill():
                holder["victim"] = deployment.process("hot-hour-trigger").node_id
                stack.netsim.kill_node(holder["victim"])

            stack.clock.schedule(self.KILL_AT, do_kill)
            stack.clock.schedule(
                self.REVIVE_AT,
                lambda: stack.netsim.revive_node(holder["victim"]),
            )
        stack.run_until(self.END)
        return stack, deployment, holder

    @pytest.fixture(scope="class")
    def runs(self):
        baseline = self.run_scenario(kill=False)
        faulted = self.run_scenario(kill=True)
        return baseline, faulted

    def test_processes_replaced_off_the_dead_node(self, runs):
        _, (stack, deployment, holder) = runs
        victim = holder["victim"]
        changes = stack.executor.monitor.assignment_log
        assert any(
            change.from_node == victim and "down" in change.reason
            for change in changes
        )
        for process in deployment.processes.values():
            assert stack.netsim.topology.node(process.node_id).up

    def test_blocking_operator_restored_from_checkpoint(self, runs):
        _, (stack, deployment, holder) = runs
        trigger = deployment.process("hot-hour-trigger")
        assert trigger.restores >= 1
        restored = [record for record in stack.executor.monitor.logs
                    if record.event == "checkpoint-restored"]
        assert restored
        # The restored snapshot predates the kill, never follows it.
        assert trigger.last_checkpoint[0] >= self.REVIVE_AT

    def test_activation_unchanged_by_the_fault(self, runs):
        (b_stack, _, _), (f_stack, _, _) = runs
        b_controls = b_stack.executor.monitor.control_log
        f_controls = f_stack.executor.monitor.control_log
        assert b_controls and f_controls
        assert b_controls[0].issued_at == f_controls[0].issued_at

    def test_sink_output_matches_modulo_loss_bound(self, runs):
        (_, b_dep, _), (f_stack, f_dep, _) = runs
        baseline = {(t.source, t.seq): t.stamp.time
                    for t in b_dep.collected("traffic-collector")}
        faulted = {(t.source, t.seq) for t in f_dep.collected("traffic-collector")}
        # At-most-once: the fault run never invents or duplicates output.
        assert faulted <= set(baseline)
        missing = set(baseline) - faulted
        # The documented loss bound: only tuples emitted during the outage
        # (plus the recovery margin) may be missing ...
        for key in missing:
            assert self.KILL_AT <= baseline[key] <= self.REVIVE_AT + self.MARGIN
        # ... and every loss is surfaced, never silent.
        assert len(missing) <= f_stack.broker_network.data_messages_dead_lettered

    def test_warehouse_loss_is_bounded_and_audited(self, runs):
        (b_stack, _, _), (f_stack, _, _) = runs
        shortfall = len(b_stack.warehouse) - len(f_stack.warehouse)
        assert shortfall <= f_stack.broker_network.data_messages_dead_lettered
        if shortfall > 0:
            assert f_stack.executor.monitor.dead_letter_log
