"""Integration tests for the fault-tolerant runtime.

A fault matrix — {node kill, broker drop-burst, flaky source, mid-window
kill} x {non-blocking flow, blocking flow} — plus the acceptance scenario:
killing a node mid-run of the Osaka scenario re-places its processes on
survivors, restores blocking-operator state from the last checkpoint, and
leaves the post-recovery sink output equal to a no-fault run of the same
seed modulo the documented loss bound (tuples emitted while the victim was
down may be dead-lettered; nothing is lost silently and nothing is
duplicated).
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import AggregationSpec, FilterSpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.lifecycle import DeploymentState
from repro.scenario import build_stack, osaka_scenario_flow
from repro.sensors.faults import FlakySensor
from repro.sensors.physical import temperature_sensor
from repro.stt.spatial import Point

BLOCKING_IDS = ["non-blocking", "blocking"]


def simple_flow(blocking: bool) -> Dataflow:
    """temperature -> (filter | windowed aggregation) -> collector."""
    flow = Dataflow("ft")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temp"
    )
    if blocking:
        work = flow.add_operator(
            AggregationSpec(interval=600.0, attributes=("temperature",),
                            function="AVG"),
            node_id="work",
        )
    else:
        work = flow.add_operator(
            FilterSpec("temperature > -100"), node_id="work"
        )
    out = flow.add_sink("collector", node_id="out")
    flow.connect(temp, work)
    flow.connect(work, out)
    return flow


@pytest.mark.parametrize("blocking", [False, True], ids=BLOCKING_IDS)
class TestFaultMatrix:
    def deploy(self, blocking):
        stack = build_stack(hot=True, seed=11)
        deployment = stack.executor.deploy(simple_flow(blocking))
        return stack, deployment

    def test_node_kill_replaces_and_stream_continues(self, blocking):
        stack, deployment = self.deploy(blocking)
        stack.run_until(1200.0)
        victim = deployment.process("work").node_id
        stack.netsim.kill_node(victim)
        stack.run_until(1800.0)  # detector: 4 x 30s silence, checked at 30s
        assert deployment.process("work").node_id != victim
        changes = stack.executor.monitor.assignment_log
        assert any("down" in change.reason for change in changes)
        assert deployment.state is DeploymentState.RUNNING
        before = len(deployment.collected("out"))
        stack.run_until(2 * 3600.0)
        assert len(deployment.collected("out")) > before

    def test_broker_drop_burst_recovered_by_retry(self, blocking):
        stack, deployment = self.deploy(blocking)
        stack.run_until(900.0)
        victim = deployment.process("work").node_id
        # A blip shorter than both the retry budget (0.5+1+2 s) and the
        # failure detector's patience: sensors emit at t=960 into the
        # outage; retries redeliver once the node is back.
        stack.clock.schedule(59.9, lambda: stack.netsim.kill_node(victim))
        stack.clock.schedule(62.0, lambda: stack.netsim.revive_node(victim))
        stack.run_until(1800.0)
        net = stack.broker_network
        assert net.data_messages_retried >= 1
        assert net.data_messages_dead_lettered == 0
        # The blip was too short for the detector: nothing was re-placed.
        changes = stack.executor.monitor.assignment_log
        assert all("down" not in change.reason for change in changes)
        assert len(deployment.collected("out")) > 0

    def test_flaky_source_degrades_and_recovers(self, blocking):
        stack = build_stack(hot=True, seed=11, attach_fleet=False)
        base = temperature_sensor("flaky-temp", Point(34.70, 135.50), "edge-0")
        flaky = FlakySensor(base.metadata, base.generator,
                            up_duration=900.0, down_duration=600.0)
        flaky.attach(stack.broker_network, stack.clock)
        deployment = stack.executor.deploy(simple_flow(blocking))
        monitor = stack.executor.monitor
        stack.run_until(1000.0)  # sensor drops out at t=900
        assert deployment.state is DeploymentState.DEGRADED
        assert any(record.event == "degraded" for record in monitor.logs)
        count_while_degraded = len(deployment.collected("out"))
        stack.run_until(2000.0)  # republished at t=1500
        assert deployment.state is DeploymentState.RUNNING
        assert any(record.event == "recovered" for record in monitor.logs)
        assert len(deployment.collected("out")) > count_while_degraded

    def test_mid_window_kill_restores_checkpoint(self, blocking):
        stack, deployment = self.deploy(blocking)
        process = deployment.process("work")
        stack.run_until(900.0)  # halfway through the 600-1200 window
        victim = process.node_id
        stack.netsim.kill_node(victim)
        stack.run_until(1500.0)
        assert process.node_id != victim
        monitor = stack.executor.monitor
        if blocking:
            assert process.restores >= 1
            restored = [record for record in monitor.logs
                        if record.event == "checkpoint-restored"]
            assert restored
            # The restored snapshot predates the kill: "state from t=NNNs".
            snapshot_time = float(
                restored[0].detail.split("t=")[1].split("s")[0]
            )
            assert snapshot_time <= 900.0
        else:
            # Stateless operators carry no checkpoint; recovery is a move.
            assert process.restores == 0
        stack.run_until(2400.0)
        assert len(deployment.collected("out")) > 0


@pytest.mark.parametrize("blocking", [False, True], ids=BLOCKING_IDS)
class TestDeadLetterAudit:
    """Every retry exhaustion is audited exactly once, everywhere.

    An outage long enough to exhaust the retry budget (0.5+1+2 s) but
    shorter than the failure detector's patience produces dead letters;
    the broker counter, the subscriptions' queues, the monitor's audit
    log, and the metrics registry must all agree — one record per
    exhausted tuple, no duplicates, nothing silent.
    """

    def test_exhaustions_produce_exactly_one_record_each(self, blocking):
        stack = build_stack(hot=True, seed=11, observability=0.0)
        deployment = stack.executor.deploy(simple_flow(blocking))
        stack.run_until(930.0)
        victim = deployment.process("work").node_id
        # 70s outage: sensors emit at t=960 and their retries (0.5+1+2 s)
        # exhaust while the node is still down, but heartbeats resume
        # before the failure detector's re-placement verdict.
        stack.netsim.kill_node(victim)
        stack.clock.schedule(70.0, lambda: stack.netsim.revive_node(victim))
        stack.run_until(1800.0)

        net = stack.broker_network
        monitor = stack.executor.monitor
        assert net.data_messages_dead_lettered >= 1

        # Broker counter == monitor audit log == per-subscription queues.
        assert len(monitor.dead_letter_log) == net.data_messages_dead_lettered
        subscriptions = [
            subscription
            for binding in deployment.bindings.values()
            for subscription in binding.subscriptions
        ]
        queued = sum(len(s.dead_letters) for s in subscriptions)
        assert queued == net.data_messages_dead_lettered

        # No duplicates: each (subscription, tuple) pair at most once.
        letters = [
            (s.subscription_id, letter.tuple.source, letter.tuple.seq)
            for s in subscriptions
            for letter in s.dead_letters
        ]
        assert len(letters) == len(set(letters))

        # Every audit record names the victim and a real subscription.
        known = {s.subscription_id for s in subscriptions}
        for record in monitor.dead_letter_log:
            assert record.subscription_id in known
            assert record.node_id == victim

        # The metrics pipeline carries the same count.
        counter = stack.obs.metrics.counter("broker_dead_letters_total")
        assert counter.value == net.data_messages_dead_lettered


class TestOsakaKillRecovery:
    """Acceptance: kill/revive a node mid-run of the paper's scenario."""

    KILL_AT = 11 * 3600.0
    REVIVE_AT = 12 * 3600.0
    END = 16 * 3600.0
    #: Retry horizon + detection latency after revival during which losses
    #: are still attributable to the outage.
    MARGIN = 300.0

    def run_scenario(self, kill: bool):
        stack = build_stack(hot=True, seed=7)
        flow = osaka_scenario_flow(stack)
        deployment = stack.executor.deploy(flow)
        holder = {}
        if kill:
            def do_kill():
                holder["victim"] = deployment.process("hot-hour-trigger").node_id
                stack.netsim.kill_node(holder["victim"])

            stack.clock.schedule(self.KILL_AT, do_kill)
            stack.clock.schedule(
                self.REVIVE_AT,
                lambda: stack.netsim.revive_node(holder["victim"]),
            )
        stack.run_until(self.END)
        return stack, deployment, holder

    @pytest.fixture(scope="class")
    def runs(self):
        baseline = self.run_scenario(kill=False)
        faulted = self.run_scenario(kill=True)
        return baseline, faulted

    def test_processes_replaced_off_the_dead_node(self, runs):
        _, (stack, deployment, holder) = runs
        victim = holder["victim"]
        changes = stack.executor.monitor.assignment_log
        assert any(
            change.from_node == victim and "down" in change.reason
            for change in changes
        )
        for process in deployment.processes.values():
            assert stack.netsim.topology.node(process.node_id).up

    def test_blocking_operator_restored_from_checkpoint(self, runs):
        _, (stack, deployment, holder) = runs
        trigger = deployment.process("hot-hour-trigger")
        assert trigger.restores >= 1
        restored = [record for record in stack.executor.monitor.logs
                    if record.event == "checkpoint-restored"]
        assert restored
        # The restored snapshot predates the kill, never follows it.
        assert trigger.last_checkpoint[0] >= self.REVIVE_AT

    def test_activation_unchanged_by_the_fault(self, runs):
        (b_stack, _, _), (f_stack, _, _) = runs
        b_controls = b_stack.executor.monitor.control_log
        f_controls = f_stack.executor.monitor.control_log
        assert b_controls and f_controls
        assert b_controls[0].issued_at == f_controls[0].issued_at

    def test_sink_output_matches_modulo_loss_bound(self, runs):
        (_, b_dep, _), (f_stack, f_dep, _) = runs
        baseline = {(t.source, t.seq): t.stamp.time
                    for t in b_dep.collected("traffic-collector")}
        faulted = {(t.source, t.seq) for t in f_dep.collected("traffic-collector")}
        # At-most-once: the fault run never invents or duplicates output.
        assert faulted <= set(baseline)
        missing = set(baseline) - faulted
        # The documented loss bound: only tuples emitted during the outage
        # (plus the recovery margin) may be missing ...
        for key in missing:
            assert self.KILL_AT <= baseline[key] <= self.REVIVE_AT + self.MARGIN
        # ... and every loss is surfaced, never silent.
        assert len(missing) <= f_stack.broker_network.data_messages_dead_lettered

    def test_warehouse_loss_is_bounded_and_audited(self, runs):
        (b_stack, _, _), (f_stack, _, _) = runs
        shortfall = len(b_stack.warehouse) - len(f_stack.warehouse)
        assert shortfall <= f_stack.broker_network.data_messages_dead_lettered
        if shortfall > 0:
            assert f_stack.executor.monitor.dead_letter_log
