"""Integration test: Trigger Off deactivates running acquisition.

Table 1's ⊕OFF is the mirror of the scenario's ⊕ON: a stream that is
initially active is *stopped* when the condition verifies — e.g. stop
paying for the tweet firehose once the heat emergency has passed.
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import TriggerOffSpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack


@pytest.fixture
def stack():
    # Cool regime: the evening cools below 18 C, firing the off-trigger.
    return build_stack(hot=False)


def off_flow(stack) -> Dataflow:
    tweet_ids = tuple(
        sensor.sensor_id for sensor in stack.fleet
        if sensor.metadata.sensor_type == "twitter"
    )
    flow = Dataflow("wind-down")
    temp = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                           node_id="temp")
    tweets = flow.add_source(SubscriptionFilter(sensor_type="twitter"),
                             node_id="tweets", initially_active=True)
    night = flow.add_operator(
        TriggerOffSpec(interval=600.0, window=3600.0,
                       condition="avg_temperature < 14",
                       targets=tweet_ids),
        node_id="cold-night",
    )
    viz = flow.add_sink("visualization", node_id="viz")
    flow.connect(temp, night)
    flow.connect(tweets, viz)
    flow.connect_control(night, tweets)
    return flow


class TestTriggerOff:
    def test_acquisition_stops_when_condition_holds(self, stack):
        deployment = stack.executor.deploy(off_flow(stack))
        # Midday: cool regime means ~16-22 C, above the 14 C threshold.
        stack.run_until(14 * 3600.0)
        midday_pushed = stack.sticker.pushed
        assert midday_pushed > 0  # tweets flowed while warm enough

        # Early morning of the next day: mean drops below 14 C.
        stack.run_until(28 * 3600.0)
        controls = stack.executor.monitor.control_log
        assert controls
        assert not controls[0].activate  # a deactivation command
        fired_at = controls[0].issued_at

        # After deactivation, no further tweets are visualized.
        pushed_at_fire = stack.sticker.pushed
        stack.run_until(30 * 3600.0)
        assert stack.sticker.pushed == pushed_at_fire
        # And suppression happened at the source.
        tweets = deployment.bindings["tweets"].subscriptions
        assert all(not s.active for s in tweets)
        assert sum(s.suppressed for s in tweets) > 0

    def test_warm_regime_never_stops(self):
        warm = build_stack(hot=True)
        deployment = warm.executor.deploy(off_flow(warm))
        warm.run_until(18 * 3600.0)
        # The hot regime's overnight minimum (~20 C) stays above 14 C.
        assert warm.executor.monitor.control_log == []
        tweets = deployment.bindings["tweets"].subscriptions
        assert all(s.active for s in tweets)
