"""Integration property: streaming and batch produce the same results.

For a dataflow of non-blocking operators, StreamLoader's on-line execution
and the offline batch baseline are *semantically* equivalent — the same
tuples come out, only the cost/staleness profile differs.  This is the
correctness backbone of the A1 ablation: the configurations being compared
really do compute the same thing.
"""

import pytest

from repro.baselines.batch_etl import BatchEtlPipeline
from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec, TransformSpec, VirtualPropertySpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack

HOURS = 5.0


def pipeline_flow(sink_kind: str) -> Dataflow:
    flow = Dataflow(f"equiv-{sink_kind}")
    src = flow.add_source(
        SubscriptionFilter(sensor_ids=("osaka-temp-umeda",)), node_id="src"
    )
    enrich = flow.add_operator(
        VirtualPropertySpec("temp_f", "temperature * 1.8 + 32"),
        node_id="enrich",
    )
    hot = flow.add_operator(FilterSpec("temp_f > 68"), node_id="hot")
    shape = flow.add_operator(
        TransformSpec(project=("temp_f", "station")), node_id="shape"
    )
    sink = flow.add_sink(sink_kind, node_id="out")
    flow.connect(src, enrich)
    flow.connect(enrich, hot)
    flow.connect(hot, shape)
    flow.connect(shape, sink)
    return flow


def canonical(payloads) -> list:
    return sorted(
        (round(p["temp_f"], 6), p["station"]) for p in payloads
    )


class TestEquivalence:
    def test_streaming_equals_batch(self):
        # Streaming run.
        streaming = build_stack(hot=True, seed=11)
        deployment = streaming.executor.deploy(pipeline_flow("collector"))
        streaming.run_until(HOURS * 3600.0)
        stream_out = canonical(
            dict(t.payload) for t in deployment.collected("out")
        )

        # Batch run over an identically-seeded world.
        batch_world = build_stack(hot=True, seed=11)
        flow = pipeline_flow("warehouse")
        pipeline = BatchEtlPipeline(
            batch_world.netsim, batch_world.broker_network, flow,
            collection_node="hub", warehouse=batch_world.warehouse,
        )
        pipeline.start_collection()
        batch_world.run_until(HOURS * 3600.0)
        pipeline.close_batch()
        batch_out = canonical(
            {**fact.measures, **fact.attributes}
            for fact in batch_world.warehouse.facts
        )

        # In-flight stragglers at the cut-off can differ by a tuple or two;
        # everything that made it into both worlds must be identical.
        shorter = min(len(stream_out), len(batch_out))
        assert shorter > 0
        assert abs(len(stream_out) - len(batch_out)) <= 2
        assert stream_out[:shorter] == batch_out[:shorter]

    def test_equivalence_breaks_with_different_seeds(self):
        streaming = build_stack(hot=True, seed=11)
        deployment = streaming.executor.deploy(pipeline_flow("collector"))
        streaming.run_until(HOURS * 3600.0)
        first = canonical(dict(t.payload) for t in deployment.collected("out"))

        other = build_stack(hot=True, seed=12)
        deployment2 = other.executor.deploy(pipeline_flow("collector"))
        other.run_until(HOURS * 3600.0)
        second = canonical(dict(t.payload) for t in deployment2.collected("out"))

        assert first != second  # the equivalence is per-world, not vacuous
