"""Integration tests: end-to-end tracing, lineage, and metrics.

The acceptance path of the observability subsystem: run the Osaka
scenario with tracing at 1.0, and verify that the slowest sink-reaching
trace renders a complete span tree (source -> broker -> operator(s) ->
sink) with per-hop virtual-clock durations, that lineage resolves sink
tuples to exact source tuple ids, and that the metrics registry carries
the monitor's series.
"""

import pytest

from repro.dataflow.ops import AggregationSpec
from repro.obs import Observability
from repro.obs.render import (
    render_trace,
    render_trace_tree,
    sink_trace_ids,
    slowest_sink_traces,
    trace_for_tuple,
)
from repro.pubsub.subscription import SubscriptionFilter
from repro.dataflow.graph import Dataflow
from repro.scenario import build_stack, osaka_scenario_flow

HOURS = 15 * 3600.0


@pytest.fixture(scope="module")
def observed_stack():
    """One observed Osaka scenario run shared by the read-only tests."""
    stack = build_stack(hot=True, observability=True)
    flow = osaka_scenario_flow(stack)
    deployment = stack.executor.deploy(flow)
    stack.run_until(HOURS)
    return stack, deployment


class TestEndToEndTracing:
    def test_slowest_sink_trace_is_complete(self, observed_stack):
        stack, _ = observed_stack
        tracer = stack.obs.tracer
        slowest = slowest_sink_traces(tracer, 1)
        assert len(slowest) == 1
        spans = tracer.trace(slowest[0])
        names = [s.name for s in spans]
        # Root at the broker, network hops, terminal sink.
        assert names[0] == "publish"
        assert "transmit" in names
        assert names[-1] == "sink"
        # Spans chain: every non-root span hangs off a recorded span.
        ids = {s.span_id for s in spans}
        assert all(s.parent_id in ids for s in spans if s.parent_id is not None)
        # Hops have real virtual-clock extent.
        assert tracer.duration(slowest[0]) > 0.0

    def test_rendered_tree_shows_every_hop_with_durations(self, observed_stack):
        stack, _ = observed_stack
        tracer = stack.obs.tracer
        # The rain -> torrential filter -> warehouse path of the scenario.
        for tid in tracer.trace_ids():
            names = {s.name for s in tracer.trace(tid)}
            if "evaluate" in names and "sink" in names:
                break
        else:
            pytest.fail("no trace crossed the torrential filter to a sink")
        out = render_trace(tracer, tid, lineage=stack.obs.lineage)
        assert "publish osaka-rain" in out
        assert "transmit" in out and "->" in out
        assert "evaluate filter" in out
        assert "sink warehouse:event-warehouse" in out
        assert "lineage: osaka-rain" in out
        # Durations are printed per hop.
        assert "ms)" in out or "s)" in out

    def test_lineage_of_passthrough_sink_tuple_is_itself(self, observed_stack):
        stack, _ = observed_stack
        tracer = stack.obs.tracer
        tid = slowest_sink_traces(tracer, 1)[0]
        sink_span = next(
            s for s in tracer.trace(tid) if s.name == "sink"
        )
        key = sink_span.attrs["tuple"]
        # The scenario's sink paths are all non-blocking, so the sink
        # tuple's identity is the source reading itself.
        assert stack.obs.lineage.explain(key) == [key]

    def test_trace_for_tuple_finds_the_same_trace(self, observed_stack):
        stack, _ = observed_stack
        tracer = stack.obs.tracer
        tid = slowest_sink_traces(tracer, 1)[0]
        key = next(
            s.attrs["tuple"] for s in tracer.trace(tid) if s.name == "sink"
        )
        assert trace_for_tuple(tracer, key) == tid

    def test_every_delivered_path_is_traced(self, observed_stack):
        stack, _ = observed_stack
        # With sampling=1.0 every publication opens a trace.
        tracer = stack.obs.tracer
        assert tracer.traces_started > 0
        assert len(sink_trace_ids(tracer)) > 100

    def test_control_events_record_placements(self, observed_stack):
        stack, _ = observed_stack
        events = stack.obs.tracer.control_events()
        placed = [e for e in events if e.name == "placement"]
        # Every non-source service of the scenario got a placement event.
        services = {e.attrs["service"] for e in placed}
        assert {"hot-hour-trigger", "torrential", "event-warehouse"} <= services


class TestMetricsIntegration:
    def test_monitor_series_flow_into_the_registry(self, observed_stack):
        stack, _ = observed_stack
        snap = stack.obs.metrics.snapshot()
        rates = {
            s["labels"]["process"]: s["value"]
            for s in snap["operation_tuples_per_second"]["series"]
        }
        assert any(rate > 0 for rate in rates.values())
        assert snap["network_messages_delivered"]["series"][0]["value"] > 0
        assert snap["monitor_heartbeats_total"]["series"]

    def test_broker_publish_counters_by_source(self, observed_stack):
        stack, _ = observed_stack
        snap = stack.obs.metrics.snapshot()
        sources = {
            s["labels"]["source"]: s["value"]
            for s in snap["broker_tuples_published_total"]["series"]
        }
        assert any(src.startswith("osaka-temp") for src in sources)
        assert all(count > 0 for count in sources.values())

    def test_exposition_renders_without_error(self, observed_stack):
        stack, _ = observed_stack
        text = stack.obs.metrics.expose()
        assert "# TYPE process_tuples_total counter" in text
        assert "operation_tuples_per_second" in text


class TestSamplingModes:
    def test_sampling_zero_traces_nothing_but_counts_everything(self):
        stack = build_stack(hot=True, observability=0.0)
        flow = osaka_scenario_flow(stack)
        stack.executor.deploy(flow)
        stack.run_until(4 * 3600.0)
        assert stack.obs.tracer.traces_started == 0
        assert stack.obs.tracer.trace_ids() == []
        snap = stack.obs.metrics.snapshot()
        totals = [
            s["value"]
            for s in snap["broker_tuples_published_total"]["series"]
        ]
        assert sum(totals) > 0

    def test_no_observability_leaves_stack_untouched(self):
        stack = build_stack(hot=True)
        assert stack.obs is None
        assert stack.netsim.tracer is None
        flow = osaka_scenario_flow(stack)
        stack.executor.deploy(flow)
        stack.run_until(2 * 3600.0)  # runs fine with zero instrumentation

    def test_partial_sampling_records_a_fraction(self):
        stack = build_stack(hot=True, observability=0.25)
        flow = osaka_scenario_flow(stack)
        stack.executor.deploy(flow)
        stack.run_until(4 * 3600.0)
        tracer = stack.obs.tracer
        published = sum(
            s["value"]
            for s in stack.obs.metrics.snapshot()[
                "broker_tuples_published_total"]["series"]
        )
        # Error diffusion: exactly every 4th publication (flush roots are
        # also sampled, so allow the trigger's contribution).
        assert tracer.traces_started == pytest.approx(published / 4, abs=2)


class TestBlockingLineage:
    def test_aggregate_flush_starts_fresh_trace_and_lineage_stitches(self):
        """An aggregation breaks the tuple's identity; the flush trace plus
        the lineage store together still reach the source readings."""
        stack = build_stack(hot=True, observability=True)
        flow = Dataflow("agg-obs")
        temp = flow.add_source(
            SubscriptionFilter(sensor_type="temperature"), node_id="temp"
        )
        hourly = flow.add_operator(
            AggregationSpec(
                interval=3600.0, attributes=("temperature",), function="AVG",
            ),
            node_id="hourly",
        )
        sink = flow.add_sink("collector", node_id="out")
        flow.connect(temp, hourly)
        flow.connect(hourly, sink)
        deployment = stack.executor.deploy(flow)
        stack.run_until(3 * 3600.0)

        collected = deployment.collected("out")
        assert collected
        lineage = stack.obs.lineage
        key = f"{collected[0].source}#{collected[0].seq}"
        sources = lineage.explain(key)
        assert sources and all("osaka-temp" in s for s in sources)
        # The flush opened a fresh trace that carried the aggregate to
        # the sink.
        flush_traces = [
            tid for tid in stack.obs.tracer.trace_ids()
            if stack.obs.tracer.trace(tid)
            and stack.obs.tracer.trace(tid)[0].name == "flush"
        ]
        assert flush_traces
        names = {
            s.name
            for tid in flush_traces
            for s in stack.obs.tracer.trace(tid)
        }
        assert "sink" in names
