"""Integration test: the full Section 3 scenario.

"Suppose, that there is interest in acquiring the data about torrential
rain, tweets and traffic only when the temperature identified in the last
hour is above 25 °C."
"""

import pytest

from repro.scenario import build_stack, osaka_scenario_flow


class TestHotRegime:
    @pytest.fixture(scope="class")
    def run(self):
        stack = build_stack(hot=True, seed=7)
        flow = osaka_scenario_flow(stack)
        deployment = stack.executor.deploy(flow)
        stack.run_until(18 * 3600.0)  # midnight -> evening
        return stack, deployment

    def test_trigger_fired_during_warm_hours(self, run):
        stack, _ = run
        controls = stack.executor.monitor.control_log
        assert controls
        first = controls[0]
        assert first.activate
        # Must fire once the hot day warms up, not at midnight.
        assert 6 * 3600.0 <= first.issued_at <= 14 * 3600.0

    def test_gated_streams_quiet_before_activation(self, run):
        stack, deployment = run
        activation = stack.executor.monitor.control_log[0].issued_at
        rain_facts = stack.warehouse.query().theme("weather/rain").facts()
        assert all(fact.event_time >= activation - 1.0 for fact in rain_facts)
        traffic = deployment.collected("traffic-collector")
        assert all(t.stamp.time >= activation - 1.0 for t in traffic)

    def test_torrential_rain_filter_applied(self, run):
        stack, _ = run
        values = stack.warehouse.query().measure_values("rain_rate")
        if values.size:
            assert values.min() > 10.0

    def test_tweets_reach_sticker(self, run):
        stack, _ = run
        assert stack.sticker.pushed > 0
        assert any("social/twitter" == theme for theme in stack.sticker.themes())

    def test_traffic_collected(self, run):
        stack, deployment = run
        traffic = deployment.collected("traffic-collector")
        assert traffic
        assert all("congestion" in t for t in traffic)

    def test_monitor_saw_the_whole_flow(self, run):
        stack, _ = run
        rates = stack.executor.monitor.report()["operation_rates"]
        assert any("hot-hour-trigger" in key for key in rates)
        assert any("torrential" in key for key in rates)


class TestCoolRegime:
    def test_nothing_acquired_when_cool(self):
        stack = build_stack(hot=False, seed=7)
        flow = osaka_scenario_flow(stack)
        deployment = stack.executor.deploy(flow)
        stack.run_until(18 * 3600.0)
        assert stack.executor.monitor.control_log == []
        assert len(stack.warehouse) == 0
        assert stack.sticker.pushed == 0
        assert deployment.collected("traffic-collector") == []
        # And the suppressed counters show traffic was saved, not hidden.
        assert stack.broker_network.data_messages_suppressed > 0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        outcomes = []
        for _ in range(2):
            stack = build_stack(hot=True, seed=21)
            flow = osaka_scenario_flow(stack)
            stack.executor.deploy(flow)
            stack.run_until(14 * 3600.0)
            outcomes.append((
                len(stack.warehouse),
                stack.sticker.pushed,
                [round(c.issued_at, 3)
                 for c in stack.executor.monitor.control_log],
            ))
        assert outcomes[0] == outcomes[1]

    def test_different_seed_different_details(self):
        counts = []
        for seed in (1, 2):
            stack = build_stack(hot=True, seed=seed)
            flow = osaka_scenario_flow(stack)
            stack.executor.deploy(flow)
            stack.run_until(14 * 3600.0)
            counts.append((len(stack.warehouse), stack.sticker.pushed))
        assert counts[0] != counts[1]
