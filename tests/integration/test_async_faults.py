"""Chaos tests for the asyncio backend.

The fault matrix the simulator's fault-tolerance suite runs — node
kills, mid-window kills, shard kills — exercised against *real* asyncio
tasks: killing a node cancels its hosted tasks mid-flight, recovery
restarts them, and the checkpoint/restore + shard-merge protocols must
close exactly as they do on the oracle.  Plus the two async-only
behaviours the simulator cannot express: bounded-queue backpressure
(a full mailbox stalls the producer coroutine instead of dropping) and
wall-clock pacing (``time_scale`` slows the run without skewing any
logical timer).
"""

from __future__ import annotations

import time

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import AggregationSpec
from repro.network.topology import Topology
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.backends import AsyncBackend
from repro.runtime.lifecycle import DeploymentState
from repro.scenario import build_stack, sharded_aggregation_flow

#: Wall budget per run: these horizons take ~1s; 60s means wedged.
MAX_WALL = 60.0


def blocking_flow() -> Dataflow:
    """temperature -> 600s AVG window -> collector (checkpointable)."""
    flow = Dataflow("chaos")
    temp = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="temp"
    )
    work = flow.add_operator(
        AggregationSpec(interval=600.0, attributes=("temperature",),
                        function="AVG"),
        node_id="work",
    )
    out = flow.add_sink("collector", node_id="out")
    flow.connect(temp, work)
    flow.connect(work, out)
    return flow


def async_stack(leaf_count: int = 4, **kwargs):
    backend = AsyncBackend(
        topology=Topology.star(leaf_count=leaf_count), max_wall=MAX_WALL,
        **kwargs
    )
    return build_stack(hot=True, seed=11, backend=backend), backend


class TestTaskCancellation:
    """Killing a node cancels its hosted asyncio tasks mid-window; the
    detector + SCN re-placement must restore the checkpoint and resume."""

    def test_mid_window_kill_restores_checkpoint_no_duplicate_flush(self):
        stack, backend = async_stack()
        with stack:
            deployment = stack.executor.deploy(blocking_flow())
            process = deployment.process("work")
            host = backend._hosts[id(process)]
            assert host.alive and host.task is not None
            stack.run_until(900.0)  # halfway through the 600-1200 window
            victim = process.node_id
            stack.netsim.kill_node(victim)
            # The task was cancelled with the window state in flight.
            assert not host.alive
            stack.run_until(1500.0)  # detector: 4 x 30s silence
            assert process.node_id != victim
            assert process.restores >= 1
            restored = [r for r in stack.executor.monitor.logs
                        if r.event == "checkpoint-restored"]
            assert restored
            # The restored snapshot predates the kill.
            snapshot_time = float(
                restored[0].detail.split("t=")[1].split("s")[0]
            )
            assert snapshot_time <= 900.0
            # The replacement process got a fresh live task.
            new_host = backend._hosts[id(process)]
            assert new_host.alive and new_host.task is not None
            stack.run_until(3600.0)
            collected = deployment.collected("out")
            assert collected
            # No duplicate flush: every closed window leaves exactly one
            # aggregate per (source, window-end) at the sink.
            seen = set()
            for tuple_ in collected:
                key = (tuple_.source, tuple_.stamp.time)
                assert key not in seen, f"window flushed twice: {key}"
                seen.add(key)

    def test_revive_restarts_cancelled_tasks(self):
        stack, backend = async_stack()
        with stack:
            deployment = stack.executor.deploy(blocking_flow())
            process = deployment.process("work")
            stack.run_until(300.0)
            victim = process.node_id
            stack.netsim.kill_node(victim)
            assert not backend._hosts[id(process)].alive
            # Revive inside the detector's patience: no re-placement, the
            # same process's task comes back on the same node.
            stack.netsim.revive_node(victim)
            assert backend._hosts[id(process)].alive
            stack.run_until(3600.0)
            assert process.node_id == victim
            assert deployment.collected("out")


class TestBackpressure:
    """A full bounded mailbox suspends the producer; nothing is dropped."""

    def test_tiny_mailbox_stalls_producer_without_drops(self):
        stack, backend = async_stack(mailbox_capacity=1, link_capacity=1)
        with stack:
            deployment = stack.executor.deploy(blocking_flow())
            stack.run_until(2.0 * 3600.0)
            assert backend.backpressure_stalls > 0
            stats = stack.netsim.stats
            assert stats.messages_dropped == 0
            # Everything whose delivery instant arrived was delivered;
            # the only sent-vs-delivered gap is messages still crossing a
            # link (0.002 s latency) when the horizon cut the run.
            assert stats.messages_sent - stats.messages_delivered <= 10
            squeezed = [(t.source, t.stamp.time, dict(t.payload))
                        for t in deployment.collected("out")]
            assert squeezed

        # Capacity pressure must not change the logical output: the same
        # run with roomy queues produces the identical sink contents.
        roomy_stack, roomy = async_stack()
        with roomy_stack:
            roomy_dep = roomy_stack.executor.deploy(blocking_flow())
            roomy_stack.run_until(2.0 * 3600.0)
            assert roomy.backpressure_stalls == 0
            baseline = [(t.source, t.stamp.time, dict(t.payload))
                        for t in roomy_dep.collected("out")]
        assert sorted(squeezed, key=repr) == sorted(baseline, key=repr)

    def test_default_capacity_still_counts_zero_drops(self):
        stack, backend = async_stack()
        with stack:
            deployment = stack.executor.deploy(blocking_flow())
            stack.run_until(3600.0)
            assert stack.netsim.stats.messages_dropped == 0
            assert deployment.collected("out")


class TestShardKill:
    """Killing one shard's node must not wedge the merge epoch protocol."""

    def test_shard_kill_merge_still_closes(self):
        stack, backend = async_stack()
        with stack:
            flow = sharded_aggregation_flow(stack)
            deployment = stack.executor.deploy(flow, shards=4)
            group = next(iter(deployment.shard_groups.values()))
            stack.run_until(1500.0)
            before = len(deployment.collected("averages"))
            assert before > 0  # windows already closing pre-fault
            victim = group.members[1].node_id
            stack.netsim.kill_node(victim)
            stack.run_until(2400.0)  # detector fires, shard re-placed
            assert group.members[1].node_id != victim
            assert deployment.state is DeploymentState.RUNNING
            # Post-recovery windows keep closing through the merge: the
            # epoch protocol did not deadlock on the dead shard's silence.
            stack.run_until(2.0 * 3600.0)
            after = deployment.collected("averages")
            assert len(after) > before
            latest = max(t.stamp.time for t in after)
            assert latest >= 2400.0

    def test_merge_kill_recovers_pending_epochs(self):
        # A wider star: the merge needs a leaf of its own — killing the
        # hub would sever every spoke (a topology fault, not a task one).
        stack, backend = async_stack(leaf_count=6)
        with stack:
            flow = sharded_aggregation_flow(stack)
            deployment = stack.executor.deploy(flow, shards=4)
            group = next(iter(deployment.shard_groups.values()))
            stack.run_until(1450.0)
            merge = group.merge
            occupied = {m.node_id for m in group.members} | {"hub"}
            spare = next(
                node.node_id for node in stack.topology.live_nodes()
                if node.node_id not in occupied
            )
            merge.move_to(spare)
            # The move re-hosted the merge's task on the async backend.
            assert backend._hosts[id(merge)].alive
            stack.netsim.kill_node(spare)
            assert not backend._hosts[id(merge)].alive
            stack.run_until(2400.0)
            assert merge.node_id != spare
            assert merge.restores >= 1
            stack.run_until(2.0 * 3600.0)
            after = deployment.collected("averages")
            assert after
            # Windows kept closing through the replacement merge.
            assert max(t.stamp.time for t in after) >= 2400.0


class TestPacingAndTimerSkew:
    """``time_scale`` slows wall execution without skewing logical timers."""

    def test_paced_run_matches_free_run_and_takes_wall_time(self):
        horizon = 600.0
        stack, _ = async_stack()
        with stack:
            deployment = stack.executor.deploy(blocking_flow())
            stack.run_until(horizon)
            free = [
                (t.source, t.stamp.time, dict(t.payload))
                for t in deployment.collected("out")
            ]

        # 600 virtual seconds at 1200 virtual-seconds-per-wall-second:
        # at least ~0.5s of wall pacing, and the identical sink output —
        # flush timers fire at their logical instants regardless of the
        # wall schedule (no timer skew under pacing).
        stack2, _ = async_stack(time_scale=1200.0)
        with stack2:
            deployment2 = stack2.executor.deploy(blocking_flow())
            start = time.monotonic()
            stack2.run_until(horizon)
            elapsed = time.monotonic() - start
            paced = [
                (t.source, t.stamp.time, dict(t.payload))
                for t in deployment2.collected("out")
            ]
        assert elapsed >= 0.4
        assert sorted(free, key=repr) == sorted(paced, key=repr)

    def test_wall_budget_trips_on_wedged_run(self):
        from repro.errors import SimulationError

        backend = AsyncBackend(topology=Topology.star(leaf_count=4),
                               max_wall=0.0)
        stack = build_stack(hot=True, seed=11, backend=backend)
        with stack:
            stack.executor.deploy(blocking_flow())
            # Any epoch over a zero wall budget must raise, not hang.
            with pytest.raises(SimulationError, match="wall budget"):
                stack.run_until(3600.0)
