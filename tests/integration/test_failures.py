"""Integration tests: failure injection across the stack.

Emergency management is the paper's motivating context — the system must
degrade gracefully when sensors lie, nodes die, and links drop.
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec, ValidateSpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack
from repro.sensors.faults import FlakySensor, MalformedPayloadSensor
from repro.sensors.physical import temperature_sensor
from repro.stt.spatial import Point


class TestMalformedData:
    def test_validate_operator_quarantines_corrupt_stream(self):
        stack = build_stack(attach_fleet=False)
        base = temperature_sensor("bad-temp", Point(34.69, 135.50), "edge-0",
                                  frequency=1.0 / 60.0)
        sensor = MalformedPayloadSensor(base.metadata, base.generator,
                                        corruption_rate=0.4, seed=5)
        sensor.attach(stack.broker_network, stack.clock)

        flow = Dataflow("guarded")
        src = flow.add_source(SubscriptionFilter(sensor_ids=("bad-temp",)),
                              node_id="src")
        guard = flow.add_operator(
            ValidateSpec(rules=(
                "coalesce(temperature, -9999) != -9999",
                "between(coalesce(temperature, -9999), -50, 60)",
            )),
            node_id="guard",
        )
        out = flow.add_sink("collector", node_id="out")
        flow.connect(src, guard)
        flow.connect(guard, out)
        deployment = stack.executor.deploy(flow)
        stack.run_until(4 * 3600.0)

        guard_stats = deployment.process("guard").operator.stats
        # Corrupt tuples were quarantined, clean ones passed, no crash.
        assert guard_stats.errors > 0
        clean = deployment.collected("out")
        assert clean
        assert all(isinstance(t["temperature"], float) for t in clean)
        assert guard_stats.tuples_in == guard_stats.errors + len(clean)


class TestFlappingSensor:
    def test_stream_resumes_after_each_outage(self):
        stack = build_stack(attach_fleet=False)
        base = temperature_sensor("flappy", Point(34.69, 135.50), "edge-0",
                                  frequency=1.0 / 60.0)
        sensor = FlakySensor(base.metadata, base.generator,
                             up_duration=1800.0, down_duration=900.0)
        sensor.attach(stack.broker_network, stack.clock)

        flow = Dataflow("flaps")
        src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                              node_id="src")
        keep = flow.add_operator(FilterSpec("temperature > -100"),
                                 node_id="keep")
        out = flow.add_sink("collector", node_id="out")
        flow.connect(src, keep)
        flow.connect(keep, out)
        deployment = stack.executor.deploy(flow)
        stack.run_until(3 * 5400.0)  # several up/down cycles

        assert sensor.outages >= 2
        received = deployment.collected("out")
        # Tuples from every up-phase, none from down-phases.
        up_phase_hits = {int(t.stamp.time // 2700.0) for t in received}
        assert len(up_phase_hits) >= 3


class TestNodeFailure:
    def test_messages_to_dead_node_dropped_not_crashing(self):
        stack = build_stack()
        flow = Dataflow("resilient")
        src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                              node_id="src")
        keep = flow.add_operator(FilterSpec("temperature > -100"),
                                 node_id="keep")
        out = flow.add_sink("collector", node_id="out")
        flow.connect(src, keep)
        flow.connect(keep, out)
        deployment = stack.executor.deploy(flow)
        stack.run_until(3600.0)

        victim = deployment.process("keep").node_id
        stack.topology.node(victim).fail()
        stack.run_until(2 * 3600.0)
        assert stack.netsim.stats.messages_dropped > 0

        # Recovery: the node comes back and the stream continues.
        stack.topology.node(victim).recover()
        count = len(deployment.collected("out"))
        stack.run_until(3 * 3600.0)
        assert len(deployment.collected("out")) > count


class TestLinkFailure:
    def test_traffic_reroutes_around_dead_link(self):
        from repro.network.topology import Topology

        # A ring of 4 nodes: two routes between any pair.
        topo = Topology()
        for index in range(4):
            topo.add_node(f"n{index}", capacity=1000.0)
        for index in range(4):
            topo.add_link(f"n{index}", f"n{(index + 1) % 4}", latency=0.005)

        stack = build_stack(topology=topo, attach_fleet=False)
        sensor = temperature_sensor("ring-temp", Point(34.69, 135.50), "n0",
                                    frequency=1.0 / 60.0)
        sensor.attach(stack.broker_network, stack.clock)

        flow = Dataflow("ring")
        src = flow.add_source(SubscriptionFilter(sensor_ids=("ring-temp",)),
                              node_id="src")
        out = flow.add_sink("collector", node_id="out")
        flow.connect(src, out)
        deployment = stack.executor.deploy(flow)
        stack.run_until(1800.0)
        before = len(deployment.collected("out"))
        assert before > 0

        # Kill the link the traffic was using; delivery must continue the
        # long way round the ring.
        sink_node = deployment.process("out").node_id
        if sink_node != "n0":
            path = stack.topology.route("n0", sink_node)
            stack.topology.link(path[0], path[1]).fail()
        stack.run_until(3600.0)
        assert len(deployment.collected("out")) > before
