"""Integration test: several dataflows under control at once.

Figure 3 shows "the flows of data that are monitored for this and other
dataflows that are under control" — one executor hosts many deployments
sharing the same network, sensors, and monitor, with independent
lifecycles.
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import AggregationSpec, FilterSpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack


def flow_a() -> Dataflow:
    flow = Dataflow("flow-a")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    hot = flow.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    out = flow.add_sink("collector", node_id="out")
    flow.connect(src, hot)
    flow.connect(hot, out)
    return flow


def flow_b() -> Dataflow:
    flow = Dataflow("flow-b")
    src = flow.add_source(SubscriptionFilter(sensor_type="rain"),
                          node_id="src")
    hourly = flow.add_operator(
        AggregationSpec(interval=3600.0, attributes=("rain_rate",),
                        function="MAX", group_by="station"),
        node_id="hourly",
    )
    out = flow.add_sink("collector", node_id="out")
    flow.connect(src, hourly)
    flow.connect(hourly, out)
    return flow


class TestMultiDataflow:
    @pytest.fixture
    def stack(self):
        return build_stack(hot=True)

    def test_independent_results(self, stack):
        a = stack.executor.deploy(flow_a())
        b = stack.executor.deploy(flow_b())
        stack.run_until(15 * 3600.0)
        temps = a.collected("out")
        rains = b.collected("out")
        assert temps and rains
        assert all("temperature" in t for t in temps)
        assert all("max_rain_rate" in t for t in rains)
        # Grouped aggregation: one output per station per window.
        stations = {t["station"] for t in rains}
        assert len(stations) == 3

    def test_monitor_separates_deployments(self, stack):
        stack.executor.deploy(flow_a())
        stack.executor.deploy(flow_b())
        stack.run_until(2 * 3600.0)
        rates = stack.executor.monitor.operation_rates
        assert "flow-a/flow-a:hot" in rates
        assert "flow-b/flow-b:hourly" in rates
        dashboard = stack.executor.monitor.render_dashboard()
        assert "flow-a" in dashboard and "flow-b" in dashboard

    def test_teardown_of_one_leaves_the_other(self, stack):
        a = stack.executor.deploy(flow_a())
        b = stack.executor.deploy(flow_b())
        stack.run_until(13 * 3600.0)
        a.teardown()
        count_a = len(a.collected("out"))
        count_b = len(b.collected("out"))
        stack.run_until(16 * 3600.0)
        assert len(a.collected("out")) == count_a
        assert len(b.collected("out")) > count_b

    def test_shared_sensor_fan_out(self, stack):
        # Two deployments subscribing to the same sensors both receive
        # every reading (pub-sub fan-out, not stealing).
        a = stack.executor.deploy(flow_a())
        duplicate = flow_a()
        duplicate.name = "flow-a2"
        b = stack.executor.deploy(duplicate)
        stack.run_until(14 * 3600.0)
        assert len(a.collected("out")) == len(b.collected("out"))

    def test_pause_isolated(self, stack):
        a = stack.executor.deploy(flow_a())
        b = stack.executor.deploy(flow_b())
        stack.run_until(12 * 3600.0)
        a.pause()
        count_a = len(a.collected("out"))
        count_b = len(b.collected("out"))
        stack.run_until(15 * 3600.0)
        assert len(a.collected("out")) == count_a
        assert len(b.collected("out")) > count_b
