"""Integration tests: QoS admission and segmentation end to end."""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.errors import ScnError
from repro.network.qos import QosPolicy
from repro.network.topology import Topology
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack


def qos_flow(max_latency: float) -> Dataflow:
    flow = Dataflow("qos-flow")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    keep = flow.add_operator(FilterSpec("temperature > -100"), node_id="keep")
    sink = flow.add_sink(
        "collector",
        qos=QosPolicy(qos_class="real-time", max_latency=max_latency),
        node_id="out",
    )
    flow.connect(src, keep)
    flow.connect(keep, sink)
    return flow


class TestQosAdmission:
    def test_loose_budget_deploys_and_runs(self):
        stack = build_stack()
        deployment = stack.executor.deploy(qos_flow(max_latency=1.0))
        stack.run_until(13 * 3600.0)
        assert deployment.collected("out")

    @staticmethod
    def _spread_stack():
        """A stack whose SCN spreads the flow across the line's ends.

        QoS admission only bites when a sink channel actually crosses
        links, so the test controller pins the filter to node-0 and the
        sink to node-3 (3 hops x 50 ms).
        """
        from repro.dsn.scn import PlacementDecision, ScnController

        class SpreadingScn(ScnController):
            def _score_nodes(self, service, upstream, demand, projected):
                node = "node-3" if service.name == "out" else "node-0"
                return PlacementDecision(service.name, node, 0.0, "pinned")

        topo = Topology.line(4, latency=0.05)
        stack = build_stack(topology=topo, attach_fleet=False,
                            scn=SpreadingScn(topo))
        from repro.sensors.physical import temperature_sensor
        from repro.stt.spatial import Point

        sensor = temperature_sensor("lonely", Point(34.69, 135.50), "node-0")
        sensor.attach(stack.broker_network, stack.clock)
        return stack

    def test_impossible_budget_rejected_at_deploy(self):
        stack = self._spread_stack()
        with pytest.raises(ScnError, match="QoS admission failed"):
            stack.executor.deploy(qos_flow(max_latency=0.01))

    def test_rejected_deploy_leaves_no_residue(self):
        stack = self._spread_stack()
        with pytest.raises(ScnError):
            stack.executor.deploy(qos_flow(max_latency=0.01))
        assert "qos-flow" not in stack.executor.deployments
        for node in stack.topology.nodes:
            assert not any(p.startswith("qos-flow:") for p in node.processes)
        # Relaxing the budget lets the same flow deploy cleanly.
        deployment = stack.executor.deploy(qos_flow(max_latency=10.0))
        assert deployment.state.value == "running"


class TestSegmentation:
    def test_large_payloads_segmented(self):
        # A tiny segment size multiplies transmission delay; confirm the
        # QoS segmentation parameter reaches the wire.
        from repro.network.netsim import NetworkSimulator

        sim = NetworkSimulator(topology=Topology.line(2, latency=0.0,
                                                      bandwidth=1000.0))
        arrival = {}
        chunky = QosPolicy(segment_bytes=100)
        sim.send("node-0", "node-1", "x", 1000.0,
                 lambda _p: arrival.setdefault("chunky", sim.clock.now),
                 qos=chunky)
        sim.clock.run()
        smooth = QosPolicy(segment_bytes=10_000)
        sim2 = NetworkSimulator(topology=Topology.line(2, latency=0.0,
                                                       bandwidth=1000.0))
        sim2.send("node-0", "node-1", "x", 1000.0,
                  lambda _p: arrival.setdefault("smooth", sim2.clock.now),
                  qos=smooth)
        sim2.clock.run()
        # Same bytes, same bandwidth: transmission dominates and is equal;
        # segmentation must not lose or duplicate the payload.
        assert arrival["chunky"] == pytest.approx(arrival["smooth"])
