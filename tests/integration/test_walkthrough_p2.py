"""Integration test: demo walkthrough part P2.

"Once the dataflow is consistent, we will show its translation in the
DSN/SCN language and deployment at network level.  Then, we will monitor
its execution ... Finally, we will show how the data processed by means of
the dataflow can be stored in the Event Data Warehouse or visualized in the
Sticker visualization tool."
"""

import pytest

from repro.designer.session import DesignerSession
from repro.dataflow.ops import FilterSpec
from repro.dsn.parse import parse_dsn
from repro.scenario import build_stack
from repro.sticker.render import render_series


@pytest.fixture
def stack():
    return build_stack(hot=True)


@pytest.fixture
def session(stack):
    session = DesignerSession(stack.executor, name="p2")
    temp = session.add_source("osaka-temp-umeda", node_id="temp")
    hot = session.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    dw = session.add_sink("warehouse", node_id="dw")
    viz = session.add_sink("visualization", node_id="viz")
    # Warehouse the filtered stream, visualize the raw one.
    session.connect(temp, hot)
    session.connect(hot, dw)
    session.connect(temp, viz)
    return session


class TestP2Walkthrough:
    def test_translation_shown_and_parseable(self, session):
        program = session.translate()
        text = program.render()
        # The textual artifact the demo displays, round-trippable.
        assert 'service operator "hot" kind "filter"' in text
        assert parse_dsn(text).render() == text

    def test_deployment_at_network_level(self, stack, session):
        handle = session.deploy()
        placements = handle.deployment.assignments()
        assert set(placements) == {"hot", "dw", "viz"}
        assert all(node in stack.topology.node_ids
                   for node in placements.values())

    def test_monitoring_during_execution(self, stack, session):
        handle = session.deploy()
        stack.run_until(15 * 3600.0)
        report = stack.executor.monitor.report()
        assert report["operation_rates"]["p2/p2:hot"] is not None
        dashboard = stack.executor.monitor.render_dashboard()
        assert "p2/p2:hot" in dashboard
        annotations = handle.annotations()
        assert annotations["hot"]["tuples_in"] > 0

    def test_warehouse_receives_processed_data(self, stack, session):
        session.deploy()
        stack.run_until(15 * 3600.0)
        assert len(stack.warehouse) > 0
        # Only above-threshold readings were warehoused.
        values = stack.warehouse.query().measure_values("temperature")
        assert values.min() > 24.0
        # And they roll up by hour like the analyst would ask.
        rows = stack.warehouse.query().rollup_time(
            "hour", measure="temperature", agg="avg"
        )
        assert rows

    def test_sticker_receives_stream(self, stack, session):
        session.deploy()
        stack.run_until(6 * 3600.0)
        assert stack.sticker.pushed > 0
        series = stack.sticker.series("weather/temperature")
        assert len(series) >= 5  # one bin per hour
        text = render_series(stack.sticker, "weather/temperature",
                             attribute="temperature")
        assert "trend" in text

    def test_deploy_via_parsed_program_text(self, stack, session):
        # The DSN text itself is deployable — proving the program, not the
        # canvas object, is the actual deployment artifact.
        text = session.translate().render()
        program = parse_dsn(text)
        deployment = stack.executor.deploy(program)
        stack.run_until(13 * 3600.0)
        assert deployment.process("hot").operator.stats.tuples_in > 0
