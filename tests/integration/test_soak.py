"""Soak test: two virtual days of continuous operation.

Long-running behaviours that short tests cannot see: caches must stay
bounded, the trigger must cycle with the diurnal temperature (re-arming
each night), monitor series must keep growing linearly, and the clock's
event heap must not accumulate garbage.
"""

import pytest

from repro.scenario import build_stack, osaka_scenario_flow

DAYS = 2


class TestSoak:
    @pytest.fixture(scope="class")
    def run(self):
        stack = build_stack(hot=True, seed=5)
        flow = osaka_scenario_flow(stack)
        deployment = stack.executor.deploy(flow)
        stack.run_until(DAYS * 86400.0)
        return stack, deployment

    def test_trigger_cycles_daily(self, run):
        stack, _ = run
        activations = [c for c in stack.executor.monitor.control_log
                       if c.activate]
        # One activation per warm day (edge-triggered, re-armed each night).
        assert len(activations) == DAYS
        gaps = [b.issued_at - a.issued_at
                for a, b in zip(activations, activations[1:])]
        assert all(20 * 3600.0 < gap < 28 * 3600.0 for gap in gaps)

    def test_caches_stay_bounded(self, run):
        stack, deployment = run
        trigger = deployment.process("hot-hour-trigger").operator
        # The sliding window holds at most window/period readings per
        # sensor (4 sensors x 60 readings/hour).
        assert len(trigger.cache) <= 4 * 60 + 4
        assert trigger.cache.evicted == 0  # never hit the memory bound

    def test_monitor_series_linear(self, run):
        stack, _ = run
        series = next(iter(stack.executor.monitor.node_utilization.values()))
        expected_samples = DAYS * 86400.0 / stack.executor.monitor.sample_interval
        assert abs(len(series) - expected_samples) <= 2

    def test_clock_heap_drained(self, run):
        stack, _ = run
        # Only the standing periodic events remain (sensors, timers,
        # monitor, rebalancer) — not an unbounded backlog.
        assert stack.clock.pending < 100

    def test_warehouse_grows_on_both_days(self, run):
        stack, _ = run
        day1 = stack.warehouse.query().time_range(0.0, 86400.0).count()
        day2 = stack.warehouse.query().time_range(86400.0, 2 * 86400.0).count()
        assert day1 > 0 and day2 > 0

    def test_no_errors_quarantined(self, run):
        stack, deployment = run
        for process in deployment.processes.values():
            assert process.operator.stats.errors == 0
