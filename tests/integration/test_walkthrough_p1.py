"""Integration test: demo walkthrough part P1.

"Users can create their own dataflows.  Specifically, they will be able to
identify the different sensors that are currently available in the network
and select those on which they wish to specify ETL operations.  Moreover,
they will be able to apply different processing operations on such sources
and check, step-by-step, their results on samples made available from the
source."
"""

import pytest

from repro.dataflow.ops import (
    AggregationSpec,
    FilterSpec,
    VirtualPropertySpec,
)
from repro.designer.session import DesignerSession
from repro.scenario import build_stack


@pytest.fixture
def stack():
    return build_stack(hot=True, extended=True)


class TestP1Walkthrough:
    def test_full_design_session(self, stack):
        session = DesignerSession(stack.executor, name="p1")

        # 1. Identify the sensors currently available in the network.
        available = session.palette.sources(organise_by="type")
        assert "temperature" in available and "humidity" in available

        # 2. Select sources.
        temp = session.add_source("osaka-temp-umeda", node_id="temp")
        hum = session.add_source("osaka-humidity-umeda", node_id="hum")

        # 3. Apply processing operations: a join, the apparent-temperature
        #    virtual property from the paper, a filter, an aggregation.
        from repro.dataflow.ops import JoinSpec

        join = session.add_operator(
            JoinSpec(interval=120.0, predicate="true",
                     left_prefix="t", right_prefix="h"),
            node_id="combine",
        )
        apparent = session.add_operator(
            VirtualPropertySpec(
                "apparent_temperature",
                "temperature + 0.33 * (humidity * 6.105 * "
                "exp(17.27 * temperature / (237.7 + temperature))) - 4.0",
            ),
            node_id="apparent",
        )
        hot = session.add_operator(
            FilterSpec("apparent_temperature > 27"), node_id="hot"
        )
        hourly = session.add_operator(
            AggregationSpec(interval=3600.0,
                            attributes=("apparent_temperature",),
                            function="MAX"),
            node_id="hourly-max",
        )
        out = session.add_sink("collector", node_id="out")

        session.connect(temp, join, port=0)
        session.connect(hum, join, port=1)
        session.connect(join, apparent)
        session.connect(apparent, hot)
        session.connect(hot, hourly)
        session.connect(hourly, out)

        # 4. The canvas is consistent and every schema pane is live.
        assert session.is_consistent
        assert "apparent_temperature" in session.schema_pane("apparent")
        assert "max_apparent_temperature" in session.schema_pane("hourly-max")

        # 5. Step-by-step sample check, probing the real sensors at a hot
        #    afternoon hour.
        result = session.preview(
            sensors={
                temp: stack.sensor("osaka-temp-umeda"),
                hum: stack.sensor("osaka-humidity-umeda"),
            },
            count=6,
            start=14 * 3600.0,
        )
        assert len(result.at(temp)) == 6
        assert len(result.at("combine")) == 36  # cross join preview
        apparent_rows = result.at("apparent")
        assert apparent_rows
        assert all("apparent_temperature" in row for row in apparent_rows)
        # Hot afternoon in the hot regime: apparent temp beats dry bulb.
        assert all(
            row["apparent_temperature"] > row["temperature"]
            for row in apparent_rows
        )

    def test_design_errors_surface_step_by_step(self, stack):
        session = DesignerSession(stack.executor, name="p1-errors")
        temp = session.add_source("osaka-temp-umeda", node_id="temp")
        bad = session.add_operator(FilterSpec("rain_rate > 5"), node_id="bad")
        out = session.add_sink(node_id="out")
        session.connect(temp, bad)
        session.connect(bad, out)
        assert not session.is_consistent
        issues = session.issues()
        assert any("rain_rate" in issue and "bad" in issue for issue in issues)
        # Fix the condition in place; the canvas turns consistent.
        session.flow.replace_operator("bad", FilterSpec("temperature > 24"))
        assert session.validate().is_valid
