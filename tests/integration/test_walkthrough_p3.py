"""Integration test: demo walkthrough part P3.

"We will show how it is easy to plug-and-play new sensors to the network
and make them directly available to StreamLoader.  We will also show how
the system react when sensors or operators in the dataflow are modified on
the fly.  Finally, we will show statistics on the execution of the dataflow
and on the performances of the network."
"""

import pytest

from repro.dataflow.ops import FilterSpec
from repro.designer.session import DesignerSession
from repro.scenario import build_stack
from repro.sensors.physical import temperature_sensor
from repro.stt.spatial import Point


@pytest.fixture
def stack():
    return build_stack(hot=True)


def deployed_session(stack, name="p3"):
    session = DesignerSession(stack.executor, name=name)
    temp = session.add_source(
        __import__("repro.pubsub.subscription", fromlist=["SubscriptionFilter"])
        .SubscriptionFilter(sensor_type="temperature"),
        node_id="temp",
    )
    hot = session.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    out = session.add_sink("collector", node_id="out")
    session.connect(temp, hot)
    session.connect(hot, out)
    return session, session.deploy()


class TestPlugAndPlay:
    def test_new_sensor_feeds_running_dataflow(self, stack):
        session, handle = deployed_session(stack)
        stack.run_until(2 * 3600.0)
        delivered_before = sum(
            s.delivered
            for s in handle.deployment.bindings["temp"].subscriptions
        )

        # Plug a brand-new temperature sensor into the network mid-run.
        newcomer = temperature_sensor(
            "osaka-temp-shinsekai", Point(34.6524, 135.5063), "edge-1",
            base_temp=30.0,
        )
        newcomer.attach(stack.broker_network, stack.clock)
        assert "osaka-temp-shinsekai" in stack.broker_network.registry

        stack.run_until(4 * 3600.0)
        # Its readings flow into the standing subscription automatically.
        sources = {t.source for t in handle.deployment.collected("out")}
        assert "osaka-temp-shinsekai" in sources or any(
            t.source == "osaka-temp-shinsekai"
            for t in handle.deployment.collected("out")
        )

    def test_unplugged_sensor_disappears(self, stack):
        session, handle = deployed_session(stack)
        stack.run_until(3600.0)
        victim = stack.sensor("osaka-temp-umeda")
        victim.detach()
        stack.run_until(2 * 3600.0)
        recent = [t for t in handle.deployment.collected("out")
                  if t.stamp.time > 3700.0]
        assert all(t.source != "osaka-temp-umeda" for t in recent)

    def test_designer_palette_updates_live(self, stack):
        session, _handle = deployed_session(stack)
        before = {m.sensor_id for m in session.discover(sensor_type="temperature")}
        newcomer = temperature_sensor(
            "osaka-temp-new", Point(34.70, 135.49), "edge-0"
        )
        newcomer.attach(stack.broker_network, stack.clock)
        after = {m.sensor_id for m in session.discover(sensor_type="temperature")}
        assert after - before == {"osaka-temp-new"}


class TestOnTheFlyModification:
    def test_operator_swap_changes_stream_without_restart(self, stack):
        session, handle = deployed_session(stack)
        stack.run_until(13 * 3600.0)
        before = len(handle.deployment.collected("out"))
        assert before > 0
        handle.replace_operator("hot", FilterSpec("temperature > 1000"))
        stack.run_until(15 * 3600.0)
        # Stream kept running (tuples_in grows) but nothing passes now.
        assert len(handle.deployment.collected("out")) == before
        assert handle.annotations()["hot"]["tuples_in"] > 0

    def test_statistics_on_execution_and_network(self, stack):
        session, handle = deployed_session(stack)
        stack.run_until(6 * 3600.0)
        report = stack.executor.monitor.report()
        network = report["network"]
        assert network["messages_delivered"] > 0
        assert network["link_bytes"] > 0
        assert network["mean_delay"] > 0
        assert report["operation_rates"]
        logs = stack.executor.monitor.logs
        assert any(record.event == "deployed" for record in logs)
