"""Wall-clock-tolerant comparison helpers for cross-backend parity.

The asyncio backend promises the simulator's *logical* behaviour — same
tuples through the same operators at the same virtual instants — but not
the simulator's *sequencing* of same-instant work: inside one virtual
instant, deliveries and operator dispatch run concurrently across tasks.
So these helpers compare

- sink contents as **multisets** (order-free, duplicates still count),
- per-service throughput as **totals** (tuples in/out per service),
- the dead-letter audit as **(source, reason) multisets** (``failed_at``
  is compared too — retry exhaustion instants are logical times and must
  match — but wall stamps never are),

and every run is **timeout-bounded**: the async backend gets a hard wall
budget (:data:`MAX_WALL_SECONDS`) so a deadlocked queue fails the test
instead of hanging the suite.

Floats are canonicalised to 9 decimals before hashing: equal logical
computations must agree to far more than that, while the helper stays
robust to repr-level noise.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping

from repro.network.topology import Topology
from repro.runtime.backends import AsyncBackend, SimBackend
from repro.scenario import (
    build_stack,
    osaka_scenario_flow,
    sharded_aggregation_flow,
)

#: Hard wall-clock budget (seconds) for one async scenario run.  The sim
#: runs these horizons in ~2s; a run that needs 60x that is wedged.
MAX_WALL_SECONDS = 120.0

#: Virtual horizons per scenario: long enough for the interesting
#: behaviour (the osaka trigger fires at ~7.9h; the stations windows
#: close every 300s), short enough to keep the 2x16-config matrix fast.
HORIZONS = {"osaka": 9.0 * 3600.0, "stations": 2.0 * 3600.0}


def canon(value):
    """Canonical hashable form of a payload value (floats rounded)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, Mapping):  # includes tuple payloads' mappingproxy
        return tuple(sorted((k, canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(canon(v) for v in value)
    return value


def tuple_key(tuple_):
    """Order-free identity of a sensor tuple (payload + stamp + origin)."""
    return (
        tuple_.source,
        tuple_.seq,
        round(tuple_.stamp.time, 9),
        canon(tuple_.payload),
    )


def sink_multiset(tuples) -> Counter:
    """Multiset of a collector sink's received tuples."""
    return Counter(tuple_key(t) for t in tuples)


def warehouse_multiset(warehouse) -> Counter:
    """Multiset of warehoused facts, minus load-order surrogate keys."""
    return Counter(
        (
            round(fact.event_time, 9),
            canon(fact.measures),
            canon(fact.attributes),
        )
        for fact in warehouse.facts
    )


def sticker_snapshot(sticker):
    """The sticker feed's bins as an order-free comparable mapping.

    Counts and sums are order-independent accumulations, so two runs
    that pushed the same multiset of tuples produce equal snapshots
    regardless of push order.
    """
    bins = {}
    for key, point in sticker._bins.items():
        bins[(point.bucket_start, point.row, point.col, point.theme)] = (
            point.count,
            canon(point.numeric_sums),
            canon(point.numeric_counts),
        )
    return sticker.pushed, bins


def service_totals(deployment) -> dict:
    """Per-service tuples_in/tuples_out totals."""
    return {
        name: (
            process.operator.stats.tuples_in,
            process.operator.stats.tuples_out,
        )
        for name, process in deployment.processes.items()
    }


def audit_multiset(deployment) -> Counter:
    """Dead-letter (source, reason, failed_at) records across all sources."""
    records: Counter = Counter()
    for binding in deployment.bindings.values():
        for subscription in binding.subscriptions:
            for letter in subscription.dead_letters:
                records[
                    (
                        letter.tuple.source,
                        letter.reason,
                        round(letter.failed_at, 9),
                    )
                ] += 1
    return records


def run_config(
    backend_name: str,
    flow_name: str,
    batch: int,
    shards: int,
    fuse: bool,
    seed: int = 7,
    hours: "float | None" = None,
):
    """Run one scenario configuration on one backend; return a snapshot.

    The async backend runs under :data:`MAX_WALL_SECONDS` so a wedged
    event loop raises instead of hanging; both backends are closed before
    returning (the conftest flake guard would fail the test otherwise).
    """
    topology = Topology.star(leaf_count=4)
    if backend_name == "async":
        backend = AsyncBackend(topology=topology, max_wall=MAX_WALL_SECONDS)
    else:
        backend = SimBackend(topology=topology)
    stack = build_stack(
        hot=True,
        seed=seed,
        batching=batch if batch > 1 else None,
        backend=backend,
    )
    with stack:
        if flow_name == "osaka":
            flow = osaka_scenario_flow(stack)
        else:
            flow = sharded_aggregation_flow(stack)
        deployment = stack.executor.deploy(
            flow, shards=shards if shards > 1 else None, fuse=fuse
        )
        horizon = HORIZONS[flow_name] if hours is None else hours * 3600.0
        stack.run_until(horizon)
        snapshot = {
            "backend": backend.name,
            "warehouse": warehouse_multiset(stack.warehouse),
            "sticker": sticker_snapshot(stack.sticker),
            "services": service_totals(deployment),
            "audit": audit_multiset(deployment),
            "network": {
                "tuples_sent": stack.netsim.stats.tuples_sent,
                "tuples_delivered": stack.netsim.stats.tuples_delivered,
                "messages_dropped": stack.netsim.stats.messages_dropped,
            },
        }
        for name, sink in deployment.collectors.items():
            snapshot[f"sink:{name}"] = sink_multiset(sink.received)
    return snapshot


def assert_parity(sim_snapshot: dict, async_snapshot: dict) -> None:
    """Assert the async run reproduced the simulator's logical output."""
    keys = set(sim_snapshot) | set(async_snapshot)
    keys.discard("backend")
    mismatches = []
    for key in sorted(keys):
        expected = sim_snapshot.get(key)
        actual = async_snapshot.get(key)
        if expected != actual:
            mismatches.append(f"{key}: sim={expected!r} async={actual!r}")
    assert not mismatches, "backend divergence:\n" + "\n".join(mismatches)
