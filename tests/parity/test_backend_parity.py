"""The simulator-oracle parity suite.

Every configuration of {scenario} x {batch} x {shards} x {fusion} runs
once on the deterministic simulator and once on the asyncio backend, and
the two runs must agree on everything logical: sink payload multisets,
per-service throughput totals, the dead-letter audit, and the network's
tuple accounting.  Order within a virtual instant is explicitly NOT
compared (that is the asynchronous part); see ``_compare`` for the
tolerance model.

The osaka scenario exercises the trigger-gated acquisition path (the
trigger fires at ~7.9h, so the 9h horizon covers the pause/resume
control round-trip); the stations scenario exercises windowed
aggregation, and — at ``shards=4`` — the shard/merge epoch protocol.
"""

from __future__ import annotations

import pytest

from tests.parity._compare import assert_parity, run_config

CONFIGS = [
    pytest.param(flow, batch, shards, fuse,
                 id=f"{flow}-batch{batch}-shards{shards}-"
                    f"{'fused' if fuse else 'unfused'}")
    for flow in ("osaka", "stations")
    for batch in (1, 32)
    for shards in (1, 4)
    for fuse in (True, False)
]


@pytest.mark.parametrize("flow,batch,shards,fuse", CONFIGS)
def test_async_matches_sim(flow, batch, shards, fuse):
    sim = run_config("sim", flow, batch, shards, fuse)
    asy = run_config("async", flow, batch, shards, fuse)
    assert_parity(sim, asy)


def test_parity_runs_produce_output():
    """Guard against vacuous parity: the compared runs carry real data.

    If a future change silenced the scenarios (trigger never fires,
    windows never close), the matrix above would pass trivially; this
    pins that both scenarios actually deliver tuples to their sinks at
    the parity horizons.
    """
    osaka = run_config("sim", "osaka", 1, 1, True)
    assert sum(osaka["warehouse"].values()) > 0
    assert osaka["sticker"][0] > 0
    assert sum(osaka["sink:traffic-collector"].values()) > 0
    stations = run_config("sim", "stations", 1, 4, True)
    assert sum(stations["sink:averages"].values()) > 0


class TestSeedPlumbing:
    """``--seed`` must reach the sensor generators identically on both
    backends — same seed, same streams; different seed, different streams."""

    def test_same_seed_same_streams_across_backends(self):
        sim = run_config("sim", "stations", 1, 1, True, seed=42, hours=1.0)
        asy = run_config("async", "stations", 1, 1, True, seed=42, hours=1.0)
        assert_parity(sim, asy)

    def test_different_seed_different_streams(self):
        a = run_config("sim", "stations", 1, 1, True, seed=7, hours=1.0)
        b = run_config("sim", "stations", 1, 1, True, seed=42, hours=1.0)
        assert a["sink:averages"] != b["sink:averages"]

    def test_async_seed_change_tracks_sim(self):
        sim = run_config("sim", "osaka", 1, 1, True, seed=3, hours=1.0)
        asy = run_config("async", "osaka", 1, 1, True, seed=3, hours=1.0)
        assert_parity(sim, asy)
