"""Cross-backend parity: the simulator is the oracle, asyncio must agree."""
